#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <set>
#include <sys/socket.h>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "io/svs_snapshot.h"
#include "net/client.h"

namespace vz::net {

namespace {

/// Response payload: a wire status followed by nothing.
std::string StatusOnlyResponse(const Status& status, int64_t retry_after_ms) {
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {status, retry_after_ms});
  return writer.buffer();
}

int64_t ElapsedMs(const std::chrono::steady_clock::time_point& since,
                  const std::chrono::steady_clock::time_point& now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(now - since)
      .count();
}

/// True for mutating RPCs whose request bytes go into the WAL. Exactly the
/// state-changing ones: SnapshotSave carries a token (retrying it is
/// ambiguous) but only reads state, so logging it would replay side-effect
/// writes to operator-chosen paths for nothing. AdminTune is operator state
/// (index mode, thresholds), not corpus state — replaying it would resurrect
/// a long-dead tuning decision on every recovery.
bool IsWalLoggedType(MsgType type) {
  return IsMutatingType(static_cast<uint32_t>(type)) &&
         type != MsgType::kSnapshotSave && type != MsgType::kAdminTune;
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string data;
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status failed = Status::Unavailable("read " + path + " failed: " +
                                                std::strerror(errno));
      ::close(fd);
      return failed;
    }
    if (n == 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

/// Writes `data` to `path` and fsyncs before returning — the re-seed path's
/// crash-safety hinges on the checkpoint pair being durable before the old
/// log is dropped.
Status WriteFileDurable(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot create " + path + ": " +
                               std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status failed = Status::Unavailable("write " + path + " failed: " +
                                                std::strerror(errno));
      ::close(fd);
      return failed;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status failed = Status::Unavailable("fsync " + path + " failed: " +
                                              std::strerror(errno));
    ::close(fd);
    return failed;
  }
  ::close(fd);
  return Status::OK();
}

/// Deletes every `wal-*.vzwal` segment in `dir` (the re-seed path replaces
/// the whole mirrored log with a fetched checkpoint). The Wal must be closed.
Status RemoveWalSegments(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::Unavailable("cannot open WAL dir " + dir + ": " +
                               std::strerror(errno));
  }
  std::vector<std::string> victims;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind("wal-", 0) == 0 &&
        name.size() > 10 && name.substr(name.size() - 6) == ".vzwal") {
      victims.push_back(dir + "/" + name);
    }
  }
  ::closedir(handle);
  for (const std::string& path : victims) ::remove(path.c_str());
  return Status::OK();
}

}  // namespace

Server::Server(core::VideoZilla* system, const ServerOptions& options)
    : system_(system),
      options_(options),
      engine_(SubscriptionEngine::Options{
          options.subscription_queue_capacity,
          options.subscription_max_drain}) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  standby_ = !options_.standby_of_host.empty();
  if (standby_ && options_.wal_dir.empty()) {
    return Status::InvalidArgument(
        "a standby needs its own wal_dir: it mirrors the primary's log and "
        "must survive its own crashes");
  }
  // Connection handlers live on pool workers for the whole connection, so
  // the shared pool must actually have workers; a serial system gets a
  // server-owned pool sized to the connection cap instead.
  pool_ = system_->thread_pool();
  if (pool_ == nullptr || pool_->num_threads() < 2) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.max_connections + 1);
    pool_ = owned_pool_.get();
  }
  connection_cap_ =
      std::min(options_.max_connections, pool_->num_threads() - 1);
  if (connection_cap_ == 0) connection_cap_ = 1;

  // The subscription engine taps segment finalization before recovery runs:
  // replayed segments fire the observer too, but with no subscribers yet the
  // calls are cheap no-ops.
  system_->SetSegmentObserver(
      [this](const core::Svs& svs) { engine_.OnSegment(svs); });

  if (!options_.wal_dir.empty()) {
    VZ_RETURN_IF_ERROR(RecoverFromWal());
  }

  stopping_.store(false);
  if (standby_) {
    // A standby serves nobody until promoted; it only tails the primary.
    promoted_.store(false);
    replication_stop_.store(false);
    replication_thread_ = std::thread([this] { ReplicationLoop(); });
    started_ = true;
    return Status::OK();
  }
  VZ_RETURN_IF_ERROR(StartListener());
  started_ = true;
  return Status::OK();
}

Status Server::StartListener() {
  VZ_ASSIGN_OR_RETURN(listen_fd_,
                      TcpListen(options_.bind_address, options_.port));
  VZ_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  // The push-delivery thread lives exactly as long as the listener (a
  // standby starts it at promotion, with the listener).
  if (!delivery_thread_.joinable()) {
    delivery_thread_ = std::thread([this] { DeliveryLoop(); });
  }
  return Status::OK();
}

void Server::StopReplication() {
  replication_stop_.store(true);
  if (replication_thread_.joinable()) replication_thread_.join();
}

void Server::Shutdown() {
  if (!started_) return;
  StopReplication();
  stopping_.store(true);
  // Wake sync-replication acks stuck waiting for a standby that will now
  // never catch up; they fail over to an error response before the close.
  {
    std::lock_guard<std::mutex> lock(ship_mu_);
  }
  ship_cv_.notify_all();
  if (listen_fd_.valid()) {
    // Wake the blocking accept; close happens after the thread exits so the
    // descriptor cannot be reused mid-accept.
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();

  // Drain: handlers notice `stopping_` at their next idle poll and finish
  // the request they are serving first.
  std::vector<std::future<void>> futures;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool drained = drained_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this] { return active_conns_.empty(); });
    if (!drained) {
      for (const auto& [fd, conn] : active_conns_) ::shutdown(fd, SHUT_RDWR);
    }
    futures.swap(connection_futures_);
  }
  for (std::future<void>& f : futures) {
    if (f.valid()) f.wait();
  }
  if (delivery_thread_.joinable()) delivery_thread_.join();
  system_->SetSegmentObserver(nullptr);
  started_ = false;
}

void Server::Kill() {
  if (!started_) return;
  StopReplication();
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(ship_mu_);
  }
  ship_cv_.notify_all();
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();
  // No drain and no grace: sockets are torn down under the handlers, so
  // in-flight requests die with unsent responses — exactly the ambiguity
  // the idempotency tokens exist for. Only already-fsynced records (i.e.
  // everything acked) are guaranteed to survive.
  std::vector<std::future<void>> futures;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fd, conn] : active_conns_) ::shutdown(fd, SHUT_RDWR);
    futures.swap(connection_futures_);
  }
  for (std::future<void>& f : futures) {
    if (f.valid()) f.wait();
  }
  if (delivery_thread_.joinable()) delivery_thread_.join();
  system_->SetSegmentObserver(nullptr);
  started_ = false;
}

Status Server::Promote() {
  if (!started_ || !standby_) {
    return Status::FailedPrecondition("only a running standby can promote");
  }
  if (promoted_.load()) {
    return Status::FailedPrecondition("standby already promoted");
  }
  StopReplication();
  // Everything tailed so far becomes this server's own durable history.
  VZ_RETURN_IF_ERROR(wal_->Sync());
  // Binding the (former) primary's port is the split-brain guard: as long
  // as the old primary still holds it, promotion fails instead of serving
  // two divergent histories.
  VZ_RETURN_IF_ERROR(StartListener());
  // The epoch bump happens only after the bind succeeded (a failed
  // promotion must not leave this standby fenced off from its primary),
  // and is made durable by a marker record so it survives restarts and
  // ships to anyone tailing us in turn.
  const uint64_t new_epoch = wal_epoch_.load() + 1;
  wal_epoch_.store(new_epoch);
  io::WalRecord marker;
  marker.op = io::kWalOpEpochMarker;
  marker.epoch = new_epoch;
  auto appended = wal_->Append(marker);
  VZ_RETURN_IF_ERROR(appended.status());
  VZ_RETURN_IF_ERROR(wal_->WaitDurable(*appended));
  promoted_.store(true);
  return Status::OK();
}

void Server::AdoptEpoch(uint64_t epoch) {
  uint64_t current = wal_epoch_.load();
  while (epoch > current &&
         !wal_epoch_.compare_exchange_weak(current, epoch)) {
  }
}

ServerRole Server::role() const {
  if (!standby_) return ServerRole::kPrimary;
  return promoted_.load() ? ServerRole::kPromoted : ServerRole::kStandby;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats stats;
  stats.connections_accepted = connections_accepted_;
  stats.connections_shed = connections_shed_;
  stats.connections_active = active_conns_.size();
  stats.requests_served = requests_served_.load();
  stats.request_errors = request_errors_.load();
  stats.connections_evicted_idle = evicted_idle_.load();
  stats.connections_evicted_slow = evicted_slow_.load();
  stats.duplicates_replayed = duplicates_replayed_.load();
  stats.pings_served = pings_served_.load();
  stats.sessions_evicted = sessions_evicted_.load();
  {
    std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
    stats.sessions_active = sessions_.size();
  }
  stats.role = role();
  if (wal_ != nullptr) {
    const io::WalStats wal_stats = wal_->stats();
    stats.wal_appends = wal_stats.appends;
    stats.wal_fsyncs = wal_stats.fsyncs;
    stats.wal_salvaged_bytes = wal_stats.salvaged_bytes;
    stats.wal_last_lsn = wal_stats.last_lsn;
    stats.wal_durable_lsn = wal_stats.durable_lsn;
    if (standby_ && !promoted_.load()) {
      const uint64_t primary = replication_primary_durable_.load();
      stats.replication_lag_records =
          primary > wal_stats.last_lsn ? primary - wal_stats.last_lsn : 0;
    }
  }
  stats.wal_replayed_records = wal_replayed_records_.load();
  stats.wal_checkpoints = wal_checkpoints_.load();
  stats.replication_errors = replication_errors_.load();
  stats.replication_reseeds = replication_reseeds_.load();
  stats.wal_epoch = wal_epoch_.load();
  const SubscriptionEngine::Stats subs = engine_.stats();
  stats.subscriptions_active = subs.subscriptions_active;
  stats.subscriptions_total = subs.subscriptions_total;
  stats.push_drops = subs.events_dropped;
  stats.pushes_sent = pushes_sent_.load();
  stats.push_gaps_sent = push_gaps_sent_.load();
  stats.ingest_batches = ingest_batches_.load();
  return stats;
}

std::vector<ConnectionInfo> Server::connection_stats() const {
  const auto now = SteadyClock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ConnectionInfo> infos;
  infos.reserve(active_conns_.size());
  for (const auto& [fd, conn] : active_conns_) {
    ConnectionInfo info;
    info.id = conn.id;
    info.age_ms = ElapsedMs(conn.connected_at, now);
    info.idle_ms = ElapsedMs(conn.last_activity, now);
    info.bytes_in = conn.bytes_in;
    info.bytes_out = conn.bytes_out;
    info.rpcs = conn.rpcs;
    infos.push_back(info);
  }
  std::sort(infos.begin(), infos.end(),
            [](const ConnectionInfo& a, const ConnectionInfo& b) {
              return a.id < b.id;
            });
  return infos;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = TcpAccept(listen_fd_.get());
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      continue;  // transient accept failure (e.g. EMFILE burst)
    }
    UniqueFd fd = std::move(*accepted);
    (void)SetTcpNoDelay(fd.get());

    std::lock_guard<std::mutex> lock(mu_);
    ++connections_accepted_;
    if (stopping_.load() || active_conns_.size() >= connection_cap_) {
      // Connection-level shedding: answer with the same wire status an
      // admission shed produces, so one client backoff path covers both.
      ++connections_shed_;
      const Status shed = Status::ResourceExhausted(
          "server at connection capacity (" +
          std::to_string(connection_cap_) + "); retry later");
      (void)WriteFrame(
          fd.get(), static_cast<uint32_t>(MsgType::kHello) | kResponseFlag,
          StatusOnlyResponse(shed, options_.shed_retry_after_ms),
          options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1);
      continue;  // fd closes on scope exit
    }
    ConnState conn;
    conn.id = ++next_connection_id_;
    conn.connected_at = SteadyClock::now();
    conn.last_activity = conn.connected_at;
    auto shared = std::make_shared<ConnShared>();
    shared->id = conn.id;
    shared->fd = fd.get();
    conn.shared = shared;
    active_conns_.emplace(fd.get(), conn);
    conns_by_id_.emplace(shared->id, shared);
    // Completed connections leave stale ready futures behind; reap them
    // while we hold the lock anyway.
    std::erase_if(connection_futures_, [](std::future<void>& f) {
      return !f.valid() ||
             f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    });
    connection_futures_.push_back(
        pool_->Submit([this, raw = fd.Release(), shared]() mutable {
          HandleConnection(UniqueFd(raw), std::move(shared));
        }));
  }
}

void Server::TouchConnection(int fd, uint64_t bytes_in, uint64_t bytes_out,
                             bool completed_rpc) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_conns_.find(fd);
  if (it == active_conns_.end()) return;
  it->second.last_activity = SteadyClock::now();
  it->second.bytes_in += bytes_in;
  it->second.bytes_out += bytes_out;
  if (completed_rpc) ++it->second.rpcs;
}

void Server::HandleConnection(UniqueFd fd, std::shared_ptr<ConnShared> conn) {
  bool hello_done = false;
  // The idle clock: any completed request (including kPing) resets it.
  auto last_activity = SteadyClock::now();
  while (!stopping_.load()) {
    auto readable = WaitReadable(fd.get(), options_.idle_poll_ms);
    if (!readable.ok()) break;
    if (!*readable) {
      if (options_.idle_timeout_ms > 0 &&
          ElapsedMs(last_activity, SteadyClock::now()) >
              options_.idle_timeout_ms + options_.eviction_grace_ms) {
        evicted_idle_.fetch_add(1);
        break;
      }
      continue;  // idle; re-check the stop flag
    }
    if (!ServeOneRequest(conn, &hello_done)) break;
    last_activity = SteadyClock::now();
  }
  // Push teardown BEFORE the socket closes: `closed` is flipped under
  // `write_mu`, and every delivery write re-checks it under the same lock,
  // so no push can land on a recycled fd number.
  {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    conn->closed.store(true);
  }
  engine_.DropConnection(conn->id);
  std::lock_guard<std::mutex> lock(mu_);
  conns_by_id_.erase(conn->id);
  active_conns_.erase(fd.get());
  if (active_conns_.empty()) drained_cv_.notify_all();
}

void Server::DeliveryLoop() {
  const int64_t write_timeout =
      options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1;
  while (!stopping_.load()) {
    if (!engine_.WaitForWork(options_.push_poll_ms > 0 ? options_.push_poll_ms
                                                       : 50)) {
      continue;
    }
    for (const uint64_t conn_id : engine_.ConnectionsWithPending()) {
      if (stopping_.load()) break;
      std::shared_ptr<ConnShared> conn;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = conns_by_id_.find(conn_id);
        if (it != conns_by_id_.end()) conn = it->second;
      }
      // A vanished connection is mid-teardown; its handler's DropConnection
      // reclaims the queues.
      if (conn == nullptr || !conn->v5.load(std::memory_order_acquire)) {
        continue;
      }
      // Zero-timeout writability probe: a subscriber whose receive window
      // is full is skipped this round. Its queues keep absorbing events
      // (dropping oldest past capacity) — backpressure lands on the slow
      // subscriber alone, never on ingest or on other connections.
      auto writable = WaitWritable(conn->fd, 0);
      if (!writable.ok() || !*writable) continue;
      const std::vector<SubscriptionEngine::Delivery> deliveries =
          engine_.Drain(conn_id);
      if (deliveries.empty()) continue;
      std::vector<std::string> frames;
      frames.reserve(deliveries.size());
      uint64_t gaps = 0;
      uint64_t bytes_out = 0;
      for (const SubscriptionEngine::Delivery& delivery : deliveries) {
        io::BinaryWriter writer;
        EncodePushEvent(&writer, delivery.event);
        if (delivery.event.kind == PushKind::kGap) ++gaps;
        frames.push_back(
            EncodeFrameV5(static_cast<uint32_t>(MsgType::kPushEvent),
                          delivery.correlation, writer.buffer()));
        bytes_out += frames.back().size();
      }
      Status written = Status::OK();
      bool conn_gone = false;
      {
        std::lock_guard<std::mutex> write_lock(conn->write_mu);
        if (conn->closed.load()) {
          conn_gone = true;  // drained events die with the connection
        } else {
          // The probe said writable, so this write normally completes
          // without blocking; a peer that stalls mid-frame still runs into
          // the write deadline and is evicted — never a torn frame.
          written = WriteEncodedFrames(conn->fd, frames, write_timeout);
          if (!written.ok()) ::shutdown(conn->fd, SHUT_RDWR);
        }
      }
      if (conn_gone) continue;
      if (!written.ok()) {
        if (written.code() == StatusCode::kUnavailable) {
          evicted_slow_.fetch_add(1);
        }
        continue;  // the handler notices the shutdown and tears down
      }
      pushes_sent_.fetch_add(deliveries.size());
      push_gaps_sent_.fetch_add(gaps);
      TouchConnection(conn->fd, 0, bytes_out, false);
    }
  }
}

bool Server::ServeOneRequest(const std::shared_ptr<ConnShared>& conn,
                             bool* hello_done) {
  const int fd = conn->fd;
  const int64_t read_timeout =
      options_.read_timeout_ms > 0 ? options_.read_timeout_ms : -1;
  const int64_t write_timeout =
      options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1;
  // The framing is fixed for the whole request/response exchange: a v5
  // Hello's own response still travels in legacy framing (the flag flips
  // only after it is written).
  const bool v5 = conn->v5.load(std::memory_order_acquire);

  // All writes (responses here, pushes in DeliveryLoop) serialize on the
  // connection's write lock so frames never interleave mid-frame.
  auto write_response = [&](uint32_t type, uint64_t correlation,
                            const std::string& payload) {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    return v5 ? WriteFrameV5(fd, type, correlation, payload, write_timeout)
              : WriteFrame(fd, type, payload, write_timeout);
  };

  // The caller saw the first byte, so the whole frame now has to arrive
  // within the read deadline — a sender trickling bytes is a slow client.
  uint64_t correlation = 0;
  WireFrame request;
  Status read_status;
  if (v5) {
    auto framed = ReadFrameV5(fd, read_timeout);
    if (framed.ok()) {
      correlation = framed->correlation;
      request.type = framed->type;
      request.payload = std::move(framed->payload);
    } else {
      read_status = framed.status();
    }
  } else {
    auto framed = ReadFrame(fd, read_timeout);
    if (framed.ok()) {
      request = std::move(*framed);
    } else {
      read_status = framed.status();
    }
  }
  if (!read_status.ok()) {
    if (read_status.code() == StatusCode::kUnavailable) {
      evicted_slow_.fetch_add(1);
      return false;  // no response: the peer is not keeping up anyway
    }
    // Clean disconnect between frames is the normal end of a connection;
    // everything else (torn frame, checksum mismatch, unknown type) gets a
    // best-effort error response before the close. On a v5 connection the
    // request's correlation never arrived intact, so the error rides
    // correlation 0 — the client treats that as connection-fatal.
    if (read_status.code() != StatusCode::kNotFound) {
      request_errors_.fetch_add(1);
      (void)write_response(
          static_cast<uint32_t>(MsgType::kHello) | kResponseFlag, 0,
          StatusOnlyResponse(read_status, 0));
    }
    return false;
  }
  if ((request.type & kResponseFlag) != 0 ||
      request.type == static_cast<uint32_t>(MsgType::kPushEvent)) {
    request_errors_.fetch_add(1);
    (void)write_response(request.type | kResponseFlag, correlation,
                         StatusOnlyResponse(
                             Status::InvalidArgument(
                                 "response or push frame sent as request"),
                             0));
    return false;
  }

  Status failure;
  const std::string response =
      DispatchRequest(request, conn.get(), correlation, hello_done, &failure);
  if (failure.ok()) {
    requests_served_.fetch_add(1);
  } else {
    request_errors_.fetch_add(1);
  }
  TouchConnection(fd,
                  v5 ? WireFrameBytesV5(request.payload.size())
                     : WireFrameBytes(request.payload.size()),
                  v5 ? WireFrameBytesV5(response.size())
                     : WireFrameBytes(response.size()),
                  failure.ok());
  if (Status s = write_response(request.type | kResponseFlag, correlation,
                                response);
      !s.ok()) {
    // A reader that stopped draining its responses is as stuck as a writer
    // that stopped sending.
    if (s.code() == StatusCode::kUnavailable) evicted_slow_.fetch_add(1);
    return false;
  }
  // A successful v5 Hello switches the connection's framing from here on;
  // the Hello exchange itself always uses the legacy layout.
  if (!v5 && conn->negotiated_v5) {
    conn->v5.store(true, std::memory_order_release);
  }
  // Wake stats subscriptions when a mutation may have advanced the index
  // version (the segment observer already handled match subscriptions).
  if (failure.ok() && IsMutatingType(request.type)) {
    engine_.OnIndexVersion(system_->index_version());
  }
  // A protocol-ordering violation (RPC before Hello, bad version) closes the
  // connection after the error response; RPC-level failures (unknown camera,
  // shed query) keep it open.
  if (!failure.ok() && (failure.code() == StatusCode::kFailedPrecondition &&
                        !*hello_done)) {
    return false;
  }
  return true;
}

std::string Server::DispatchRequest(const WireFrame& request, ConnShared* conn,
                                    uint64_t correlation, bool* hello_done,
                                    Status* failure) {
  io::BinaryReader reader(request.payload);
  const MsgType type = static_cast<MsgType>(request.type);

  if (type == MsgType::kHello) {
    auto version = reader.ReadU32();
    if (!version.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         version.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    io::BinaryWriter writer;
    if (*version < kMinProtocolVersion || *version > kProtocolVersion) {
      *failure = Status::FailedPrecondition(
          "protocol version mismatch: client speaks v" +
          std::to_string(*version) + ", server speaks v" +
          std::to_string(kMinProtocolVersion) + "-v" +
          std::to_string(kProtocolVersion));
      EncodeWireStatus(&writer, {*failure, 0});
    } else {
      *hello_done = true;
      // A v4 client keeps the legacy framing for the whole connection; a
      // v5 client switches after this response is written.
      conn->negotiated_v5 = *version >= 5;
      EncodeWireStatus(&writer, {Status::OK(), 0});
    }
    writer.WriteU32(kProtocolVersion);
    return writer.buffer();
  }
  if (!*hello_done) {
    *failure =
        Status::FailedPrecondition("first message must be Hello");
    return StatusOnlyResponse(*failure, 0);
  }

  // Subscription management is connection-scoped (no idempotency token: a
  // lost reply costs nothing — subscriptions die with the connection and
  // re-subscribing is cheap and exact).
  if (type == MsgType::kSubscribe) {
    auto spec = DecodeSubscribeRequest(&reader);
    if (!spec.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         spec.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    if (!conn->v5.load(std::memory_order_acquire)) {
      *failure = Status::FailedPrecondition(
          "Subscribe requires protocol v5: push frames are multiplexed by "
          "correlation id, which v4 framing cannot carry");
      return StatusOnlyResponse(*failure, 0);
    }
    const uint64_t id = engine_.Subscribe(conn->id, correlation,
                                          std::move(*spec));
    io::BinaryWriter writer;
    EncodeWireStatus(&writer, {Status::OK(), 0});
    writer.WriteU64(id);
    return writer.buffer();
  }
  if (type == MsgType::kUnsubscribe) {
    auto id = reader.ReadU64();
    if (!id.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         id.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    const Status cancelled = engine_.Unsubscribe(conn->id, *id);
    if (!cancelled.ok()) *failure = cancelled;
    return StatusOnlyResponse(cancelled, 0);
  }

  if (IsMutatingType(request.type)) {
    auto token = DecodeIdempotencyToken(&reader);
    if (!token.ok()) {
      *failure = Status::InvalidArgument("malformed idempotency token: " +
                                         token.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    return DispatchMutating(type, *token, &reader, failure);
  }
  return ExecuteRequest(type, &reader, failure);
}

std::string Server::DispatchMutating(MsgType type,
                                     const IdempotencyToken& token,
                                     io::BinaryReader* reader,
                                     Status* failure) {
  std::shared_ptr<Session> session = GetSession(token.session_id);
  {
    std::unique_lock<std::mutex> lock(session->mu);
    for (;;) {
      auto it = session->done.find(token.sequence);
      if (it != session->done.end()) {
        // Exactly-once in action: the client re-sent after an ambiguous
        // transport failure; answer byte-identically without re-applying.
        duplicates_replayed_.fetch_add(1);
        const CachedResponse cached = it->second;
        lock.unlock();
        // The replayed ack honors the same durability contract the
        // original would have: its record may still be riding a group
        // commit. (lsn 0 = no WAL, or an entry rebuilt during recovery —
        // the log already holds it.)
        if (wal_ != nullptr && cached.lsn != 0) {
          if (Status durable = wal_->WaitDurable(cached.lsn);
              !durable.ok()) {
            *failure = durable;
            return StatusOnlyResponse(*failure, 0);
          }
          if (options_.sync_replication) {
            if (Status shipped = WaitShipped(cached.lsn); !shipped.ok()) {
              *failure = shipped;
              return StatusOnlyResponse(*failure, 0);
            }
          }
        }
        return cached.bytes;
      }
      if (token.sequence <= session->evicted_up_to) {
        // Trimmed out of the window: replaying is impossible and
        // re-executing could double-apply, so refuse loudly.
        *failure = Status::FailedPrecondition(
            "duplicate sequence " + std::to_string(token.sequence) +
            " is older than the dedup window; exactly-once cannot be "
            "guaranteed");
        return StatusOnlyResponse(*failure, 0);
      }
      if (session->executing.count(token.sequence) != 0) {
        // The original is still running (the client timed out and retried
        // over a new connection); wait for its response instead of racing.
        session->cv.wait(lock);
        continue;
      }
      break;  // fresh sequence
    }
    session->executing.insert(token.sequence);
  }

  // The log carries the verbatim post-token request bytes: replaying them
  // through the same dispatch regenerates byte-identical state AND a
  // byte-identical response, so recovery can rebuild the dedup window.
  const std::string body(reader->data().substr(reader->position()));

  uint64_t lsn = 0;
  std::string response;
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    response = ExecuteMutating(type, reader, failure);
    if (wal_ != nullptr && failure->ok() && IsWalLoggedType(type)) {
      io::WalRecord record;
      record.session_id = token.session_id;
      record.sequence = token.sequence;
      record.op = static_cast<uint32_t>(type);
      record.epoch = wal_epoch_.load();
      record.payload = body;
      auto appended = wal_->Append(record);
      if (!appended.ok()) {
        // Applied in memory but not loggable: acking would break the
        // zero-loss contract, so the client sees the append failure (and
        // its retry will be deduplicated against this cached error).
        *failure = appended.status();
        response = StatusOnlyResponse(*failure, 0);
      } else {
        lsn = *appended;
      }
    }
    // Cache INSIDE the state lock: a checkpoint capturing the dedup
    // windows holds this lock exclusively, so it can never miss an op it
    // already covers.
    CacheSessionResponse(session.get(), token.sequence, response, lsn);
    if (lsn != 0 && type == MsgType::kFlush &&
        options_.wal_compact_bytes > 0 &&
        wal_->live_bytes() >= options_.wal_compact_bytes) {
      // Flush is the natural checkpoint cut: segment state is sealed and
      // the log is at its least interesting.
      CheckpointLocked(lsn);
    }
  }

  // The durability wait happens OUTSIDE the state lock: queries and other
  // sessions proceed while this ack rides the group commit.
  if (lsn != 0) {
    if (Status durable = wal_->WaitDurable(lsn); !durable.ok()) {
      *failure = durable;
      return StatusOnlyResponse(*failure, 0);
    }
    if (options_.sync_replication) {
      if (Status shipped = WaitShipped(lsn); !shipped.ok()) {
        *failure = shipped;
        return StatusOnlyResponse(*failure, 0);
      }
    }
  }
  return response;
}

void Server::CacheSessionResponse(Session* session, uint64_t sequence,
                                  const std::string& response, uint64_t lsn) {
  std::lock_guard<std::mutex> lock(session->mu);
  session->executing.erase(sequence);
  session->done[sequence] = {response, lsn};
  while (session->done.size() > options_.dedup_window) {
    auto oldest = session->done.begin();
    session->evicted_up_to = std::max(session->evicted_up_to, oldest->first);
    session->done.erase(oldest);
  }
  session->cv.notify_all();
}

Status Server::WaitShipped(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(ship_mu_);
  ship_cv_.wait(lock,
                [&] { return stopping_.load() || shipped_acked_ >= lsn; });
  if (shipped_acked_ >= lsn) return Status::OK();
  return Status::Unavailable(
      "server stopping before a standby acknowledged lsn " +
      std::to_string(lsn));
}

std::shared_ptr<Server::Session> Server::GetSession(uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const uint64_t tick = ++session_tick_;
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    it->second->last_used_tick = tick;
    return it->second;
  }
  if (sessions_.size() >= std::max<size_t>(options_.max_sessions, 1)) {
    // LRU eviction: drop the session idle the longest. Its dedup window is
    // lost, so a late duplicate from that client gets the loud
    // kFailedPrecondition refusal rather than a silent double-apply.
    auto lru = sessions_.begin();
    for (auto cand = sessions_.begin(); cand != sessions_.end(); ++cand) {
      if (cand->second->last_used_tick < lru->second->last_used_tick) {
        lru = cand;
      }
    }
    sessions_.erase(lru);
    sessions_evicted_.fetch_add(1);
  }
  auto session = std::make_shared<Session>();
  session->last_used_tick = tick;
  sessions_.emplace(id, session);
  return session;
}

std::string Server::ExecuteRequest(MsgType type, io::BinaryReader* reader_ptr,
                                   Status* failure) {
  io::BinaryReader& reader = *reader_ptr;
  const int64_t retry_after_ms =
      system_->options().admission.retry_after_hint_ms;

  // Everything the payload decoders reject is a malformed (but
  // CRC-consistent) payload: answer kInvalidArgument, keep the connection.
  auto malformed = [&](const Status& status) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       status.message());
    return StatusOnlyResponse(*failure, 0);
  };

  switch (type) {
    case MsgType::kCameraStart:
    case MsgType::kCameraTerminate:
    case MsgType::kIngestFrame:
    case MsgType::kIngestBatch:
    case MsgType::kFlush:
    case MsgType::kSnapshotSave:
    case MsgType::kSnapshotLoad:
    case MsgType::kAdminTune: {
      // Mutating RPCs normally arrive through DispatchMutating (which
      // holds the state lock across execute + log); this path only serves
      // callers that bypass the token preamble.
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      return ExecuteMutating(type, &reader, failure);
    }
    case MsgType::kPing: {
      pings_served_.fetch_add(1);
      return StatusOnlyResponse(Status::OK(), 0);
    }
    case MsgType::kDirectQuery: {
      auto feature = DecodeFeatureVector(&reader);
      if (!feature.ok()) return malformed(feature.status());
      auto constraints = DecodeQueryConstraints(&reader);
      if (!constraints.ok()) return malformed(constraints.status());
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      auto result = system_->DirectQuery(*feature, *constraints);
      io::BinaryWriter writer;
      if (!result.ok()) {
        *failure = result.status();
        EncodeWireStatus(&writer, {*failure, retry_after_ms});
        return writer.buffer();
      }
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeDirectQueryResult(&writer, *result);
      return writer.buffer();
    }
    case MsgType::kClusteringQueryById:
    case MsgType::kClusteringQueryByMap: {
      StatusOr<core::ClusteringQueryResult> result =
          Status::Internal("unreachable");
      if (type == MsgType::kClusteringQueryById) {
        auto id = reader.ReadI64();
        if (!id.ok()) return malformed(id.status());
        auto constraints = DecodeQueryConstraints(&reader);
        if (!constraints.ok()) return malformed(constraints.status());
        std::shared_lock<std::shared_mutex> lock(state_mu_);
        result = system_->ClusteringQuery(*id, *constraints);
      } else {
        auto target = DecodeFeatureMap(&reader);
        if (!target.ok()) return malformed(target.status());
        auto constraints = DecodeQueryConstraints(&reader);
        if (!constraints.ok()) return malformed(constraints.status());
        std::shared_lock<std::shared_mutex> lock(state_mu_);
        result = system_->ClusteringQuery(*target, *constraints);
      }
      io::BinaryWriter writer;
      if (!result.ok()) {
        *failure = result.status();
        EncodeWireStatus(&writer, {*failure, retry_after_ms});
        return writer.buffer();
      }
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeClusteringQueryResult(&writer, *result);
      return writer.buffer();
    }
    case MsgType::kGetMetaData: {
      auto id = reader.ReadI64();
      if (!id.ok()) return malformed(id.status());
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      auto meta = system_->GetMetaData(*id);
      io::BinaryWriter writer;
      if (!meta.ok()) {
        *failure = meta.status();
        EncodeWireStatus(&writer, {*failure, 0});
        return writer.buffer();
      }
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeSvsMetadata(&writer, *meta);
      return writer.buffer();
    }
    case MsgType::kMonitorStats: {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      MonitorStatsReply stats;
      stats.ingest = system_->ingest_stats();
      stats.cache = system_->omd_cache().stats();
      stats.svs_count = system_->svs_store().size();
      stats.camera_count = system_->cameras().size();
      stats.now_ms = system_->now_ms();
      const ServerStats serving = this->stats();
      stats.serving.connections_accepted = serving.connections_accepted;
      stats.serving.connections_shed = serving.connections_shed;
      stats.serving.connections_evicted_idle =
          serving.connections_evicted_idle;
      stats.serving.connections_evicted_slow =
          serving.connections_evicted_slow;
      stats.serving.duplicates_replayed = serving.duplicates_replayed;
      stats.serving.pings_served = serving.pings_served;
      stats.serving.sessions_active = serving.sessions_active;
      stats.serving.sessions_evicted = serving.sessions_evicted;
      stats.serving.role = serving.role;
      stats.serving.wal_appends = serving.wal_appends;
      stats.serving.wal_fsyncs = serving.wal_fsyncs;
      stats.serving.wal_replayed_records = serving.wal_replayed_records;
      stats.serving.wal_salvaged_bytes = serving.wal_salvaged_bytes;
      stats.serving.wal_checkpoints = serving.wal_checkpoints;
      stats.serving.wal_last_lsn = serving.wal_last_lsn;
      stats.serving.wal_durable_lsn = serving.wal_durable_lsn;
      stats.serving.replication_lag_records =
          serving.replication_lag_records;
      stats.serving.replication_reseeds = serving.replication_reseeds;
      stats.serving.subscriptions_active = serving.subscriptions_active;
      stats.serving.subscriptions_total = serving.subscriptions_total;
      stats.serving.pushes_sent = serving.pushes_sent;
      stats.serving.push_drops = serving.push_drops;
      stats.serving.push_gaps_sent = serving.push_gaps_sent;
      stats.serving.ingest_batches = serving.ingest_batches;
      stats.serving.connections = connection_stats();
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeMonitorStats(&writer, stats);
      return writer.buffer();
    }
    case MsgType::kCameraHealth: {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      std::vector<CameraHealthEntry> report;
      for (const auto& [camera, health] : system_->CameraHealthReport()) {
        report.push_back({camera, health});
      }
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeCameraHealthReport(&writer, report);
      return writer.buffer();
    }
    case MsgType::kQueryLoadStats: {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeQueryLoadStats(&writer, system_->query_load_stats());
      return writer.buffer();
    }
    case MsgType::kWalShip: {
      auto request = DecodeWalShipRequest(&reader);
      if (!request.ok()) return malformed(request.status());
      if (wal_ == nullptr) {
        *failure = Status::FailedPrecondition(
            "server runs without a WAL; nothing to ship");
        return StatusOnlyResponse(*failure, 0);
      }
      // Fencing: a caller announcing a NEWER epoch proves a failover
      // happened that this server never saw — it has been demoted, and
      // advancing the ack (or shipping its stale history) would double-
      // apply records the new primary already owns. Refuse before touching
      // the ack frontier. Epoch 0 = the caller does not know yet; passes.
      const uint64_t server_epoch = wal_epoch_.load();
      if (request->epoch > server_epoch) {
        *failure = Status::FailedPrecondition(
            "fenced: caller is at promotion epoch " +
            std::to_string(request->epoch) + " but this server is at " +
            std::to_string(server_epoch) +
            " — it was demoted by a failover it never saw");
        return StatusOnlyResponse(*failure, 0);
      }
      // The from LSN is a windowed ack: the caller has durably applied
      // everything at or below it. Release sync-replication waiters.
      {
        std::lock_guard<std::mutex> lock(ship_mu_);
        if (request->from_lsn > shipped_acked_) {
          shipped_acked_ = request->from_lsn;
          ship_cv_.notify_all();
        }
      }
      const uint64_t max_records = std::min<uint64_t>(
          request->max_records == 0 ? 1 : request->max_records, 4096);
      const int64_t wait_ms = std::min<uint32_t>(request->wait_ms, 10'000);
      // No state lock: shipping reads only the (internally synchronized)
      // log, so ingest proceeds while a standby tails.
      auto records = wal_->ReadFrom(request->from_lsn, max_records);
      if (records.ok() && records->empty() && wait_ms > 0 &&
          !stopping_.load()) {
        // Long poll: wait for new durable records instead of busy-polling.
        (void)wal_->WaitDurablePast(request->from_lsn, wait_ms);
        records = wal_->ReadFrom(request->from_lsn, max_records);
      }
      io::BinaryWriter writer;
      if (!records.ok()) {
        // kOutOfRange = the log was compacted past from_lsn: the standby
        // missed its window and must re-seed from a checkpoint.
        *failure = records.status();
        EncodeWireStatus(&writer, {*failure, 0});
        return writer.buffer();
      }
      WalShipReply reply;
      reply.durable_lsn = wal_->durable_lsn();
      reply.epoch = server_epoch;
      reply.records = std::move(*records);
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeWalShipReply(&writer, reply);
      return writer.buffer();
    }
    case MsgType::kRepSync: {
      auto request = DecodeRepSyncRequest(&reader);
      if (!request.ok()) return malformed(request.status());
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      RepSyncReply reply;
      reply.version = system_->index_version();
      // since_version 0 = the caller never synced: always ship, even when
      // this edge's version is still 0 (its entry set is empty anyway).
      if (request->since_version == reply.version && reply.version != 0) {
        reply.unchanged = true;
      } else {
        reply.entries = system_->inter_index().entries();
      }
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeRepSyncReply(&writer, reply);
      return writer.buffer();
    }
    case MsgType::kSvsFeatureMap: {
      auto id = reader.ReadI64();
      if (!id.ok()) return malformed(id.status());
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      auto svs = system_->svs_store().Get(*id);
      io::BinaryWriter writer;
      if (!svs.ok()) {
        *failure = svs.status();
        EncodeWireStatus(&writer, {*failure, 0});
        return writer.buffer();
      }
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeFeatureMap(&writer, (*svs)->features());
      return writer.buffer();
    }
    case MsgType::kCheckpointFetch: {
      if (wal_ == nullptr) {
        *failure = Status::FailedPrecondition(
            "server runs without a WAL; no checkpoints to fetch");
        return StatusOnlyResponse(*failure, 0);
      }
      // The shared state lock excludes a concurrent CheckpointLocked (which
      // runs under the exclusive lock), so the pair we validate cannot be
      // replaced or pruned mid-read.
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      auto lsns = io::ListWalCheckpointLsns(options_.wal_dir);
      if (!lsns.ok()) {
        *failure = lsns.status();
        return StatusOnlyResponse(*failure, 0);
      }
      for (auto it = lsns->rbegin(); it != lsns->rend(); ++it) {
        // Validate through the same loaders recovery uses: only a pair the
        // caller will actually be able to restore is worth shipping.
        const std::string meta_path =
            io::WalCheckpointMetaPath(options_.wal_dir, *it);
        const std::string snapshot_path =
            io::WalCheckpointSnapshotPath(options_.wal_dir, *it);
        auto meta = io::LoadWalCheckpointMeta(meta_path);
        if (!meta.ok()) continue;
        core::SvsStore probe;
        if (!io::LoadSvsStore(snapshot_path, &probe).ok()) continue;
        auto snapshot_bytes = ReadWholeFile(snapshot_path);
        if (!snapshot_bytes.ok()) continue;
        auto meta_bytes = ReadWholeFile(meta_path);
        if (!meta_bytes.ok()) continue;
        CheckpointFetchReply reply;
        reply.lsn = *it;
        reply.epoch = meta->epoch;
        reply.snapshot_bytes = std::move(*snapshot_bytes);
        reply.meta_bytes = std::move(*meta_bytes);
        io::BinaryWriter writer;
        EncodeWireStatus(&writer, {Status::OK(), 0});
        EncodeCheckpointFetchReply(&writer, reply);
        return writer.buffer();
      }
      *failure = Status::NotFound("no valid checkpoint pair to fetch");
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kHello:
    case MsgType::kSubscribe:
    case MsgType::kUnsubscribe:
      break;  // handled before dispatch (they need connection identity)
    case MsgType::kPushEvent:
      break;  // server->client only; rejected before dispatch
  }
  *failure = Status::Unimplemented("unhandled message type " +
                                   std::to_string(static_cast<uint32_t>(type)));
  return StatusOnlyResponse(*failure, 0);
}

std::string Server::ExecuteMutating(MsgType type, io::BinaryReader* reader_ptr,
                                    Status* failure) {
  io::BinaryReader& reader = *reader_ptr;
  auto malformed = [&](const Status& status) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       status.message());
    return StatusOnlyResponse(*failure, 0);
  };

  switch (type) {
    case MsgType::kCameraStart: {
      auto camera = reader.ReadString();
      if (!camera.ok()) return malformed(camera.status());
      *failure = system_->CameraStart(*camera);
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kCameraTerminate: {
      auto camera = reader.ReadString();
      if (!camera.ok()) return malformed(camera.status());
      *failure = system_->CameraTerminate(*camera);
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kIngestFrame: {
      auto frame = DecodeFrameObservation(&reader);
      if (!frame.ok()) return malformed(frame.status());
      *failure = system_->IngestFrame(*frame);
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kIngestBatch: {
      // N frames per RPC, one token, one WAL record. Per-frame failures
      // (unknown camera, stale frame id) reject that frame and continue:
      // the overall RPC succeeds with deterministic accept/reject counts,
      // so WAL replay regenerates byte-identical state and response.
      auto count = reader.ReadU32();
      if (!count.ok()) return malformed(count.status());
      IngestBatchReply result;
      for (uint32_t i = 0; i < *count; ++i) {
        auto frame = DecodeFrameObservation(&reader);
        if (!frame.ok()) return malformed(frame.status());
        if (system_->IngestFrame(*frame).ok()) {
          ++result.accepted;
        } else {
          ++result.rejected;
        }
      }
      ingest_batches_.fetch_add(1);
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeIngestBatchReply(&writer, result);
      return writer.buffer();
    }
    case MsgType::kAdminTune: {
      auto request = DecodeAdminTuneRequest(&reader);
      if (!request.ok()) return malformed(request.status());
      if (request->index_mode.has_value() &&
          *request->index_mode >
              static_cast<uint32_t>(core::IndexMode::kFlat)) {
        *failure = Status::InvalidArgument(
            "unknown index mode " + std::to_string(*request->index_mode));
        return StatusOnlyResponse(*failure, 0);
      }
      if (request->boundary_scale.has_value() &&
          !(*request->boundary_scale > 0.0)) {
        *failure = Status::InvalidArgument("boundary scale must be > 0");
        return StatusOnlyResponse(*failure, 0);
      }
      // Validation above, application below: a refused request changes
      // nothing (the knobs apply atomically as a set or not at all, except
      // for recluster failures, which report the partial apply loudly).
      if (request->index_mode.has_value()) {
        system_->SetIndexMode(
            static_cast<core::IndexMode>(*request->index_mode));
      }
      if (request->boundary_scale.has_value()) {
        system_->SetBoundaryScale(*request->boundary_scale);
      }
      if (request->omd_alpha.has_value()) {
        system_->SetOmdAlpha(*request->omd_alpha);  // clamped internally
      }
      if (request->keyframe_selection.has_value()) {
        system_->SetKeyframeSelection(*request->keyframe_selection);
      }
      if (request->inter_group_count.has_value()) {
        std::optional<size_t> k;  // wire 0 = auto (silhouette-chosen)
        if (*request->inter_group_count != 0) {
          k = static_cast<size_t>(*request->inter_group_count);
        }
        if (Status s = system_->SetInterGroupCount(k); !s.ok()) {
          *failure = s;
          return StatusOnlyResponse(*failure, 0);
        }
      }
      if (request->intra_cluster_count.has_value()) {
        std::optional<size_t> k;
        if (*request->intra_cluster_count != 0) {
          k = static_cast<size_t>(*request->intra_cluster_count);
        }
        if (Status s = system_->SetIntraClusterCount(k); !s.ok()) {
          *failure = s;
          return StatusOnlyResponse(*failure, 0);
        }
      }
      AdminTuneReply reply;
      reply.index_mode = static_cast<uint32_t>(system_->index_mode());
      reply.boundary_scale = system_->boundary_scale();
      reply.omd_alpha = system_->omd_alpha();
      reply.keyframe_selection = system_->keyframe_selection();
      reply.inter_group_count =
          system_->forced_inter_group_count().value_or(0);
      reply.intra_cluster_count =
          system_->forced_intra_cluster_count().value_or(0);
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeAdminTuneReply(&writer, reply);
      return writer.buffer();
    }
    case MsgType::kFlush: {
      *failure = system_->Flush();
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kSnapshotSave: {
      auto path = reader.ReadString();
      if (!path.ok()) return malformed(path.status());
      *failure = io::SaveSvsStore(system_->svs_store(), *path);
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kSnapshotLoad: {
      auto path = reader.ReadString();
      if (!path.ok()) return malformed(path.status());
      core::SvsStore loaded;
      *failure = io::LoadSvsStore(*path, &loaded);
      if (failure->ok()) {
        *failure = system_->RestoreFromSvsStore(loaded);
      }
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {*failure, 0});
      writer.WriteU64(loaded.size());
      return writer.buffer();
    }
    default:
      break;
  }
  *failure = Status::Unimplemented(
      "not a mutating message type " +
      std::to_string(static_cast<uint32_t>(type)));
  return StatusOnlyResponse(*failure, 0);
}

// --- Durability: recovery, checkpointing, replication. ---

Status Server::RestoreCheckpointState(const io::WalCheckpoint& checkpoint,
                                      const core::SvsStore& store) {
  VZ_RETURN_IF_ERROR(system_->RestoreFromSvsStore(store));
  // The manifest's camera list is the authority: RestoreFromSvsStore
  // auto-starts every camera that owns an SVS, resurrecting cameras that
  // were terminated after their last flush — terminate those again.
  std::set<core::CameraId> recorded;
  for (const io::WalCheckpoint::Camera& entry : checkpoint.cameras) {
    recorded.insert(entry.camera);
  }
  for (const core::CameraId& camera : system_->cameras()) {
    if (recorded.count(camera) == 0) {
      VZ_RETURN_IF_ERROR(system_->CameraTerminate(camera));
    }
  }
  std::set<core::CameraId> started;
  for (const core::CameraId& camera : system_->cameras()) {
    started.insert(camera);
  }
  for (const io::WalCheckpoint::Camera& entry : checkpoint.cameras) {
    if (started.count(entry.camera) == 0) {
      // Started but never flushed an SVS before the checkpoint.
      VZ_RETURN_IF_ERROR(system_->CameraStart(entry.camera));
    }
    core::CameraGuardState guard;
    guard.stats = entry.stats;
    guard.last_frame_id = entry.last_frame_id;
    guard.expected_dim = entry.expected_dim;
    VZ_RETURN_IF_ERROR(system_->RestoreCameraGuardState(entry.camera, guard));
  }
  system_->RestoreIngestStats(checkpoint.ingest);
  system_->AdvanceTime(checkpoint.now_ms);
  AdoptEpoch(checkpoint.epoch);
  // Rebuild the dedup windows: a duplicate retry that straddles the
  // crash must be replayed from here, not re-applied. LSN 0 = already
  // durable (the checkpoint holds it). Whatever sessions existed before
  // (the re-seed path replaces a live standby's state) are superseded by
  // the checkpoint's capture.
  std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
  sessions_.clear();
  for (const io::WalCheckpoint::Session& entry : checkpoint.sessions) {
    auto session = std::make_shared<Session>();
    session->evicted_up_to = entry.evicted_up_to;
    for (const auto& [sequence, bytes] : entry.responses) {
      session->done[sequence] = {bytes, 0};
    }
    session->last_used_tick = ++session_tick_;
    sessions_[entry.session_id] = session;
  }
  return Status::OK();
}

Status Server::RecoverFromWal() {
  // Probe checkpoints newest-first: a crash between the snapshot and
  // manifest writes leaves a half-pair, which simply fails validation and
  // falls through to the previous complete one.
  uint64_t checkpoint_lsn = 0;
  if (auto lsns = io::ListWalCheckpointLsns(options_.wal_dir); lsns.ok()) {
    for (auto it = lsns->rbegin(); it != lsns->rend(); ++it) {
      auto meta = io::LoadWalCheckpointMeta(
          io::WalCheckpointMetaPath(options_.wal_dir, *it));
      if (!meta.ok()) continue;
      core::SvsStore store;
      if (!io::LoadSvsStore(
               io::WalCheckpointSnapshotPath(options_.wal_dir, *it), &store)
               .ok()) {
        continue;
      }
      // The pair is fully valid; from here on, failures are terminal (a
      // half-restored system must not serve).
      VZ_RETURN_IF_ERROR(RestoreCheckpointState(*meta, store));
      checkpoint_lsn = *it;
      break;
    }
  }

  io::WalOptions wal_options;
  wal_options.dir = options_.wal_dir;
  wal_options.fsync_interval_ms = options_.wal_fsync_interval_ms;
  wal_options.segment_bytes = options_.wal_segment_bytes;
  wal_options.start_lsn = checkpoint_lsn;
  VZ_ASSIGN_OR_RETURN(wal_, io::Wal::Open(wal_options));

  if (wal_->base_lsn() > checkpoint_lsn &&
      wal_->last_lsn() > wal_->base_lsn()) {
    // The log was compacted past the newest restorable checkpoint (e.g.
    // its snapshot was damaged): records in (checkpoint_lsn, base] are
    // unrecoverable, so refuse to serve a silently holey history.
    return Status::DataLoss(
        "WAL starts at lsn " + std::to_string(wal_->base_lsn()) +
        " but the newest valid checkpoint covers only up to " +
        std::to_string(checkpoint_lsn));
  }

  in_recovery_ = true;
  Status replayed = wal_->Replay(
      checkpoint_lsn, [this](const io::WalRecord& record) {
        return ApplyWalRecord(record, /*from_replication=*/false);
      });
  in_recovery_ = false;
  return replayed;
}

Status Server::ApplyWalRecord(const io::WalRecord& record,
                              bool from_replication) {
  // Every record carries the epoch it was written under; the running
  // maximum is what fences a demoted primary even after its own restart.
  AdoptEpoch(record.epoch);
  if (record.op == io::kWalOpEpochMarker) {
    // A promotion marker changes no state — only the epoch above. It still
    // mirrors (or counts as replayed) so the LSN chain stays dense.
    if (from_replication) {
      auto appended = wal_->Append(record);
      VZ_RETURN_IF_ERROR(appended.status());
      if (*appended != record.lsn) {
        return Status::Internal("replication lsn skew: applied " +
                                std::to_string(record.lsn) + " as " +
                                std::to_string(*appended));
      }
    } else {
      wal_replayed_records_.fetch_add(1);
    }
    return Status::OK();
  }
  std::unique_lock<std::shared_mutex> state_lock(state_mu_);
  io::BinaryReader reader(record.payload);
  Status failure;
  const MsgType type = static_cast<MsgType>(record.op);
  const std::string response = ExecuteMutating(type, &reader, &failure);
  if (!failure.ok()) {
    // Only successful ops are logged, so a logged op must re-apply
    // cleanly; anything else is divergence, not a tolerable error.
    return Status(failure.code(),
                  "WAL replay diverged at lsn " + std::to_string(record.lsn) +
                      " (op " + std::to_string(record.op) +
                      "): " + failure.message());
  }
  uint64_t cached_lsn = 0;
  if (from_replication) {
    // Mirror under the primary's LSN so the standby's log IS the
    // primary's log (same numbering, same compaction arithmetic).
    io::WalRecord mirrored = record;
    auto appended = wal_->Append(mirrored);
    VZ_RETURN_IF_ERROR(appended.status());
    if (*appended != record.lsn) {
      return Status::Internal("replication lsn skew: applied " +
                              std::to_string(record.lsn) + " as " +
                              std::to_string(*appended));
    }
    cached_lsn = record.lsn;
  } else {
    wal_replayed_records_.fetch_add(1);
  }
  if (record.session_id != 0) {
    std::shared_ptr<Session> session = GetSession(record.session_id);
    CacheSessionResponse(session.get(), record.sequence, response,
                         cached_lsn);
  }
  if (from_replication && !in_recovery_ && type == MsgType::kFlush &&
      options_.wal_compact_bytes > 0 &&
      wal_->live_bytes() >= options_.wal_compact_bytes) {
    // The standby checkpoints on the same cadence as its primary.
    CheckpointLocked(record.lsn);
  }
  return Status::OK();
}

void Server::CheckpointLocked(uint64_t lsn) {
  io::WalCheckpoint checkpoint;
  checkpoint.lsn = lsn;
  checkpoint.epoch = wal_epoch_.load();
  checkpoint.now_ms = system_->now_ms();
  checkpoint.ingest = system_->ingest_stats();
  for (const core::CameraId& camera : system_->cameras()) {
    auto guard = system_->ExportCameraGuardState(camera);
    if (!guard.ok()) return;  // non-fatal: the WAL still covers everything
    io::WalCheckpoint::Camera entry;
    entry.camera = camera;
    entry.stats = guard->stats;
    entry.last_frame_id = guard->last_frame_id;
    entry.expected_dim = guard->expected_dim;
    checkpoint.cameras.push_back(std::move(entry));
  }
  {
    // state_mu_ (held by the caller) -> sessions_mu_ -> session->mu, the
    // same order DispatchMutating uses, so capture cannot deadlock or
    // miss an in-flight op.
    std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
    for (const auto& [id, session] : sessions_) {
      std::lock_guard<std::mutex> session_lock(session->mu);
      io::WalCheckpoint::Session entry;
      entry.session_id = id;
      entry.evicted_up_to = session->evicted_up_to;
      for (const auto& [sequence, cached] : session->done) {
        entry.responses.emplace_back(sequence, cached.bytes);
      }
      checkpoint.sessions.push_back(std::move(entry));
    }
  }
  // Snapshot before manifest: recovery treats a checkpoint as valid only
  // when BOTH load, so a crash between the writes (or inside either) just
  // wastes the pair. Compaction comes last — the log is never shortened
  // before its replacement is fully durable.
  const std::string snapshot_path =
      io::WalCheckpointSnapshotPath(options_.wal_dir, lsn);
  if (!io::SaveSvsStore(system_->svs_store(), snapshot_path).ok()) return;
  if (!io::SaveWalCheckpointMeta(
           checkpoint, io::WalCheckpointMetaPath(options_.wal_dir, lsn))
           .ok()) {
    return;
  }
  if (!wal_->Compact(lsn).ok()) return;
  wal_checkpoints_.fetch_add(1);
  io::RemoveWalCheckpointsBelow(options_.wal_dir, lsn);
}

void Server::ReplicationLoop() {
  std::unique_ptr<Client> client;
  while (!replication_stop_.load()) {
    if (client == nullptr) {
      ClientOptions client_options;
      // The long poll rides inside the I/O deadline.
      client_options.io_timeout_ms = options_.replication_poll_ms + 5'000;
      client_options.max_reconnects = 0;
      client_options.max_shed_retries = 0;
      auto connected =
          Client::Connect(options_.standby_of_host, options_.standby_of_port,
                          client_options);
      if (!connected.ok()) {
        replication_errors_.fetch_add(1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.replication_poll_ms));
        continue;
      }
      client = std::make_unique<Client>(std::move(*connected));
    }
    // The applied frontier doubles as the windowed ack.
    const uint64_t applied = wal_->last_lsn();
    auto reply = client->WalShip(
        applied, options_.replication_batch,
        static_cast<uint32_t>(options_.replication_poll_ms),
        wal_epoch_.load());
    if (!reply.ok()) {
      if (reply.status().code() == StatusCode::kFailedPrecondition) {
        // Fenced: the server we are tailing is at an older epoch than we
        // are — a demoted primary that woke up after a failover we
        // already know about. Not retryable; tailing it would re-apply
        // history the new primary owns.
        replication_errors_.fetch_add(1);
        return;
      }
      if (reply.status().code() == StatusCode::kOutOfRange) {
        // Compaction outran our cursor: the records we need were folded
        // into a checkpoint. Fetch it and resume tailing from its LSN
        // instead of terminating replication.
        if (Status reseeded = ReseedFromPrimary(client.get());
            !reseeded.ok()) {
          replication_errors_.fetch_add(1);
          client.reset();
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.replication_poll_ms));
        }
        continue;
      }
      // Dead or restarting primary: drop the connection and retry; the
      // next WalShip re-asks from the same applied frontier, so nothing
      // is skipped or doubled.
      replication_errors_.fetch_add(1);
      client.reset();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.replication_poll_ms));
      continue;
    }
    AdoptEpoch(reply->epoch);
    replication_primary_durable_.store(reply->durable_lsn);
    bool advanced = false;
    Status apply_status;
    for (const io::WalRecord& record : reply->records) {
      if (record.lsn <= wal_->last_lsn()) continue;  // already mirrored
      apply_status = ApplyWalRecord(record, /*from_replication=*/true);
      if (!apply_status.ok()) break;
      advanced = true;
    }
    if (!apply_status.ok()) {
      // Divergence is not retryable; stop tailing so the lag gauge (and
      // the error counter) make the operator look.
      replication_errors_.fetch_add(1);
      return;
    }
    if (advanced) {
      // Group-commit the batch before the next WalShip acks it upstream:
      // the ack promises durable application.
      if (!wal_->Sync().ok()) {
        replication_errors_.fetch_add(1);
        return;
      }
    }
  }
}

Status Server::ReseedFromPrimary(Client* client) {
  auto fetched = client->CheckpointFetch();
  VZ_RETURN_IF_ERROR(fetched.status());
  // The pair lands in our own wal_dir FIRST, fully durable, before any
  // local state is touched: a crash anywhere past this point recovers from
  // the fetched checkpoint through the normal path (recovery validates
  // pairs, so a torn write just falls back to tailing state — which will
  // hit kOutOfRange and re-seed again).
  const std::string snapshot_path =
      io::WalCheckpointSnapshotPath(options_.wal_dir, fetched->lsn);
  const std::string meta_path =
      io::WalCheckpointMetaPath(options_.wal_dir, fetched->lsn);
  VZ_RETURN_IF_ERROR(WriteFileDurable(snapshot_path, fetched->snapshot_bytes));
  VZ_RETURN_IF_ERROR(WriteFileDurable(meta_path, fetched->meta_bytes));
  // Validate through the same loaders recovery uses before dropping
  // anything local.
  auto checkpoint = io::LoadWalCheckpointMeta(meta_path);
  VZ_RETURN_IF_ERROR(checkpoint.status());
  core::SvsStore store;
  VZ_RETURN_IF_ERROR(io::LoadSvsStore(snapshot_path, &store));

  std::unique_lock<std::shared_mutex> state_lock(state_mu_);
  // Reset rewinds every seeded random stream, so the derived indexes
  // rebuilt from the fetched store are bit-identical to the primary's own
  // recovery of the same checkpoint.
  VZ_RETURN_IF_ERROR(system_->Reset());
  VZ_RETURN_IF_ERROR(RestoreCheckpointState(*checkpoint, store));
  // Replace the mirrored log wholesale: everything at or below the
  // checkpoint's LSN is covered by it, and everything above will be
  // re-tailed from the primary starting at the checkpoint cut.
  wal_.reset();
  VZ_RETURN_IF_ERROR(RemoveWalSegments(options_.wal_dir));
  io::WalOptions wal_options;
  wal_options.dir = options_.wal_dir;
  wal_options.fsync_interval_ms = options_.wal_fsync_interval_ms;
  wal_options.segment_bytes = options_.wal_segment_bytes;
  wal_options.start_lsn = checkpoint->lsn;
  VZ_ASSIGN_OR_RETURN(wal_, io::Wal::Open(wal_options));
  io::RemoveWalCheckpointsBelow(options_.wal_dir, checkpoint->lsn);
  replication_reseeds_.fetch_add(1);
  return Status::OK();
}

}  // namespace vz::net
