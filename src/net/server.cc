#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <sys/socket.h>
#include <utility>

#include "io/svs_snapshot.h"

namespace vz::net {

namespace {

/// Response payload: a wire status followed by nothing.
std::string StatusOnlyResponse(const Status& status, int64_t retry_after_ms) {
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {status, retry_after_ms});
  return writer.buffer();
}

int64_t ElapsedMs(const std::chrono::steady_clock::time_point& since,
                  const std::chrono::steady_clock::time_point& now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(now - since)
      .count();
}

}  // namespace

Server::Server(core::VideoZilla* system, const ServerOptions& options)
    : system_(system), options_(options) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  // Connection handlers live on pool workers for the whole connection, so
  // the shared pool must actually have workers; a serial system gets a
  // server-owned pool sized to the connection cap instead.
  pool_ = system_->thread_pool();
  if (pool_ == nullptr || pool_->num_threads() < 2) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.max_connections + 1);
    pool_ = owned_pool_.get();
  }
  connection_cap_ =
      std::min(options_.max_connections, pool_->num_threads() - 1);
  if (connection_cap_ == 0) connection_cap_ = 1;

  VZ_ASSIGN_OR_RETURN(listen_fd_,
                      TcpListen(options_.bind_address, options_.port));
  VZ_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_) return;
  stopping_.store(true);
  // Wake the blocking accept; close happens after the thread exits so the
  // descriptor cannot be reused mid-accept.
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();

  // Drain: handlers notice `stopping_` at their next idle poll and finish
  // the request they are serving first.
  std::vector<std::future<void>> futures;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool drained = drained_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this] { return active_conns_.empty(); });
    if (!drained) {
      for (const auto& [fd, conn] : active_conns_) ::shutdown(fd, SHUT_RDWR);
    }
    futures.swap(connection_futures_);
  }
  for (std::future<void>& f : futures) {
    if (f.valid()) f.wait();
  }
  started_ = false;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats stats;
  stats.connections_accepted = connections_accepted_;
  stats.connections_shed = connections_shed_;
  stats.connections_active = active_conns_.size();
  stats.requests_served = requests_served_.load();
  stats.request_errors = request_errors_.load();
  stats.connections_evicted_idle = evicted_idle_.load();
  stats.connections_evicted_slow = evicted_slow_.load();
  stats.duplicates_replayed = duplicates_replayed_.load();
  stats.pings_served = pings_served_.load();
  stats.sessions_evicted = sessions_evicted_.load();
  {
    std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
    stats.sessions_active = sessions_.size();
  }
  return stats;
}

std::vector<ConnectionInfo> Server::connection_stats() const {
  const auto now = SteadyClock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ConnectionInfo> infos;
  infos.reserve(active_conns_.size());
  for (const auto& [fd, conn] : active_conns_) {
    ConnectionInfo info;
    info.id = conn.id;
    info.age_ms = ElapsedMs(conn.connected_at, now);
    info.idle_ms = ElapsedMs(conn.last_activity, now);
    info.bytes_in = conn.bytes_in;
    info.bytes_out = conn.bytes_out;
    info.rpcs = conn.rpcs;
    infos.push_back(info);
  }
  std::sort(infos.begin(), infos.end(),
            [](const ConnectionInfo& a, const ConnectionInfo& b) {
              return a.id < b.id;
            });
  return infos;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = TcpAccept(listen_fd_.get());
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      continue;  // transient accept failure (e.g. EMFILE burst)
    }
    UniqueFd fd = std::move(*accepted);
    (void)SetTcpNoDelay(fd.get());

    std::lock_guard<std::mutex> lock(mu_);
    ++connections_accepted_;
    if (stopping_.load() || active_conns_.size() >= connection_cap_) {
      // Connection-level shedding: answer with the same wire status an
      // admission shed produces, so one client backoff path covers both.
      ++connections_shed_;
      const Status shed = Status::ResourceExhausted(
          "server at connection capacity (" +
          std::to_string(connection_cap_) + "); retry later");
      (void)WriteFrame(
          fd.get(), static_cast<uint32_t>(MsgType::kHello) | kResponseFlag,
          StatusOnlyResponse(shed, options_.shed_retry_after_ms),
          options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1);
      continue;  // fd closes on scope exit
    }
    ConnState conn;
    conn.id = ++next_connection_id_;
    conn.connected_at = SteadyClock::now();
    conn.last_activity = conn.connected_at;
    active_conns_.emplace(fd.get(), conn);
    // Completed connections leave stale ready futures behind; reap them
    // while we hold the lock anyway.
    std::erase_if(connection_futures_, [](std::future<void>& f) {
      return !f.valid() ||
             f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    });
    connection_futures_.push_back(pool_->Submit(
        [this, raw = fd.Release()]() mutable { HandleConnection(UniqueFd(raw)); }));
  }
}

void Server::TouchConnection(int fd, uint64_t bytes_in, uint64_t bytes_out,
                             bool completed_rpc) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_conns_.find(fd);
  if (it == active_conns_.end()) return;
  it->second.last_activity = SteadyClock::now();
  it->second.bytes_in += bytes_in;
  it->second.bytes_out += bytes_out;
  if (completed_rpc) ++it->second.rpcs;
}

void Server::HandleConnection(UniqueFd fd) {
  bool hello_done = false;
  // The idle clock: any completed request (including kPing) resets it.
  auto last_activity = SteadyClock::now();
  while (!stopping_.load()) {
    auto readable = WaitReadable(fd.get(), options_.idle_poll_ms);
    if (!readable.ok()) break;
    if (!*readable) {
      if (options_.idle_timeout_ms > 0 &&
          ElapsedMs(last_activity, SteadyClock::now()) >
              options_.idle_timeout_ms + options_.eviction_grace_ms) {
        evicted_idle_.fetch_add(1);
        break;
      }
      continue;  // idle; re-check the stop flag
    }
    if (!ServeOneRequest(fd.get(), &hello_done)) break;
    last_activity = SteadyClock::now();
  }
  std::lock_guard<std::mutex> lock(mu_);
  active_conns_.erase(fd.get());
  if (active_conns_.empty()) drained_cv_.notify_all();
}

bool Server::ServeOneRequest(int fd, bool* hello_done) {
  const int64_t read_timeout =
      options_.read_timeout_ms > 0 ? options_.read_timeout_ms : -1;
  const int64_t write_timeout =
      options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1;

  // The caller saw the first byte, so the whole frame now has to arrive
  // within the read deadline — a sender trickling bytes is a slow client.
  auto request = ReadFrame(fd, read_timeout);
  if (!request.ok()) {
    if (request.status().code() == StatusCode::kUnavailable) {
      evicted_slow_.fetch_add(1);
      return false;  // no response: the peer is not keeping up anyway
    }
    // Clean disconnect between frames is the normal end of a connection;
    // everything else (torn frame, checksum mismatch, unknown type) gets a
    // best-effort error response before the close.
    if (request.status().code() != StatusCode::kNotFound) {
      request_errors_.fetch_add(1);
      (void)WriteFrame(
          fd, static_cast<uint32_t>(MsgType::kHello) | kResponseFlag,
          StatusOnlyResponse(request.status(), 0), write_timeout);
    }
    return false;
  }
  if ((request->type & kResponseFlag) != 0) {
    request_errors_.fetch_add(1);
    (void)WriteFrame(fd, request->type,
                     StatusOnlyResponse(Status::InvalidArgument(
                                            "response frame sent as request"),
                                        0),
                     write_timeout);
    return false;
  }

  Status failure;
  const std::string response = DispatchRequest(*request, hello_done, &failure);
  if (failure.ok()) {
    requests_served_.fetch_add(1);
  } else {
    request_errors_.fetch_add(1);
  }
  TouchConnection(fd, WireFrameBytes(request->payload.size()),
                  WireFrameBytes(response.size()), failure.ok());
  if (Status s = WriteFrame(fd, request->type | kResponseFlag, response,
                            write_timeout);
      !s.ok()) {
    // A reader that stopped draining its responses is as stuck as a writer
    // that stopped sending.
    if (s.code() == StatusCode::kUnavailable) evicted_slow_.fetch_add(1);
    return false;
  }
  // A protocol-ordering violation (RPC before Hello, bad version) closes the
  // connection after the error response; RPC-level failures (unknown camera,
  // shed query) keep it open.
  if (!failure.ok() && (failure.code() == StatusCode::kFailedPrecondition &&
                        !*hello_done)) {
    return false;
  }
  return true;
}

std::string Server::DispatchRequest(const WireFrame& request,
                                    bool* hello_done, Status* failure) {
  io::BinaryReader reader(request.payload);
  const MsgType type = static_cast<MsgType>(request.type);

  if (type == MsgType::kHello) {
    auto version = reader.ReadU32();
    if (!version.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         version.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    io::BinaryWriter writer;
    if (*version != kProtocolVersion) {
      *failure = Status::FailedPrecondition(
          "protocol version mismatch: client speaks v" +
          std::to_string(*version) + ", server speaks v" +
          std::to_string(kProtocolVersion));
      EncodeWireStatus(&writer, {*failure, 0});
    } else {
      *hello_done = true;
      EncodeWireStatus(&writer, {Status::OK(), 0});
    }
    writer.WriteU32(kProtocolVersion);
    return writer.buffer();
  }
  if (!*hello_done) {
    *failure =
        Status::FailedPrecondition("first message must be Hello");
    return StatusOnlyResponse(*failure, 0);
  }

  if (IsMutatingType(request.type)) {
    auto token = DecodeIdempotencyToken(&reader);
    if (!token.ok()) {
      *failure = Status::InvalidArgument("malformed idempotency token: " +
                                         token.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    return DispatchMutating(type, *token, &reader, failure);
  }
  return ExecuteRequest(type, &reader, failure);
}

std::string Server::DispatchMutating(MsgType type,
                                     const IdempotencyToken& token,
                                     io::BinaryReader* reader,
                                     Status* failure) {
  std::shared_ptr<Session> session = GetSession(token.session_id);
  {
    std::unique_lock<std::mutex> lock(session->mu);
    for (;;) {
      auto it = session->done.find(token.sequence);
      if (it != session->done.end()) {
        // Exactly-once in action: the client re-sent after an ambiguous
        // transport failure; answer byte-identically without re-applying.
        duplicates_replayed_.fetch_add(1);
        return it->second;
      }
      if (token.sequence <= session->evicted_up_to) {
        // Trimmed out of the window: replaying is impossible and
        // re-executing could double-apply, so refuse loudly.
        *failure = Status::FailedPrecondition(
            "duplicate sequence " + std::to_string(token.sequence) +
            " is older than the dedup window; exactly-once cannot be "
            "guaranteed");
        return StatusOnlyResponse(*failure, 0);
      }
      if (session->executing.count(token.sequence) != 0) {
        // The original is still running (the client timed out and retried
        // over a new connection); wait for its response instead of racing.
        session->cv.wait(lock);
        continue;
      }
      break;  // fresh sequence
    }
    session->executing.insert(token.sequence);
  }

  const std::string response = ExecuteRequest(type, reader, failure);

  {
    std::lock_guard<std::mutex> lock(session->mu);
    session->executing.erase(token.sequence);
    session->done[token.sequence] = response;
    while (session->done.size() > options_.dedup_window) {
      auto oldest = session->done.begin();
      session->evicted_up_to =
          std::max(session->evicted_up_to, oldest->first);
      session->done.erase(oldest);
    }
    session->cv.notify_all();
  }
  return response;
}

std::shared_ptr<Server::Session> Server::GetSession(uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const uint64_t tick = ++session_tick_;
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    it->second->last_used_tick = tick;
    return it->second;
  }
  if (sessions_.size() >= std::max<size_t>(options_.max_sessions, 1)) {
    // LRU eviction: drop the session idle the longest. Its dedup window is
    // lost, so a late duplicate from that client gets the loud
    // kFailedPrecondition refusal rather than a silent double-apply.
    auto lru = sessions_.begin();
    for (auto cand = sessions_.begin(); cand != sessions_.end(); ++cand) {
      if (cand->second->last_used_tick < lru->second->last_used_tick) {
        lru = cand;
      }
    }
    sessions_.erase(lru);
    sessions_evicted_.fetch_add(1);
  }
  auto session = std::make_shared<Session>();
  session->last_used_tick = tick;
  sessions_.emplace(id, session);
  return session;
}

std::string Server::ExecuteRequest(MsgType type, io::BinaryReader* reader_ptr,
                                   Status* failure) {
  io::BinaryReader& reader = *reader_ptr;
  const int64_t retry_after_ms =
      system_->options().admission.retry_after_hint_ms;

  // Everything the payload decoders reject is a malformed (but
  // CRC-consistent) payload: answer kInvalidArgument, keep the connection.
  auto malformed = [&](const Status& status) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       status.message());
    return StatusOnlyResponse(*failure, 0);
  };

  switch (type) {
    case MsgType::kCameraStart: {
      auto camera = reader.ReadString();
      if (!camera.ok()) return malformed(camera.status());
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      *failure = system_->CameraStart(*camera);
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kCameraTerminate: {
      auto camera = reader.ReadString();
      if (!camera.ok()) return malformed(camera.status());
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      *failure = system_->CameraTerminate(*camera);
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kIngestFrame: {
      auto frame = DecodeFrameObservation(&reader);
      if (!frame.ok()) return malformed(frame.status());
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      *failure = system_->IngestFrame(*frame);
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kFlush: {
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      *failure = system_->Flush();
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kPing: {
      pings_served_.fetch_add(1);
      return StatusOnlyResponse(Status::OK(), 0);
    }
    case MsgType::kDirectQuery: {
      auto feature = DecodeFeatureVector(&reader);
      if (!feature.ok()) return malformed(feature.status());
      auto constraints = DecodeQueryConstraints(&reader);
      if (!constraints.ok()) return malformed(constraints.status());
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      auto result = system_->DirectQuery(*feature, *constraints);
      io::BinaryWriter writer;
      if (!result.ok()) {
        *failure = result.status();
        EncodeWireStatus(&writer, {*failure, retry_after_ms});
        return writer.buffer();
      }
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeDirectQueryResult(&writer, *result);
      return writer.buffer();
    }
    case MsgType::kClusteringQueryById:
    case MsgType::kClusteringQueryByMap: {
      StatusOr<core::ClusteringQueryResult> result =
          Status::Internal("unreachable");
      if (type == MsgType::kClusteringQueryById) {
        auto id = reader.ReadI64();
        if (!id.ok()) return malformed(id.status());
        auto constraints = DecodeQueryConstraints(&reader);
        if (!constraints.ok()) return malformed(constraints.status());
        std::shared_lock<std::shared_mutex> lock(state_mu_);
        result = system_->ClusteringQuery(*id, *constraints);
      } else {
        auto target = DecodeFeatureMap(&reader);
        if (!target.ok()) return malformed(target.status());
        auto constraints = DecodeQueryConstraints(&reader);
        if (!constraints.ok()) return malformed(constraints.status());
        std::shared_lock<std::shared_mutex> lock(state_mu_);
        result = system_->ClusteringQuery(*target, *constraints);
      }
      io::BinaryWriter writer;
      if (!result.ok()) {
        *failure = result.status();
        EncodeWireStatus(&writer, {*failure, retry_after_ms});
        return writer.buffer();
      }
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeClusteringQueryResult(&writer, *result);
      return writer.buffer();
    }
    case MsgType::kGetMetaData: {
      auto id = reader.ReadI64();
      if (!id.ok()) return malformed(id.status());
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      auto meta = system_->GetMetaData(*id);
      io::BinaryWriter writer;
      if (!meta.ok()) {
        *failure = meta.status();
        EncodeWireStatus(&writer, {*failure, 0});
        return writer.buffer();
      }
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeSvsMetadata(&writer, *meta);
      return writer.buffer();
    }
    case MsgType::kMonitorStats: {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      MonitorStatsReply stats;
      stats.ingest = system_->ingest_stats();
      stats.cache = system_->omd_cache().stats();
      stats.svs_count = system_->svs_store().size();
      stats.camera_count = system_->cameras().size();
      stats.now_ms = system_->now_ms();
      const ServerStats serving = this->stats();
      stats.serving.connections_accepted = serving.connections_accepted;
      stats.serving.connections_shed = serving.connections_shed;
      stats.serving.connections_evicted_idle =
          serving.connections_evicted_idle;
      stats.serving.connections_evicted_slow =
          serving.connections_evicted_slow;
      stats.serving.duplicates_replayed = serving.duplicates_replayed;
      stats.serving.pings_served = serving.pings_served;
      stats.serving.sessions_active = serving.sessions_active;
      stats.serving.sessions_evicted = serving.sessions_evicted;
      stats.serving.connections = connection_stats();
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeMonitorStats(&writer, stats);
      return writer.buffer();
    }
    case MsgType::kCameraHealth: {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      std::vector<CameraHealthEntry> report;
      for (const auto& [camera, health] : system_->CameraHealthReport()) {
        report.push_back({camera, health});
      }
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeCameraHealthReport(&writer, report);
      return writer.buffer();
    }
    case MsgType::kQueryLoadStats: {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {Status::OK(), 0});
      EncodeQueryLoadStats(&writer, system_->query_load_stats());
      return writer.buffer();
    }
    case MsgType::kSnapshotSave: {
      auto path = reader.ReadString();
      if (!path.ok()) return malformed(path.status());
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      *failure = io::SaveSvsStore(system_->svs_store(), *path);
      return StatusOnlyResponse(*failure, 0);
    }
    case MsgType::kSnapshotLoad: {
      auto path = reader.ReadString();
      if (!path.ok()) return malformed(path.status());
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      core::SvsStore loaded;
      *failure = io::LoadSvsStore(*path, &loaded);
      if (failure->ok()) {
        *failure = system_->RestoreFromSvsStore(loaded);
      }
      io::BinaryWriter writer;
      EncodeWireStatus(&writer, {*failure, 0});
      writer.WriteU64(loaded.size());
      return writer.buffer();
    }
    case MsgType::kHello:
      break;  // handled before dispatch
  }
  *failure = Status::Unimplemented("unhandled message type " +
                                   std::to_string(static_cast<uint32_t>(type)));
  return StatusOnlyResponse(*failure, 0);
}

}  // namespace vz::net
