#ifndef VZ_NET_COORDINATOR_H_
#define VZ_NET_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/inter_camera_index.h"
#include "core/omd.h"
#include "core/query.h"
#include "net/edge_registry.h"
#include "net/wire.h"

namespace vz::net {

class Client;

/// Shard-qualified SVS ids. Every edge numbers its SVSs locally from 0; the
/// coordinator exposes a single id space by packing the shard index into the
/// high bits. 40 bits of local id leaves room for 2^23 shards — both far
/// beyond anything a deployment reaches before other limits bite.
inline constexpr int kShardIdBits = 40;

inline constexpr core::SvsId GlobalSvsId(size_t shard, core::SvsId local) {
  return (static_cast<core::SvsId>(shard) << kShardIdBits) | local;
}
inline constexpr size_t ShardOfSvsId(core::SvsId global) {
  return static_cast<size_t>(global >> kShardIdBits);
}
inline constexpr core::SvsId LocalSvsId(core::SvsId global) {
  return global & ((core::SvsId{1} << kShardIdBits) - 1);
}

/// Configuration of the coordinator front end.
struct CoordinatorOptions {
  /// Port to listen on; 0 lets the kernel pick (read back with `port()`).
  uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  /// The edge shards, in shard-index order. The order is part of the
  /// deployment contract: it defines the global id space and the merge
  /// order, so every coordinator of one deployment must list the same edges
  /// in the same order.
  std::vector<EdgeEndpoint> edges;

  // --- Client-facing connection handling (mirrors ServerOptions). ---
  size_t max_connections = 8;
  int64_t shed_retry_after_ms = 50;
  int64_t idle_poll_ms = 50;
  int64_t drain_timeout_ms = 10'000;
  int64_t read_timeout_ms = 10'000;
  int64_t write_timeout_ms = 10'000;

  // --- Fan-out. ---

  /// Transport budget per edge RPC (connect and per-frame I/O) — the hard
  /// backstop bounding how long a stalled or blackholed shard can hold a
  /// fan-out leg. A killed edge fails much faster (connection refused /
  /// reset).
  int64_t edge_connect_timeout_ms = 2'000;
  int64_t edge_io_timeout_ms = 5'000;
  /// Reserved from a client deadline for the coordinator-side merge: each
  /// shard leg travels with `deadline_ms - merge_reserve_ms` (floored at
  /// 1 ms) so partial per-shard answers are back before the client's own
  /// budget expires.
  int64_t merge_reserve_ms = 20;
  /// Prune direct-query fan-out through the local representative index:
  /// shards none of whose synced representatives pass the hit test are not
  /// consulted (never-synced shards always are — there is nothing to prune
  /// with). Pruning-only at the shard granularity: an edge would reject the
  /// same representatives itself.
  bool prune_direct_fanout = true;
  /// Boundary scale of the coordinator-side hit tests; must match the
  /// edges' `VideoZillaOptions::boundary_scale`.
  double boundary_scale = 1.0;

  // --- Standing-query fan-out (v5). ---

  /// Bounded per-client-subscription forward buffer; drop-oldest with gap
  /// accounting once full (mirrors the edge engine's contract).
  size_t subscription_queue_capacity = 256;
  /// Cap on pushes forwarded per subscription per delivery round.
  size_t subscription_max_drain = 64;
  /// Fallback poll of the forward-delivery thread.
  int64_t push_poll_ms = 50;
  /// Keep a per-edge stats subscription that wakes the rep-sync thread the
  /// moment an edge's index version advances, instead of waiting out
  /// `sync_interval_ms`. The interval poll stays as the fallback (and the
  /// versioned "unchanged" RepSync fast path still bounds the cost of a
  /// spurious wake). Requires v5 edges; edges that refuse simply stay on
  /// the interval.
  bool rep_push = true;

  // --- Representative sync / probing. ---

  /// Cadence of the background rep-sync/probe thread. <= 0 disables the
  /// thread entirely; tests then drive `PollEdgesNow()` by hand for
  /// deterministic transitions.
  int64_t sync_interval_ms = 250;
  EdgeRegistryOptions registry;

  /// Configuration of the local representative index (OMD + inter options);
  /// must match the edges' so group summaries and hit tests agree.
  core::OmdOptions omd;
  core::InterIndexOptions inter;
  /// Seed of the local index's stream (group-count sweeps); pruning results
  /// never depend on it.
  uint64_t seed = 0xC0CA;
};

/// Lifetime counters of the coordinator.
struct CoordinatorStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;
  size_t connections_active = 0;  // gauge
  uint64_t requests_served = 0;
  uint64_t request_errors = 0;
  /// Fan-out legs attempted / failed at the transport level.
  uint64_t fanout_legs = 0;
  uint64_t fanout_failures = 0;
  /// Answers returned with `degraded = true` (a shard was down, slow, or
  /// already evicted).
  uint64_t degraded_answers = 0;
  /// Query legs pruned by the representative index.
  uint64_t pruned_legs = 0;
  /// Rep-sync rounds that shipped a changed entry set.
  uint64_t rep_sync_updates = 0;
  /// Probes sent to unreachable edges.
  uint64_t probes_sent = 0;
  /// Representative entries currently indexed (gauge).
  uint64_t rep_entries = 0;
  /// Standing queries registered by clients (gauge / lifetime).
  uint64_t subscriptions_active = 0;
  uint64_t subscriptions_total = 0;
  /// Push frames forwarded to clients (edge events, shard-merged).
  uint64_t pushes_forwarded = 0;
  /// Gap markers forwarded (edge-originated and coordinator-local alike).
  uint64_t push_gaps_forwarded = 0;
  /// Rep-sync passes triggered by an edge push rather than the interval.
  uint64_t rep_push_wakeups = 0;
};

/// The coordinator of a sharded deployment (see DESIGN.md, "Sharded
/// deployment"): speaks the same wire protocol as `Server`, but answers
/// queries by scattering them over the edge shards and merging the partial
/// results, never holding video state of its own. What it does hold — fed by
/// the `kRepSync` RPC — is the inter-camera representative index, which lets
/// it prune direct-query fan-out exactly like a single-node deployment
/// prunes camera scans.
///
/// Robustness contract: a query never fails because a shard is down or slow.
/// Each leg travels with a deadline carved from the client's budget; a leg
/// that fails (or a shard already evicted by the health ladder) contributes
/// nothing, flips `degraded`, lists the shard's known cameras in
/// `excluded_cameras`, and lowers `completed_fraction` — the same partial-
/// answer shape a single node produces for a stalled camera. Merging is by
/// shard index, never by completion order, so answers are bit-identical
/// across thread interleavings.
///
/// Shard health is the `EdgeRegistry` ladder, driven by every RPC outcome
/// (query legs and sync rounds alike) and surfaced through `MonitorStats`.
/// A background thread rep-syncs reachable edges on `sync_interval_ms` and
/// probes unreachable ones with seeded backoff; `PollEdgesNow()` runs one
/// such pass synchronously (ignoring backoff), which is how tests and drills
/// make transitions deterministic.
///
/// Mutating RPCs are refused (`kFailedPrecondition`): ingest goes to the
/// edges, the coordinator is a read-only query plane. Two exceptions ride
/// the v5 protocol: `kAdminTune` fans out to every eligible shard (tuning
/// is fleet-wide operator state), and `kSubscribe` registers a standing
/// query that the coordinator re-subscribes on every eligible edge over
/// dedicated v5 connections — edge pushes are remapped into the global id
/// space and forwarded to the client merged in (shard index, edge sequence)
/// order, with the same bounded-queue / drop-oldest / gap-marker contract
/// the edges themselves give slow subscribers.
class Coordinator {
 public:
  explicit Coordinator(const CoordinatorOptions& options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds, starts the accept loop and (unless disabled) the sync/probe
  /// thread, and runs one initial synchronous edge poll so the first query
  /// does not race an empty registry.
  Status Start();

  /// Graceful stop; idempotent.
  void Shutdown();

  /// The bound port (valid after a successful `Start`).
  uint16_t port() const { return port_; }

  /// One synchronous sync/probe pass over every edge, ignoring probe
  /// backoff: reachable edges are rep-synced (and their camera inventory
  /// refreshed), unreachable ones probed and re-admitted if they answer.
  /// Returns the number of edges eligible for fan-out afterwards.
  size_t PollEdgesNow();

  /// The registry (tests drive and inspect the ladder through it).
  EdgeRegistry& registry() { return registry_; }

  /// The Monitor reply's per-shard health table, as of now.
  std::vector<ShardHealthInfo> shard_health() const;

  CoordinatorStats stats() const;

 private:
  /// The outcome of one fan-out leg, slotted by shard index before merging.
  template <typename Result>
  struct Leg {
    /// False when the shard was not consulted (evicted or pruned).
    bool consulted = false;
    /// Meaningful only when consulted; a failed leg carries the transport
    /// (or RPC) error.
    Status status;
    Result result;
  };

  /// Per-connection state shared between the serving thread and the push
  /// forwarder (mirrors Server::ConnShared).
  struct ConnShared {
    uint64_t id = 0;
    int fd = -1;
    /// Serializes all frame writes (responses and forwarded pushes).
    std::mutex write_mu;
    /// v5 framing active (flipped after a successful v5 Hello response).
    std::atomic<bool> v5{false};
    bool negotiated_v5 = false;
    /// Flipped under `write_mu` before the fd closes, so a forwarded push
    /// can never land on a recycled descriptor.
    std::atomic<bool> closed{false};
  };

  /// One client subscription and its fan-out: dedicated v5 edge clients
  /// whose push callbacks feed a bounded merge buffer, drained by the
  /// forward-delivery thread into the client connection.
  struct ClientSub {
    uint64_t id = 0;  // coordinator-assigned subscription id
    std::shared_ptr<ConnShared> conn;
    /// The client's Subscribe correlation — forwarded pushes ride it.
    uint64_t correlation = 0;
    std::mutex mu;  // guards the buffer below (leaf lock)
    struct Buffered {
      size_t shard = 0;
      uint64_t edge_sequence = 0;
      PushEvent event;  // already remapped to the global id space
    };
    std::deque<Buffered> buffer;
    uint64_t dropped_pending = 0;
    uint64_t next_sequence = 0;
    /// One dedicated connection per subscribed edge (slot empty when that
    /// edge was ineligible or refused at subscribe time).
    std::vector<std::unique_ptr<Client>> edge_clients;
  };

  static int64_t NowMs();

  void AcceptLoop();
  void HandleConnection(UniqueFd fd, std::shared_ptr<ConnShared> conn);
  bool ServeOneRequest(const std::shared_ptr<ConnShared>& conn,
                       bool* hello_done);
  std::string DispatchRequest(const WireFrame& request, ConnShared* conn,
                              uint64_t correlation, bool* hello_done,
                              Status* failure);
  std::string ExecuteRequest(MsgType type, io::BinaryReader* reader,
                             Status* failure);

  /// kSubscribe: fan the standing query out over the eligible edges and
  /// register the forwarding state. kUnsubscribe / connection teardown undo
  /// it (closing the dedicated edge clients voids the edge subscriptions).
  std::string HandleSubscribe(ConnShared* conn, uint64_t correlation,
                              io::BinaryReader* reader, Status* failure);
  std::string HandleUnsubscribe(ConnShared* conn, io::BinaryReader* reader,
                                Status* failure);
  std::string HandleAdminTune(io::BinaryReader* reader, Status* failure);
  /// Tears down every subscription owned by `conn_id` (connection closed).
  void DropSubscriptionsOf(uint64_t conn_id);
  /// Closes a subscription's edge clients outside any coordinator lock.
  static void TeardownSub(const std::shared_ptr<ClientSub>& sub);
  /// Edge push callback (runs on an edge client's reader thread): remaps
  /// the event into the global id space and enqueues it (drop-oldest).
  void OnEdgePush(const std::weak_ptr<ClientSub>& weak, size_t shard,
                  const PushEvent& event);
  /// Drains one subscription's buffer (gap marker first, then events in
  /// (shard, edge sequence) order) and writes the push frames.
  void DeliverPending(const std::shared_ptr<ClientSub>& sub,
                      int64_t write_timeout);
  /// The forward-delivery thread: drains subscription buffers in (shard
  /// index, edge sequence) order and writes push frames to clients.
  void ForwardLoop();

  std::string HandleDirectQuery(io::BinaryReader* reader, Status* failure);
  std::string HandleClusteringQuery(MsgType type, io::BinaryReader* reader,
                                    Status* failure);
  std::string HandleGetMetaData(io::BinaryReader* reader, Status* failure);
  std::string HandleSvsFeatureMap(io::BinaryReader* reader, Status* failure);
  std::string HandleMonitorStats(Status* failure);
  std::string HandleCameraHealth(Status* failure);
  std::string HandleQueryLoadStats(Status* failure);

  /// Carves the per-shard deadline out of a client deadline (see
  /// `merge_reserve_ms`); identity when no deadline travels.
  core::QueryConstraints ShardConstraints(
      const core::QueryConstraints& constraints) const;

  /// Runs `call` against every shard whose slot in `consult` is true, one
  /// thread per consulted shard, recording each outcome into the registry.
  /// Results come back slotted by shard index — merge order never depends
  /// on completion order.
  template <typename Result>
  std::vector<Leg<Result>> FanOut(
      const std::vector<bool>& consult,
      const std::function<StatusOr<Result>(Client*)>& call);

  /// Pops a pooled connection to `edge` or dials a new one.
  StatusOr<std::unique_ptr<Client>> CheckoutClient(size_t edge);
  void CheckinClient(size_t edge, std::unique_ptr<Client> client);

  /// One sync/probe pass (the body of `PollEdgesNow` and the background
  /// thread). With `respect_backoff`, unreachable edges whose probe is not
  /// yet due are skipped.
  size_t SyncPass(bool respect_backoff);
  /// Rebuilds the local representative index from the per-edge entry sets
  /// (in shard-index order).
  void RebuildIndexLocked();
  void SyncLoop();

  /// The shards a direct query must consult: eligible edges, minus those
  /// whose synced representatives all fail the hit test (when pruning is
  /// on). Never-synced eligible edges are always consulted.
  std::vector<bool> DirectQueryConsultSet(const FeatureVector& feature);
  /// The shards a clustering query (or stats fan-out) consults: every
  /// eligible edge.
  std::vector<bool> EligibleSet() const;

  /// Folds one unconsulted (evicted) or failed shard into a partial answer:
  /// flips `degraded` and excludes the shard's known cameras (filtered by
  /// the query's camera constraint).
  void ExcludeShard(size_t edge, const core::QueryConstraints& constraints,
                    bool* degraded,
                    std::vector<core::CameraId>* excluded) const;

  const CoordinatorOptions options_;
  EdgeRegistry registry_;

  // --- Local representative index (fed by rep-sync). ---
  core::OmdCalculator omd_;
  /// Guards the index and the per-edge entry sets below. Shared by query
  /// pruning, exclusive for sync installs.
  mutable std::shared_mutex index_mu_;
  core::InterCameraIndex inter_;
  /// Entry sets as shipped per edge; concatenated in shard order into
  /// `inter_` (`entry_owner_` maps a combined entry index back to its
  /// shard).
  std::vector<std::vector<core::InterCameraIndex::RepEntry>> edge_entries_;
  std::vector<size_t> entry_owner_;

  // --- Edge connection pool. ---
  std::mutex pool_mu_;
  std::vector<std::vector<std::unique_ptr<Client>>> idle_clients_;

  // --- Client-facing front end. ---
  std::unique_ptr<ThreadPool> pool_;
  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread sync_thread_;
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  /// Serializes sync passes (the background thread vs `PollEdgesNow`).
  std::mutex pass_mu_;
  /// Per-edge rep-push watchers (guarded by `pass_mu_`): dedicated v5
  /// clients holding a stats subscription whose callback sets `rep_dirty_`
  /// and wakes the sync thread. Re-established by the next pass when an
  /// edge connection dies (their reconnect budget is zero: a silently
  /// reconnected watcher would have silently lost its subscription).
  std::vector<std::unique_ptr<Client>> watch_clients_;
  std::atomic<bool> rep_dirty_{false};

  // --- Standing-query forwarding. ---
  std::thread forward_thread_;
  mutable std::mutex push_mu_;  // guards the two maps below
  std::condition_variable push_cv_;
  uint64_t next_sub_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<ClientSub>> subs_by_id_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> subs_by_conn_;

  mutable std::mutex mu_;  // guards the connection bookkeeping below
  std::condition_variable drained_cv_;
  std::vector<std::future<void>> connection_futures_;
  size_t active_connections_ = 0;
  std::vector<int> active_fds_;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<ConnShared>> conns_by_id_;
  uint64_t connections_accepted_ = 0;
  uint64_t connections_shed_ = 0;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> request_errors_{0};
  std::atomic<uint64_t> fanout_legs_{0};
  std::atomic<uint64_t> fanout_failures_{0};
  std::atomic<uint64_t> degraded_answers_{0};
  std::atomic<uint64_t> pruned_legs_{0};
  std::atomic<uint64_t> rep_sync_updates_{0};
  std::atomic<uint64_t> probes_sent_{0};
  std::atomic<uint64_t> subscriptions_total_{0};
  std::atomic<uint64_t> pushes_forwarded_{0};
  std::atomic<uint64_t> push_gaps_forwarded_{0};
  std::atomic<uint64_t> rep_push_wakeups_{0};
};

}  // namespace vz::net

#endif  // VZ_NET_COORDINATOR_H_
