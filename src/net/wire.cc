#include "net/wire.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/crc32.h"
#include "common/socket.h"

namespace vz::net {

namespace {

/// Sanity bound on a wire-declared element count: every element of the
/// claimed collection needs at least `min_bytes_per_element` encoded bytes,
/// so a count the remaining buffer cannot possibly hold is corruption (or a
/// hostile peer) and must be rejected before any allocation sized by it.
Status CheckCount(const io::BinaryReader& reader, uint64_t count,
                  size_t min_bytes_per_element) {
  if (count > reader.remaining() / min_bytes_per_element) {
    return Status::DataLoss("implausible element count in payload");
  }
  return Status::OK();
}

Status DecodeIdList(io::BinaryReader* reader, std::vector<core::SvsId>* out) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  VZ_RETURN_IF_ERROR(CheckCount(*reader, count, sizeof(int64_t)));
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    VZ_ASSIGN_OR_RETURN(int64_t id, reader->ReadI64());
    out->push_back(id);
  }
  return Status::OK();
}

void EncodeIdList(io::BinaryWriter* writer,
                  const std::vector<core::SvsId>& ids) {
  writer->WriteU64(ids.size());
  for (core::SvsId id : ids) writer->WriteI64(id);
}

Status DecodeStringList(io::BinaryReader* reader,
                        std::vector<std::string>* out) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  // An empty string still costs its u64 length prefix.
  VZ_RETURN_IF_ERROR(CheckCount(*reader, count, sizeof(uint64_t)));
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    VZ_ASSIGN_OR_RETURN(std::string s, reader->ReadString());
    out->push_back(std::move(s));
  }
  return Status::OK();
}

void EncodeStringList(io::BinaryWriter* writer,
                      const std::vector<std::string>& strings) {
  writer->WriteU64(strings.size());
  for (const std::string& s : strings) writer->WriteString(s);
}

}  // namespace

bool IsKnownMessageType(uint32_t type) {
  switch (static_cast<MsgType>(type & ~kResponseFlag)) {
    case MsgType::kHello:
    case MsgType::kCameraStart:
    case MsgType::kCameraTerminate:
    case MsgType::kIngestFrame:
    case MsgType::kFlush:
    case MsgType::kDirectQuery:
    case MsgType::kClusteringQueryById:
    case MsgType::kClusteringQueryByMap:
    case MsgType::kGetMetaData:
    case MsgType::kMonitorStats:
    case MsgType::kCameraHealth:
    case MsgType::kQueryLoadStats:
    case MsgType::kSnapshotSave:
    case MsgType::kSnapshotLoad:
    case MsgType::kPing:
    case MsgType::kWalShip:
    case MsgType::kRepSync:
    case MsgType::kSvsFeatureMap:
    case MsgType::kCheckpointFetch:
    case MsgType::kSubscribe:
    case MsgType::kUnsubscribe:
    case MsgType::kIngestBatch:
    case MsgType::kAdminTune:
    case MsgType::kPushEvent:
      return true;
  }
  return false;
}

bool IsMutatingType(uint32_t type) {
  switch (static_cast<MsgType>(type & ~kResponseFlag)) {
    case MsgType::kCameraStart:
    case MsgType::kCameraTerminate:
    case MsgType::kIngestFrame:
    case MsgType::kFlush:
    case MsgType::kSnapshotSave:
    case MsgType::kSnapshotLoad:
    case MsgType::kIngestBatch:
    case MsgType::kAdminTune:
      return true;
    default:
      return false;
  }
}

void EncodeIdempotencyToken(io::BinaryWriter* writer,
                            const IdempotencyToken& token) {
  writer->WriteU64(token.session_id);
  writer->WriteU64(token.sequence);
}

StatusOr<IdempotencyToken> DecodeIdempotencyToken(io::BinaryReader* reader) {
  IdempotencyToken token;
  VZ_ASSIGN_OR_RETURN(token.session_id, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(token.sequence, reader->ReadU64());
  if (token.session_id == 0) {
    return Status::InvalidArgument("idempotency token with zero session id");
  }
  return token;
}

uint32_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kNotFound: return 2;
    case StatusCode::kFailedPrecondition: return 3;
    case StatusCode::kOutOfRange: return 4;
    case StatusCode::kInternal: return 5;
    case StatusCode::kUnimplemented: return 6;
    case StatusCode::kResourceExhausted: return 7;
    case StatusCode::kCancelled: return 8;
    case StatusCode::kDataLoss: return 9;
    case StatusCode::kUnavailable: return 10;
  }
  return 5;  // kInternal
}

StatusCode StatusCodeFromWire(uint32_t wire) {
  switch (wire) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kNotFound;
    case 3: return StatusCode::kFailedPrecondition;
    case 4: return StatusCode::kOutOfRange;
    case 5: return StatusCode::kInternal;
    case 6: return StatusCode::kUnimplemented;
    case 7: return StatusCode::kResourceExhausted;
    case 8: return StatusCode::kCancelled;
    case 9: return StatusCode::kDataLoss;
    case 10: return StatusCode::kUnavailable;
    default: return StatusCode::kInternal;
  }
}

void EncodeWireStatus(io::BinaryWriter* writer, const WireStatus& status) {
  writer->WriteU32(StatusCodeToWire(status.status.code()));
  writer->WriteString(status.status.message());
  writer->WriteI64(status.retry_after_ms);
}

StatusOr<WireStatus> DecodeWireStatus(io::BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(uint32_t code, reader->ReadU32());
  VZ_ASSIGN_OR_RETURN(std::string message, reader->ReadString());
  VZ_ASSIGN_OR_RETURN(int64_t retry_after_ms, reader->ReadI64());
  WireStatus status;
  status.status = Status(StatusCodeFromWire(code), std::move(message));
  status.retry_after_ms = retry_after_ms;
  return status;
}

std::string EncodeFrame(uint32_t type, const std::string& payload) {
  io::BinaryWriter writer;
  writer.WriteU32(kWireMagic);
  writer.WriteU32(type);
  writer.WriteLengthPrefixedBytes(payload);
  // The CRC covers everything after the magic: type, length and payload.
  // A flipped bit in the framing fields is then as detectable as one in the
  // payload.
  writer.WriteU32(
      Crc32(writer.buffer().data() + sizeof(uint32_t),
            writer.buffer().size() - sizeof(uint32_t)));
  return writer.buffer();
}

StatusOr<WireFrame> DecodeFrame(io::BinaryReader* reader) {
  auto magic = reader->ReadU32();
  if (!magic.ok()) return Status::DataLoss("truncated frame header");
  if (*magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const size_t crc_begin = reader->position();
  auto type = reader->ReadU32();
  if (!type.ok()) return Status::DataLoss("truncated frame header");
  auto length = reader->ReadU64();
  if (!length.ok()) return Status::DataLoss("truncated frame header");
  if (*length > kMaxPayloadBytes) {
    return Status::InvalidArgument("oversized frame payload");
  }
  if (*length > reader->remaining()) {
    return Status::DataLoss("truncated frame payload");
  }
  const size_t payload_begin = reader->position();
  (void)reader->Skip(*length);  // bounds just checked
  auto expected_crc = reader->ReadU32();
  if (!expected_crc.ok()) return Status::DataLoss("truncated frame checksum");
  const uint32_t actual_crc =
      Crc32(reader->data().data() + crc_begin,
            payload_begin - crc_begin + *length);
  if (actual_crc != *expected_crc) {
    return Status::DataLoss("frame checksum mismatch");
  }
  if (!IsKnownMessageType(*type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(*type));
  }
  WireFrame frame;
  frame.type = *type;
  frame.payload = reader->data().substr(payload_begin, *length);
  return frame;
}

Status WriteFrame(int fd, uint32_t type, const std::string& payload,
                  int64_t timeout_ms) {
  const std::string bytes = EncodeFrame(type, payload);
  return SendAll(fd, bytes.data(), bytes.size(), timeout_ms);
}

StatusOr<WireFrame> ReadFrame(int fd, int64_t timeout_ms) {
  // One deadline for the whole frame: header, payload and CRC share the
  // budget, so trickling any part of it counts as a slow peer.
  const auto start = std::chrono::steady_clock::now();
  auto remaining = [&]() -> int64_t {
    if (timeout_ms < 0) return -1;
    const int64_t elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    return std::max<int64_t>(0, timeout_ms - elapsed);
  };
  // Fixed-size prologue first: magic, type, payload length.
  char header[sizeof(uint32_t) * 2 + sizeof(uint64_t)];
  VZ_RETURN_IF_ERROR(RecvExact(fd, header, sizeof(header), remaining()));
  uint32_t magic, type;
  uint64_t length;
  std::memcpy(&magic, header, sizeof(magic));
  std::memcpy(&type, header + 4, sizeof(type));
  std::memcpy(&length, header + 8, sizeof(length));
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (length > kMaxPayloadBytes) {
    return Status::InvalidArgument("oversized frame payload");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    Status s = RecvExact(fd, payload.data(), payload.size(), remaining());
    if (!s.ok()) {
      return s.code() == StatusCode::kNotFound
                 ? Status::DataLoss("connection closed mid-frame")
                 : s;
    }
  }
  uint32_t expected_crc;
  Status s = RecvExact(fd, &expected_crc, sizeof(expected_crc), remaining());
  if (!s.ok()) {
    return s.code() == StatusCode::kNotFound
               ? Status::DataLoss("connection closed mid-frame")
               : s;
  }
  uint32_t crc = Crc32Update(0, header + 4, sizeof(header) - 4);
  crc = Crc32Update(crc, payload.data(), payload.size());
  if (crc != expected_crc) {
    return Status::DataLoss("frame checksum mismatch");
  }
  if (!IsKnownMessageType(type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type));
  }
  WireFrame frame;
  frame.type = type;
  frame.payload = std::move(payload);
  return frame;
}

std::string EncodeFrameV5(uint32_t type, uint64_t correlation,
                          const std::string& payload) {
  io::BinaryWriter writer;
  writer.WriteU32(kWireMagicV5);
  writer.WriteU32(type);
  writer.WriteU64(correlation);
  writer.WriteLengthPrefixedBytes(payload);
  // As in the legacy layout, the CRC covers everything after the magic —
  // type, correlation, length and payload — so a flipped bit in any framing
  // field is detected.
  writer.WriteU32(
      Crc32(writer.buffer().data() + sizeof(uint32_t),
            writer.buffer().size() - sizeof(uint32_t)));
  return writer.buffer();
}

StatusOr<WireFrameV5> DecodeFrameV5(io::BinaryReader* reader) {
  auto magic = reader->ReadU32();
  if (!magic.ok()) return Status::DataLoss("truncated frame header");
  if (*magic != kWireMagicV5) {
    return Status::InvalidArgument("bad frame magic");
  }
  const size_t crc_begin = reader->position();
  auto type = reader->ReadU32();
  if (!type.ok()) return Status::DataLoss("truncated frame header");
  auto correlation = reader->ReadU64();
  if (!correlation.ok()) return Status::DataLoss("truncated frame header");
  auto length = reader->ReadU64();
  if (!length.ok()) return Status::DataLoss("truncated frame header");
  if (*length > kMaxPayloadBytes) {
    return Status::InvalidArgument("oversized frame payload");
  }
  if (*length > reader->remaining()) {
    return Status::DataLoss("truncated frame payload");
  }
  const size_t payload_begin = reader->position();
  (void)reader->Skip(*length);  // bounds just checked
  auto expected_crc = reader->ReadU32();
  if (!expected_crc.ok()) return Status::DataLoss("truncated frame checksum");
  const uint32_t actual_crc =
      Crc32(reader->data().data() + crc_begin,
            payload_begin - crc_begin + *length);
  if (actual_crc != *expected_crc) {
    return Status::DataLoss("frame checksum mismatch");
  }
  if (!IsKnownMessageType(*type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(*type));
  }
  WireFrameV5 frame;
  frame.type = *type;
  frame.correlation = *correlation;
  frame.payload = reader->data().substr(payload_begin, *length);
  return frame;
}

Status WriteFrameV5(int fd, uint32_t type, uint64_t correlation,
                    const std::string& payload, int64_t timeout_ms) {
  const std::string bytes = EncodeFrameV5(type, correlation, payload);
  return SendAll(fd, bytes.data(), bytes.size(), timeout_ms);
}

StatusOr<WireFrameV5> ReadFrameV5(int fd, int64_t timeout_ms) {
  // One deadline for the whole frame, exactly as in ReadFrame.
  const auto start = std::chrono::steady_clock::now();
  auto remaining = [&]() -> int64_t {
    if (timeout_ms < 0) return -1;
    const int64_t elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    return std::max<int64_t>(0, timeout_ms - elapsed);
  };
  // Fixed-size prologue: magic, type, correlation, payload length.
  char header[sizeof(uint32_t) * 2 + sizeof(uint64_t) * 2];
  VZ_RETURN_IF_ERROR(RecvExact(fd, header, sizeof(header), remaining()));
  uint32_t magic, type;
  uint64_t correlation, length;
  std::memcpy(&magic, header, sizeof(magic));
  std::memcpy(&type, header + 4, sizeof(type));
  std::memcpy(&correlation, header + 8, sizeof(correlation));
  std::memcpy(&length, header + 16, sizeof(length));
  if (magic != kWireMagicV5) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (length > kMaxPayloadBytes) {
    return Status::InvalidArgument("oversized frame payload");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    Status s = RecvExact(fd, payload.data(), payload.size(), remaining());
    if (!s.ok()) {
      return s.code() == StatusCode::kNotFound
                 ? Status::DataLoss("connection closed mid-frame")
                 : s;
    }
  }
  uint32_t expected_crc;
  Status s = RecvExact(fd, &expected_crc, sizeof(expected_crc), remaining());
  if (!s.ok()) {
    return s.code() == StatusCode::kNotFound
               ? Status::DataLoss("connection closed mid-frame")
               : s;
  }
  uint32_t crc = Crc32Update(0, header + 4, sizeof(header) - 4);
  crc = Crc32Update(crc, payload.data(), payload.size());
  if (crc != expected_crc) {
    return Status::DataLoss("frame checksum mismatch");
  }
  if (!IsKnownMessageType(type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type));
  }
  WireFrameV5 frame;
  frame.type = type;
  frame.correlation = correlation;
  frame.payload = std::move(payload);
  return frame;
}

Status WriteEncodedFrames(int fd, const std::vector<std::string>& frames,
                          int64_t timeout_ms) {
  if (frames.empty()) return Status::OK();
  std::vector<ConstBuffer> buffers;
  buffers.reserve(frames.size());
  for (const std::string& f : frames) {
    buffers.push_back({f.data(), f.size()});
  }
  return SendAllV(fd, buffers.data(), buffers.size(), timeout_ms);
}

void EncodeFeatureVector(io::BinaryWriter* writer, const FeatureVector& v) {
  writer->WriteFloats(v.components());
}

StatusOr<FeatureVector> DecodeFeatureVector(io::BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(std::vector<float> values, reader->ReadFloats());
  return FeatureVector(std::move(values));
}

void EncodeFeatureMap(io::BinaryWriter* writer, const FeatureMap& map) {
  writer->WriteU64(map.size());
  for (size_t i = 0; i < map.size(); ++i) {
    writer->WriteFloats(map.row(i), map.dim());
    writer->WriteF64(map.weight(i));
  }
}

StatusOr<FeatureMap> DecodeFeatureMap(io::BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  VZ_RETURN_IF_ERROR(
      CheckCount(*reader, count, sizeof(uint64_t) + sizeof(double)));
  FeatureMap map;
  for (uint64_t i = 0; i < count; ++i) {
    VZ_ASSIGN_OR_RETURN(std::vector<float> values, reader->ReadFloats());
    VZ_ASSIGN_OR_RETURN(double weight, reader->ReadF64());
    VZ_RETURN_IF_ERROR(map.Add(values.data(), values.size(), weight));
  }
  return map;
}

void EncodeFrameObservation(io::BinaryWriter* writer,
                            const core::FrameObservation& frame) {
  writer->WriteString(frame.camera);
  writer->WriteI64(frame.timestamp_ms);
  writer->WriteI64(frame.frame_id);
  writer->WriteF64(frame.deviation_from_previous);
  writer->WriteU64(frame.encoded_bytes);
  writer->WriteU64(frame.objects.size());
  for (const core::DetectedObject& object : frame.objects) {
    writer->WriteF32(object.box.top);
    writer->WriteF32(object.box.left);
    writer->WriteF32(object.box.bottom);
    writer->WriteF32(object.box.right);
    EncodeFeatureVector(writer, object.feature);
    writer->WriteI64(object.class_hint);
    writer->WriteF64(object.class_confidence);
  }
}

StatusOr<core::FrameObservation> DecodeFrameObservation(
    io::BinaryReader* reader) {
  core::FrameObservation frame;
  VZ_ASSIGN_OR_RETURN(frame.camera, reader->ReadString());
  VZ_ASSIGN_OR_RETURN(frame.timestamp_ms, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(frame.frame_id, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(frame.deviation_from_previous, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(uint64_t encoded_bytes, reader->ReadU64());
  frame.encoded_bytes = static_cast<size_t>(encoded_bytes);
  VZ_ASSIGN_OR_RETURN(uint64_t num_objects, reader->ReadU64());
  // Minimum encoded object: box (4 f32) + empty feature (u64) + class
  // (i64) + confidence (f64).
  VZ_RETURN_IF_ERROR(CheckCount(*reader, num_objects, 40));
  frame.objects.reserve(num_objects);
  for (uint64_t i = 0; i < num_objects; ++i) {
    core::DetectedObject object;
    VZ_ASSIGN_OR_RETURN(object.box.top, reader->ReadF32());
    VZ_ASSIGN_OR_RETURN(object.box.left, reader->ReadF32());
    VZ_ASSIGN_OR_RETURN(object.box.bottom, reader->ReadF32());
    VZ_ASSIGN_OR_RETURN(object.box.right, reader->ReadF32());
    VZ_ASSIGN_OR_RETURN(object.feature, DecodeFeatureVector(reader));
    VZ_ASSIGN_OR_RETURN(int64_t class_hint, reader->ReadI64());
    object.class_hint = static_cast<int>(class_hint);
    VZ_ASSIGN_OR_RETURN(object.class_confidence, reader->ReadF64());
    frame.objects.push_back(std::move(object));
  }
  return frame;
}

void EncodeQueryConstraints(io::BinaryWriter* writer,
                            const core::QueryConstraints& constraints) {
  writer->WriteU8(constraints.cameras.has_value() ? 1 : 0);
  if (constraints.cameras.has_value()) {
    EncodeStringList(writer, *constraints.cameras);
  }
  writer->WriteU8(constraints.time_range_ms.has_value() ? 1 : 0);
  if (constraints.time_range_ms.has_value()) {
    writer->WriteI64(constraints.time_range_ms->first);
    writer->WriteI64(constraints.time_range_ms->second);
  }
  writer->WriteU8(constraints.deadline_ms.has_value() ? 1 : 0);
  if (constraints.deadline_ms.has_value()) {
    writer->WriteI64(*constraints.deadline_ms);
  }
}

StatusOr<core::QueryConstraints> DecodeQueryConstraints(
    io::BinaryReader* reader) {
  core::QueryConstraints constraints;
  VZ_ASSIGN_OR_RETURN(uint8_t has_cameras, reader->ReadU8());
  if (has_cameras != 0) {
    std::vector<std::string> cameras;
    VZ_RETURN_IF_ERROR(DecodeStringList(reader, &cameras));
    constraints.cameras = std::move(cameras);
  }
  VZ_ASSIGN_OR_RETURN(uint8_t has_time, reader->ReadU8());
  if (has_time != 0) {
    VZ_ASSIGN_OR_RETURN(int64_t start_ms, reader->ReadI64());
    VZ_ASSIGN_OR_RETURN(int64_t end_ms, reader->ReadI64());
    constraints.time_range_ms = std::make_pair(start_ms, end_ms);
  }
  VZ_ASSIGN_OR_RETURN(uint8_t has_deadline, reader->ReadU8());
  if (has_deadline != 0) {
    VZ_ASSIGN_OR_RETURN(int64_t deadline_ms, reader->ReadI64());
    constraints.deadline_ms = deadline_ms;
  }
  return constraints;
}

void EncodeDirectQueryResult(io::BinaryWriter* writer,
                             const core::DirectQueryResult& result) {
  EncodeIdList(writer, result.candidate_svss);
  EncodeIdList(writer, result.matched_svss);
  writer->WriteF64(result.total_gpu_ms);
  writer->WriteF64(result.bottleneck_camera_gpu_ms);
  writer->WriteU64(result.per_camera_gpu_ms.size());
  for (const auto& [camera, gpu_ms] : result.per_camera_gpu_ms) {
    writer->WriteString(camera);
    writer->WriteF64(gpu_ms);
  }
  writer->WriteU64(result.frames_processed);
  writer->WriteU64(result.cameras_searched);
  writer->WriteU8(result.degraded ? 1 : 0);
  EncodeStringList(writer, result.excluded_cameras);
  writer->WriteU8(result.timed_out ? 1 : 0);
  writer->WriteF64(result.completed_fraction);
}

StatusOr<core::DirectQueryResult> DecodeDirectQueryResult(
    io::BinaryReader* reader) {
  core::DirectQueryResult result;
  VZ_RETURN_IF_ERROR(DecodeIdList(reader, &result.candidate_svss));
  VZ_RETURN_IF_ERROR(DecodeIdList(reader, &result.matched_svss));
  VZ_ASSIGN_OR_RETURN(result.total_gpu_ms, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(result.bottleneck_camera_gpu_ms, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(uint64_t num_cameras, reader->ReadU64());
  VZ_RETURN_IF_ERROR(
      CheckCount(*reader, num_cameras, sizeof(uint64_t) + sizeof(double)));
  result.per_camera_gpu_ms.reserve(num_cameras);
  for (uint64_t i = 0; i < num_cameras; ++i) {
    VZ_ASSIGN_OR_RETURN(std::string camera, reader->ReadString());
    VZ_ASSIGN_OR_RETURN(double gpu_ms, reader->ReadF64());
    result.per_camera_gpu_ms.emplace_back(std::move(camera), gpu_ms);
  }
  VZ_ASSIGN_OR_RETURN(uint64_t frames_processed, reader->ReadU64());
  result.frames_processed = static_cast<size_t>(frames_processed);
  VZ_ASSIGN_OR_RETURN(uint64_t cameras_searched, reader->ReadU64());
  result.cameras_searched = static_cast<size_t>(cameras_searched);
  VZ_ASSIGN_OR_RETURN(uint8_t degraded, reader->ReadU8());
  result.degraded = degraded != 0;
  VZ_RETURN_IF_ERROR(DecodeStringList(reader, &result.excluded_cameras));
  VZ_ASSIGN_OR_RETURN(uint8_t timed_out, reader->ReadU8());
  result.timed_out = timed_out != 0;
  VZ_ASSIGN_OR_RETURN(result.completed_fraction, reader->ReadF64());
  return result;
}

void EncodeClusteringQueryResult(io::BinaryWriter* writer,
                                 const core::ClusteringQueryResult& result) {
  EncodeIdList(writer, result.similar_svss);
  writer->WriteU64(result.cameras_contributing);
  writer->WriteU8(result.degraded ? 1 : 0);
  EncodeStringList(writer, result.excluded_cameras);
  writer->WriteU8(result.timed_out ? 1 : 0);
  writer->WriteF64(result.completed_fraction);
  writer->WriteU8(result.fast_omd_routed ? 1 : 0);
}

StatusOr<core::ClusteringQueryResult> DecodeClusteringQueryResult(
    io::BinaryReader* reader) {
  core::ClusteringQueryResult result;
  VZ_RETURN_IF_ERROR(DecodeIdList(reader, &result.similar_svss));
  VZ_ASSIGN_OR_RETURN(uint64_t cameras_contributing, reader->ReadU64());
  result.cameras_contributing = static_cast<size_t>(cameras_contributing);
  VZ_ASSIGN_OR_RETURN(uint8_t degraded, reader->ReadU8());
  result.degraded = degraded != 0;
  VZ_RETURN_IF_ERROR(DecodeStringList(reader, &result.excluded_cameras));
  VZ_ASSIGN_OR_RETURN(uint8_t timed_out, reader->ReadU8());
  result.timed_out = timed_out != 0;
  VZ_ASSIGN_OR_RETURN(result.completed_fraction, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(uint8_t fast_omd_routed, reader->ReadU8());
  result.fast_omd_routed = fast_omd_routed != 0;
  return result;
}

void EncodeSvsMetadata(io::BinaryWriter* writer,
                       const core::SvsMetadata& meta) {
  writer->WriteI64(meta.id);
  writer->WriteString(meta.camera);
  writer->WriteI64(meta.start_ms);
  writer->WriteI64(meta.end_ms);
  writer->WriteU64(meta.num_frames);
  writer->WriteU64(meta.encoded_bytes);
  writer->WriteU64(meta.access_count);
  writer->WriteI64(meta.last_access_ms);
  writer->WriteF64(meta.access_frequency);
}

StatusOr<core::SvsMetadata> DecodeSvsMetadata(io::BinaryReader* reader) {
  core::SvsMetadata meta;
  VZ_ASSIGN_OR_RETURN(meta.id, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(meta.camera, reader->ReadString());
  VZ_ASSIGN_OR_RETURN(meta.start_ms, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(meta.end_ms, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(uint64_t num_frames, reader->ReadU64());
  meta.num_frames = static_cast<size_t>(num_frames);
  VZ_ASSIGN_OR_RETURN(uint64_t encoded_bytes, reader->ReadU64());
  meta.encoded_bytes = static_cast<size_t>(encoded_bytes);
  VZ_ASSIGN_OR_RETURN(meta.access_count, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(meta.last_access_ms, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(meta.access_frequency, reader->ReadF64());
  return meta;
}

void EncodeQueryLoadStats(io::BinaryWriter* writer,
                          const core::QueryLoadStats& stats) {
  writer->WriteU64(stats.in_flight);
  writer->WriteU64(stats.waiting);
  writer->WriteU64(stats.admitted);
  writer->WriteU64(stats.shed);
  writer->WriteU64(stats.timed_out);
  writer->WriteU64(stats.fast_omd_routed);
  writer->WriteI64(stats.timeout_overshoot_ms_total);
  writer->WriteU64(stats.max_in_flight);
  writer->WriteU64(stats.max_queue);
  writer->WriteU64(stats.omd_failures);
}

StatusOr<core::QueryLoadStats> DecodeQueryLoadStats(
    io::BinaryReader* reader) {
  core::QueryLoadStats stats;
  VZ_ASSIGN_OR_RETURN(uint64_t in_flight, reader->ReadU64());
  stats.in_flight = static_cast<size_t>(in_flight);
  VZ_ASSIGN_OR_RETURN(uint64_t waiting, reader->ReadU64());
  stats.waiting = static_cast<size_t>(waiting);
  VZ_ASSIGN_OR_RETURN(stats.admitted, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.shed, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.timed_out, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.fast_omd_routed, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.timeout_overshoot_ms_total, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(uint64_t max_in_flight, reader->ReadU64());
  stats.max_in_flight = static_cast<size_t>(max_in_flight);
  VZ_ASSIGN_OR_RETURN(uint64_t max_queue, reader->ReadU64());
  stats.max_queue = static_cast<size_t>(max_queue);
  VZ_ASSIGN_OR_RETURN(stats.omd_failures, reader->ReadU64());
  return stats;
}

void EncodeMonitorStats(io::BinaryWriter* writer,
                        const MonitorStatsReply& stats) {
  writer->WriteU64(stats.ingest.frames_offered);
  writer->WriteU64(stats.ingest.keyframes_selected);
  writer->WriteU64(stats.ingest.features_extracted);
  writer->WriteU64(stats.ingest.svs_created);
  writer->WriteU64(stats.ingest.raw_feature_bytes);
  writer->WriteU64(stats.ingest.frames_rejected);
  writer->WriteU64(stats.ingest.out_of_order_dropped);
  writer->WriteU64(stats.ingest.duplicates_dropped);
  writer->WriteU64(stats.ingest.objects_quarantined);
  writer->WriteU64(stats.cache.hits);
  writer->WriteU64(stats.cache.misses);
  writer->WriteU64(stats.cache.insertions);
  writer->WriteU64(stats.cache.invalidations);
  writer->WriteU64(stats.cache.rejected_inserts);
  writer->WriteU64(stats.cache.entries);
  writer->WriteU64(stats.cache.capacity);
  writer->WriteU64(stats.svs_count);
  writer->WriteU64(stats.camera_count);
  writer->WriteI64(stats.now_ms);
  writer->WriteU64(stats.serving.connections_accepted);
  writer->WriteU64(stats.serving.connections_shed);
  writer->WriteU64(stats.serving.connections_evicted_idle);
  writer->WriteU64(stats.serving.connections_evicted_slow);
  writer->WriteU64(stats.serving.duplicates_replayed);
  writer->WriteU64(stats.serving.pings_served);
  writer->WriteU64(stats.serving.sessions_active);
  writer->WriteU64(stats.serving.sessions_evicted);
  writer->WriteU32(static_cast<uint32_t>(stats.serving.role));
  writer->WriteU64(stats.serving.wal_appends);
  writer->WriteU64(stats.serving.wal_fsyncs);
  writer->WriteU64(stats.serving.wal_replayed_records);
  writer->WriteU64(stats.serving.wal_salvaged_bytes);
  writer->WriteU64(stats.serving.wal_checkpoints);
  writer->WriteU64(stats.serving.wal_last_lsn);
  writer->WriteU64(stats.serving.wal_durable_lsn);
  writer->WriteU64(stats.serving.replication_lag_records);
  writer->WriteU64(stats.serving.replication_reseeds);
  writer->WriteU64(stats.serving.connections.size());
  for (const ConnectionInfo& conn : stats.serving.connections) {
    writer->WriteU64(conn.id);
    writer->WriteI64(conn.age_ms);
    writer->WriteI64(conn.idle_ms);
    writer->WriteU64(conn.bytes_in);
    writer->WriteU64(conn.bytes_out);
    writer->WriteU64(conn.rpcs);
  }
  writer->WriteU64(stats.serving.shards.size());
  for (const ShardHealthInfo& shard : stats.serving.shards) {
    writer->WriteString(shard.host);
    writer->WriteU32(shard.port);
    writer->WriteU32(static_cast<uint32_t>(shard.state));
    writer->WriteU64(shard.consecutive_failures);
    writer->WriteI64(shard.rep_staleness_ms);
    writer->WriteU64(shard.rep_entries);
    writer->WriteU64(shard.cameras);
  }
  // v5 subscription counters ride at the very end so a v4-era decoder that
  // stops after the shard table still parses everything it knows about.
  writer->WriteU64(stats.serving.subscriptions_active);
  writer->WriteU64(stats.serving.subscriptions_total);
  writer->WriteU64(stats.serving.pushes_sent);
  writer->WriteU64(stats.serving.push_drops);
  writer->WriteU64(stats.serving.push_gaps_sent);
  writer->WriteU64(stats.serving.ingest_batches);
}

StatusOr<MonitorStatsReply> DecodeMonitorStats(io::BinaryReader* reader) {
  MonitorStatsReply stats;
  VZ_ASSIGN_OR_RETURN(stats.ingest.frames_offered, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.ingest.keyframes_selected, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.ingest.features_extracted, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.ingest.svs_created, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(uint64_t raw_feature_bytes, reader->ReadU64());
  stats.ingest.raw_feature_bytes = static_cast<size_t>(raw_feature_bytes);
  VZ_ASSIGN_OR_RETURN(stats.ingest.frames_rejected, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.ingest.out_of_order_dropped, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.ingest.duplicates_dropped, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.ingest.objects_quarantined, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.cache.hits, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.cache.misses, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.cache.insertions, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.cache.invalidations, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.cache.rejected_inserts, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(uint64_t entries, reader->ReadU64());
  stats.cache.entries = static_cast<size_t>(entries);
  VZ_ASSIGN_OR_RETURN(uint64_t capacity, reader->ReadU64());
  stats.cache.capacity = static_cast<size_t>(capacity);
  VZ_ASSIGN_OR_RETURN(stats.svs_count, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.camera_count, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.now_ms, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(stats.serving.connections_accepted, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.connections_shed, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.connections_evicted_idle,
                      reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.connections_evicted_slow,
                      reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.duplicates_replayed, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.pings_served, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.sessions_active, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.sessions_evicted, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(uint32_t role, reader->ReadU32());
  if (role > static_cast<uint32_t>(ServerRole::kPromoted)) {
    return Status::InvalidArgument("invalid server role value");
  }
  stats.serving.role = static_cast<ServerRole>(role);
  VZ_ASSIGN_OR_RETURN(stats.serving.wal_appends, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.wal_fsyncs, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.wal_replayed_records, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.wal_salvaged_bytes, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.wal_checkpoints, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.wal_last_lsn, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.wal_durable_lsn, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.replication_lag_records,
                      reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(stats.serving.replication_reseeds, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(uint64_t num_connections, reader->ReadU64());
  // Six fixed-width fields per registry entry.
  VZ_RETURN_IF_ERROR(CheckCount(*reader, num_connections, 6 * sizeof(uint64_t)));
  stats.serving.connections.reserve(num_connections);
  for (uint64_t i = 0; i < num_connections; ++i) {
    ConnectionInfo conn;
    VZ_ASSIGN_OR_RETURN(conn.id, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(conn.age_ms, reader->ReadI64());
    VZ_ASSIGN_OR_RETURN(conn.idle_ms, reader->ReadI64());
    VZ_ASSIGN_OR_RETURN(conn.bytes_in, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(conn.bytes_out, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(conn.rpcs, reader->ReadU64());
    stats.serving.connections.push_back(conn);
  }
  VZ_ASSIGN_OR_RETURN(uint64_t num_shards, reader->ReadU64());
  // Host string prefix, two u32s and four u64s per shard row.
  VZ_RETURN_IF_ERROR(CheckCount(*reader, num_shards,
                                5 * sizeof(uint64_t) + 2 * sizeof(uint32_t)));
  stats.serving.shards.reserve(num_shards);
  for (uint64_t i = 0; i < num_shards; ++i) {
    ShardHealthInfo shard;
    VZ_ASSIGN_OR_RETURN(shard.host, reader->ReadString());
    VZ_ASSIGN_OR_RETURN(shard.port, reader->ReadU32());
    VZ_ASSIGN_OR_RETURN(uint32_t state, reader->ReadU32());
    if (state > static_cast<uint32_t>(ShardState::kUnreachable)) {
      return Status::InvalidArgument("invalid shard state value");
    }
    shard.state = static_cast<ShardState>(state);
    VZ_ASSIGN_OR_RETURN(shard.consecutive_failures, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(shard.rep_staleness_ms, reader->ReadI64());
    VZ_ASSIGN_OR_RETURN(shard.rep_entries, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(shard.cameras, reader->ReadU64());
    stats.serving.shards.push_back(std::move(shard));
  }
  // v5 tail: absent when the sender predates the subscription counters.
  if (reader->remaining() > 0) {
    VZ_ASSIGN_OR_RETURN(stats.serving.subscriptions_active, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(stats.serving.subscriptions_total, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(stats.serving.pushes_sent, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(stats.serving.push_drops, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(stats.serving.push_gaps_sent, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(stats.serving.ingest_batches, reader->ReadU64());
  }
  return stats;
}

void EncodeCameraHealthReport(io::BinaryWriter* writer,
                              const std::vector<CameraHealthEntry>& report) {
  writer->WriteU64(report.size());
  for (const CameraHealthEntry& entry : report) {
    writer->WriteString(entry.camera);
    writer->WriteU8(static_cast<uint8_t>(entry.health));
  }
}

StatusOr<std::vector<CameraHealthEntry>> DecodeCameraHealthReport(
    io::BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  VZ_RETURN_IF_ERROR(CheckCount(*reader, count, sizeof(uint64_t) + 1));
  std::vector<CameraHealthEntry> report;
  report.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CameraHealthEntry entry;
    VZ_ASSIGN_OR_RETURN(entry.camera, reader->ReadString());
    VZ_ASSIGN_OR_RETURN(uint8_t health, reader->ReadU8());
    if (health > static_cast<uint8_t>(core::CameraHealth::kStalled)) {
      return Status::InvalidArgument("invalid camera health value");
    }
    entry.health = static_cast<core::CameraHealth>(health);
    report.push_back(std::move(entry));
  }
  return report;
}

void EncodeWalShipRequest(io::BinaryWriter* writer,
                          const WalShipRequest& request) {
  writer->WriteU64(request.from_lsn);
  writer->WriteU32(request.max_records);
  writer->WriteU32(request.wait_ms);
  writer->WriteU64(request.epoch);
}

StatusOr<WalShipRequest> DecodeWalShipRequest(io::BinaryReader* reader) {
  WalShipRequest request;
  VZ_ASSIGN_OR_RETURN(request.from_lsn, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(request.max_records, reader->ReadU32());
  VZ_ASSIGN_OR_RETURN(request.wait_ms, reader->ReadU32());
  VZ_ASSIGN_OR_RETURN(request.epoch, reader->ReadU64());
  return request;
}

void EncodeWalShipReply(io::BinaryWriter* writer, const WalShipReply& reply) {
  writer->WriteU64(reply.durable_lsn);
  writer->WriteU64(reply.epoch);
  writer->WriteU64(reply.records.size());
  for (const io::WalRecord& record : reply.records) {
    writer->WriteU64(record.lsn);
    writer->WriteU64(record.session_id);
    writer->WriteU64(record.sequence);
    writer->WriteU32(record.op);
    writer->WriteU64(record.epoch);
    writer->WriteLengthPrefixedBytes(record.payload);
  }
}

StatusOr<WalShipReply> DecodeWalShipReply(io::BinaryReader* reader) {
  WalShipReply reply;
  VZ_ASSIGN_OR_RETURN(reply.durable_lsn, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(reply.epoch, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  // Four u64s, a u32 op, and the payload's own u64 length prefix.
  VZ_RETURN_IF_ERROR(
      CheckCount(*reader, count, 5 * sizeof(uint64_t) + sizeof(uint32_t)));
  reply.records.reserve(count);
  uint64_t previous_lsn = 0;
  for (uint64_t i = 0; i < count; ++i) {
    io::WalRecord record;
    VZ_ASSIGN_OR_RETURN(record.lsn, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(record.session_id, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(record.sequence, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(record.op, reader->ReadU32());
    VZ_ASSIGN_OR_RETURN(record.epoch, reader->ReadU64());
    VZ_ASSIGN_OR_RETURN(record.payload, reader->ReadLengthPrefixedBytes());
    // The shipped batch must be a dense ascending LSN run — a gap here
    // would silently drop records on the standby.
    if (i > 0 && record.lsn != previous_lsn + 1) {
      return Status::InvalidArgument("WAL ship batch has an LSN gap");
    }
    previous_lsn = record.lsn;
    reply.records.push_back(std::move(record));
  }
  return reply;
}

void EncodeWeightedCenter(io::BinaryWriter* writer,
                          const core::WeightedCenter& center) {
  EncodeFeatureVector(writer, center.center);
  writer->WriteF64(center.weight);
  writer->WriteF64(center.boundary);
  writer->WriteF64(center.mean_member_distance);
  writer->WriteI64(center.last_hit_ms);
}

StatusOr<core::WeightedCenter> DecodeWeightedCenter(io::BinaryReader* reader) {
  core::WeightedCenter center;
  VZ_ASSIGN_OR_RETURN(center.center, DecodeFeatureVector(reader));
  VZ_ASSIGN_OR_RETURN(center.weight, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(center.boundary, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(center.mean_member_distance, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(center.last_hit_ms, reader->ReadI64());
  return center;
}

void EncodeRepresentative(io::BinaryWriter* writer,
                          const core::Representative& rep) {
  writer->WriteU64(rep.centers().size());
  for (const core::WeightedCenter& center : rep.centers()) {
    EncodeWeightedCenter(writer, center);
  }
}

StatusOr<core::Representative> DecodeRepresentative(io::BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  // An empty center still costs its vector length prefix plus three f64s
  // and an i64.
  VZ_RETURN_IF_ERROR(CheckCount(*reader, count, 5 * sizeof(uint64_t)));
  std::vector<core::WeightedCenter> centers;
  centers.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    VZ_ASSIGN_OR_RETURN(core::WeightedCenter center,
                        DecodeWeightedCenter(reader));
    centers.push_back(std::move(center));
  }
  return core::Representative(std::move(centers));
}

void EncodeRepEntry(io::BinaryWriter* writer,
                    const core::InterCameraIndex::RepEntry& entry) {
  writer->WriteString(entry.camera);
  writer->WriteU64(entry.intra_cluster_index);
  EncodeFeatureMap(writer, entry.map);
  EncodeRepresentative(writer, entry.rep);
}

StatusOr<core::InterCameraIndex::RepEntry> DecodeRepEntry(
    io::BinaryReader* reader) {
  core::InterCameraIndex::RepEntry entry;
  VZ_ASSIGN_OR_RETURN(entry.camera, reader->ReadString());
  VZ_ASSIGN_OR_RETURN(uint64_t intra_cluster_index, reader->ReadU64());
  entry.intra_cluster_index = static_cast<size_t>(intra_cluster_index);
  VZ_ASSIGN_OR_RETURN(entry.map, DecodeFeatureMap(reader));
  VZ_ASSIGN_OR_RETURN(entry.rep, DecodeRepresentative(reader));
  return entry;
}

void EncodeRepSyncRequest(io::BinaryWriter* writer,
                          const RepSyncRequest& request) {
  writer->WriteU64(request.since_version);
}

StatusOr<RepSyncRequest> DecodeRepSyncRequest(io::BinaryReader* reader) {
  RepSyncRequest request;
  VZ_ASSIGN_OR_RETURN(request.since_version, reader->ReadU64());
  return request;
}

void EncodeRepSyncReply(io::BinaryWriter* writer, const RepSyncReply& reply) {
  writer->WriteU64(reply.version);
  writer->WriteU8(reply.unchanged ? 1 : 0);
  writer->WriteU64(reply.entries.size());
  for (const core::InterCameraIndex::RepEntry& entry : reply.entries) {
    EncodeRepEntry(writer, entry);
  }
}

StatusOr<RepSyncReply> DecodeRepSyncReply(io::BinaryReader* reader) {
  RepSyncReply reply;
  VZ_ASSIGN_OR_RETURN(reply.version, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(uint8_t unchanged, reader->ReadU8());
  reply.unchanged = unchanged != 0;
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  // Camera string prefix + cluster index + map count + center count.
  VZ_RETURN_IF_ERROR(CheckCount(*reader, count, 4 * sizeof(uint64_t)));
  reply.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    VZ_ASSIGN_OR_RETURN(core::InterCameraIndex::RepEntry entry,
                        DecodeRepEntry(reader));
    reply.entries.push_back(std::move(entry));
  }
  if (reply.unchanged && !reply.entries.empty()) {
    return Status::InvalidArgument("unchanged RepSync reply carries entries");
  }
  return reply;
}

void EncodeCheckpointFetchReply(io::BinaryWriter* writer,
                                const CheckpointFetchReply& reply) {
  writer->WriteU64(reply.lsn);
  writer->WriteU64(reply.epoch);
  writer->WriteLengthPrefixedBytes(reply.snapshot_bytes);
  writer->WriteLengthPrefixedBytes(reply.meta_bytes);
}

StatusOr<CheckpointFetchReply> DecodeCheckpointFetchReply(
    io::BinaryReader* reader) {
  CheckpointFetchReply reply;
  VZ_ASSIGN_OR_RETURN(reply.lsn, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(reply.epoch, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(reply.snapshot_bytes, reader->ReadLengthPrefixedBytes());
  VZ_ASSIGN_OR_RETURN(reply.meta_bytes, reader->ReadLengthPrefixedBytes());
  return reply;
}

void EncodeSubscribeRequest(io::BinaryWriter* writer,
                            const SubscribeRequest& request) {
  EncodeFeatureVector(writer, request.query);
  writer->WriteF64(request.threshold);
  writer->WriteU8(request.has_camera_filter ? 1 : 0);
  if (request.has_camera_filter) {
    EncodeStringList(writer, request.cameras);
  }
  writer->WriteU8(request.want_matches ? 1 : 0);
  writer->WriteU8(request.want_stats ? 1 : 0);
}

StatusOr<SubscribeRequest> DecodeSubscribeRequest(io::BinaryReader* reader) {
  SubscribeRequest request;
  VZ_ASSIGN_OR_RETURN(request.query, DecodeFeatureVector(reader));
  VZ_ASSIGN_OR_RETURN(request.threshold, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(uint8_t has_filter, reader->ReadU8());
  request.has_camera_filter = has_filter != 0;
  if (request.has_camera_filter) {
    VZ_RETURN_IF_ERROR(DecodeStringList(reader, &request.cameras));
  }
  VZ_ASSIGN_OR_RETURN(uint8_t want_matches, reader->ReadU8());
  request.want_matches = want_matches != 0;
  VZ_ASSIGN_OR_RETURN(uint8_t want_stats, reader->ReadU8());
  request.want_stats = want_stats != 0;
  if (!request.want_matches && !request.want_stats) {
    return Status::InvalidArgument("subscription wants neither matches nor "
                                   "stats");
  }
  if (request.want_matches && request.query.dim() == 0) {
    return Status::InvalidArgument("match subscription with an empty query");
  }
  return request;
}

void EncodePushEvent(io::BinaryWriter* writer, const PushEvent& event) {
  writer->WriteU64(event.subscription_id);
  writer->WriteU64(event.sequence);
  writer->WriteU32(static_cast<uint32_t>(event.kind));
  switch (event.kind) {
    case PushKind::kMatch:
      writer->WriteI64(event.svs_id);
      writer->WriteString(event.camera);
      writer->WriteI64(event.start_ms);
      writer->WriteI64(event.end_ms);
      writer->WriteF64(event.distance);
      break;
    case PushKind::kIndexUpdate:
      writer->WriteU64(event.index_version);
      break;
    case PushKind::kGap:
      writer->WriteU64(event.dropped);
      break;
  }
}

StatusOr<PushEvent> DecodePushEvent(io::BinaryReader* reader) {
  PushEvent event;
  VZ_ASSIGN_OR_RETURN(event.subscription_id, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(event.sequence, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(uint32_t kind, reader->ReadU32());
  if (kind > static_cast<uint32_t>(PushKind::kGap)) {
    return Status::InvalidArgument("invalid push event kind");
  }
  event.kind = static_cast<PushKind>(kind);
  switch (event.kind) {
    case PushKind::kMatch: {
      VZ_ASSIGN_OR_RETURN(event.svs_id, reader->ReadI64());
      VZ_ASSIGN_OR_RETURN(event.camera, reader->ReadString());
      VZ_ASSIGN_OR_RETURN(event.start_ms, reader->ReadI64());
      VZ_ASSIGN_OR_RETURN(event.end_ms, reader->ReadI64());
      VZ_ASSIGN_OR_RETURN(event.distance, reader->ReadF64());
      break;
    }
    case PushKind::kIndexUpdate: {
      VZ_ASSIGN_OR_RETURN(event.index_version, reader->ReadU64());
      break;
    }
    case PushKind::kGap: {
      VZ_ASSIGN_OR_RETURN(event.dropped, reader->ReadU64());
      if (event.dropped == 0) {
        return Status::InvalidArgument("gap marker with zero dropped events");
      }
      break;
    }
  }
  return event;
}

void EncodeIngestBatchReply(io::BinaryWriter* writer,
                            const IngestBatchReply& reply) {
  writer->WriteU64(reply.accepted);
  writer->WriteU64(reply.rejected);
}

StatusOr<IngestBatchReply> DecodeIngestBatchReply(io::BinaryReader* reader) {
  IngestBatchReply reply;
  VZ_ASSIGN_OR_RETURN(reply.accepted, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(reply.rejected, reader->ReadU64());
  return reply;
}

void EncodeAdminTuneRequest(io::BinaryWriter* writer,
                            const AdminTuneRequest& request) {
  writer->WriteU8(request.index_mode.has_value() ? 1 : 0);
  if (request.index_mode) writer->WriteU32(*request.index_mode);
  writer->WriteU8(request.boundary_scale.has_value() ? 1 : 0);
  if (request.boundary_scale) writer->WriteF64(*request.boundary_scale);
  writer->WriteU8(request.omd_alpha.has_value() ? 1 : 0);
  if (request.omd_alpha) writer->WriteF64(*request.omd_alpha);
  writer->WriteU8(request.keyframe_selection.has_value() ? 1 : 0);
  if (request.keyframe_selection) {
    writer->WriteU8(*request.keyframe_selection ? 1 : 0);
  }
  writer->WriteU8(request.inter_group_count.has_value() ? 1 : 0);
  if (request.inter_group_count) writer->WriteU64(*request.inter_group_count);
  writer->WriteU8(request.intra_cluster_count.has_value() ? 1 : 0);
  if (request.intra_cluster_count) {
    writer->WriteU64(*request.intra_cluster_count);
  }
}

StatusOr<AdminTuneRequest> DecodeAdminTuneRequest(io::BinaryReader* reader) {
  AdminTuneRequest request;
  VZ_ASSIGN_OR_RETURN(uint8_t has_mode, reader->ReadU8());
  if (has_mode != 0) {
    VZ_ASSIGN_OR_RETURN(uint32_t mode, reader->ReadU32());
    request.index_mode = mode;
  }
  VZ_ASSIGN_OR_RETURN(uint8_t has_scale, reader->ReadU8());
  if (has_scale != 0) {
    VZ_ASSIGN_OR_RETURN(double scale, reader->ReadF64());
    request.boundary_scale = scale;
  }
  VZ_ASSIGN_OR_RETURN(uint8_t has_alpha, reader->ReadU8());
  if (has_alpha != 0) {
    VZ_ASSIGN_OR_RETURN(double alpha, reader->ReadF64());
    request.omd_alpha = alpha;
  }
  VZ_ASSIGN_OR_RETURN(uint8_t has_keyframe, reader->ReadU8());
  if (has_keyframe != 0) {
    VZ_ASSIGN_OR_RETURN(uint8_t keyframe, reader->ReadU8());
    request.keyframe_selection = keyframe != 0;
  }
  VZ_ASSIGN_OR_RETURN(uint8_t has_inter, reader->ReadU8());
  if (has_inter != 0) {
    VZ_ASSIGN_OR_RETURN(uint64_t inter, reader->ReadU64());
    request.inter_group_count = inter;
  }
  VZ_ASSIGN_OR_RETURN(uint8_t has_intra, reader->ReadU8());
  if (has_intra != 0) {
    VZ_ASSIGN_OR_RETURN(uint64_t intra, reader->ReadU64());
    request.intra_cluster_count = intra;
  }
  return request;
}

void EncodeAdminTuneReply(io::BinaryWriter* writer,
                          const AdminTuneReply& reply) {
  writer->WriteU32(reply.index_mode);
  writer->WriteF64(reply.boundary_scale);
  writer->WriteF64(reply.omd_alpha);
  writer->WriteU8(reply.keyframe_selection ? 1 : 0);
  writer->WriteU64(reply.inter_group_count);
  writer->WriteU64(reply.intra_cluster_count);
}

StatusOr<AdminTuneReply> DecodeAdminTuneReply(io::BinaryReader* reader) {
  AdminTuneReply reply;
  VZ_ASSIGN_OR_RETURN(reply.index_mode, reader->ReadU32());
  VZ_ASSIGN_OR_RETURN(reply.boundary_scale, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(reply.omd_alpha, reader->ReadF64());
  VZ_ASSIGN_OR_RETURN(uint8_t keyframe, reader->ReadU8());
  reply.keyframe_selection = keyframe != 0;
  VZ_ASSIGN_OR_RETURN(reply.inter_group_count, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(reply.intra_cluster_count, reader->ReadU64());
  return reply;
}

}  // namespace vz::net
