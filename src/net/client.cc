#include "net/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unistd.h>

namespace vz::net {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Process-unique session id: a counter mixed with the clock and pid.
/// Uniqueness across client instances is what matters (two clients sharing
/// a session id would share a dedup window); determinism is not — tests pin
/// `ClientOptions::session_id` instead.
uint64_t GenerateSessionId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t nonce = counter.fetch_add(1) + 1;
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const uint64_t pid = static_cast<uint64_t>(::getpid());
  const uint64_t id = SplitMix64(now ^ (pid << 32) ^ (nonce * 0x9E3779B9ULL));
  return id == 0 ? 1 : id;  // 0 is reserved as "no token"
}

/// True for status codes that mean "the connection is unusable but the
/// server may well be fine": worth a reconnect. `kInternal` is included
/// because a refused connect (server mid-restart) surfaces as such.
bool IsTransportFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kDataLoss ||
         code == StatusCode::kNotFound || code == StatusCode::kInternal;
}

}  // namespace

int64_t BackoffDelayMs(const ClientOptions& options, int64_t hint_ms,
                       size_t attempt, Rng* rng) {
  int64_t base = hint_ms > 0 ? hint_ms : options.backoff_floor_ms;
  if (base <= 0) base = 1;
  int64_t delay = base;
  for (size_t i = 0; i < attempt && delay < options.backoff_cap_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options.backoff_cap_ms);
  // Subtractive jitter: uniform in [delay * (1 - jitter), delay]. Shrinking
  // only (never growing) keeps the cap an honest upper bound.
  if (rng != nullptr && options.backoff_jitter > 0 && delay > 0) {
    const double jitter = std::min(1.0, options.backoff_jitter);
    const int64_t jittered = static_cast<int64_t>(
        static_cast<double>(delay) * (1.0 - jitter * rng->UniformDouble()));
    delay = std::max<int64_t>(1, jittered);
  }
  return delay;
}

Client::Client(std::string host, uint16_t port, const ClientOptions& options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      session_id_(options.session_id != 0 ? options.session_id
                                          : GenerateSessionId()),
      backoff_rng_(options.backoff_seed != 0 ? options.backoff_seed
                                             : SplitMix64(session_id_)) {}

void Client::SleepBackoff(int64_t hint_ms, size_t attempt) {
  const int64_t delay =
      BackoffDelayMs(options_, hint_ms, attempt, &backoff_rng_);
  call_stats_.backoff_ms_total += delay;
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 const ClientOptions& options) {
  Client client(host, port, options);
  size_t shed_attempt = 0;
  size_t reconnects_used = 0;
  for (;;) {
    Status status = client.Handshake();
    if (status.ok()) return client;
    // A connection-level shed (server at capacity) is retryable exactly like
    // a shed query; a transport failure (flaky link, server mid-restart)
    // consumes the same per-call reconnect budget `Call` uses. Everything
    // else is final.
    if (status.code() == StatusCode::kResourceExhausted) {
      if (shed_attempt >= options.max_shed_retries) return status;
      client.call_stats_.shed_retries++;
      client.SleepBackoff(client.last_shed_hint_ms_, shed_attempt++);
      continue;
    }
    if (IsTransportFailure(status.code())) {
      client.call_stats_.transport_failures++;
      if (reconnects_used >= options.max_reconnects) return status;
      client.SleepBackoff(0, reconnects_used++);
      continue;
    }
    return status;
  }
}

Status Client::Handshake() {
  const int64_t io_timeout =
      options_.io_timeout_ms > 0 ? options_.io_timeout_ms : -1;
  auto connected = TcpConnect(host_, port_, options_.connect_timeout_ms);
  if (!connected.ok()) {
    fd_.Reset();
    return connected.status();
  }
  fd_ = std::move(*connected);
  io::BinaryWriter hello;
  hello.WriteU32(kProtocolVersion);
  if (Status s = WriteFrame(fd_.get(),
                            static_cast<uint32_t>(MsgType::kHello),
                            hello.buffer(), io_timeout);
      !s.ok()) {
    fd_.Reset();
    return s;
  }
  auto response = ReadFrame(fd_.get(), io_timeout);
  if (!response.ok()) {
    fd_.Reset();
    // As on the Call path: an unreadable response frame is stream
    // corruption, whatever decode error it produced — retryable transport.
    return response.status().code() == StatusCode::kInvalidArgument
               ? Status::DataLoss("hello response corrupted: " +
                                  response.status().message())
               : response.status();
  }
  io::BinaryReader reader(response->payload);
  auto wire_status = DecodeWireStatus(&reader);
  if (!wire_status.ok()) {
    fd_.Reset();
    return wire_status.status();
  }
  if (wire_status->status.code() == StatusCode::kResourceExhausted) {
    last_shed_hint_ms_ = wire_status->retry_after_ms;
  }
  // The server reports its own version after the status, on success and on
  // version mismatch alike (sheds carry no version).
  if (reader.remaining() >= sizeof(uint32_t)) {
    auto version = reader.ReadU32();
    if (version.ok()) server_protocol_version_ = *version;
  }
  if (!wire_status->status.ok()) {
    fd_.Reset();
    // The server answers an unreadable request frame with a hello-typed
    // error carrying the decode status: on the hello path that surfaces
    // here. kDataLoss/kInvalidArgument therefore mean our hello got
    // corrupted in transit — retryable — while genuine refusals (version
    // mismatch = kFailedPrecondition, shed = kResourceExhausted) keep
    // their codes.
    const StatusCode code = wire_status->status.code();
    if (code == StatusCode::kDataLoss ||
        code == StatusCode::kInvalidArgument) {
      return Status::DataLoss("server could not read our hello: " +
                              wire_status->status.message());
    }
    return wire_status->status;
  }
  return Status::OK();
}

StatusOr<std::string> Client::CallOnce(MsgType type,
                                       const std::string& payload,
                                       WireStatus* wire_status) {
  if (!fd_.valid()) return Status::FailedPrecondition("not connected");
  const int64_t io_timeout =
      options_.io_timeout_ms > 0 ? options_.io_timeout_ms : -1;
  VZ_RETURN_IF_ERROR(
      WriteFrame(fd_.get(), static_cast<uint32_t>(type), payload, io_timeout));
  auto response = ReadFrame(fd_.get(), io_timeout);
  if (!response.ok()) {
    if (response.status().code() == StatusCode::kNotFound) {
      return Status::DataLoss("connection closed by server");
    }
    if (response.status().code() == StatusCode::kInvalidArgument) {
      // Bad magic, hostile length, alien type: on the response path these
      // all mean the stream got corrupted in transit, not that we argued
      // badly — reclassify so the reconnect-retry machinery kicks in.
      return Status::DataLoss("response stream corrupted: " +
                              response.status().message());
    }
    return response.status();
  }
  const uint32_t expected = static_cast<uint32_t>(type) | kResponseFlag;
  const uint32_t hello_error =
      static_cast<uint32_t>(MsgType::kHello) | kResponseFlag;
  if (response->type == hello_error && type != MsgType::kHello) {
    // The server could not read our request frame (torn or corrupted in
    // transit) and is about to close the connection. It never processed the
    // request, so a reconnect-retry is safe even without a token.
    io::BinaryReader error_reader(response->payload);
    auto error_status = DecodeWireStatus(&error_reader);
    return Status::Unavailable(
        "server rejected the request frame: " +
        (error_status.ok() ? error_status->status.message()
                           : "unreadable error response"));
  }
  // Anything else off-type means the stream desynced.
  if (response->type != expected) {
    return Status::DataLoss("response type mismatch");
  }
  io::BinaryReader reader(response->payload);
  VZ_ASSIGN_OR_RETURN(*wire_status, DecodeWireStatus(&reader));
  return response->payload.substr(reader.position());
}

StatusOr<std::string> Client::Call(MsgType type, const std::string& payload) {
  // One token per logical call: retries re-send the same (session, sequence)
  // pair, which is what lets the server recognise and deduplicate them.
  std::string wire_payload;
  if (IsMutatingType(static_cast<uint32_t>(type))) {
    io::BinaryWriter writer;
    EncodeIdempotencyToken(&writer, {session_id_, next_sequence_++});
    wire_payload = writer.buffer() + payload;
  } else {
    wire_payload = payload;
  }

  // The reconnect budget is per call and covers both mid-call transport
  // drops and failed re-handshakes (a server mid-restart refuses connects
  // for a while).
  size_t reconnects_used = 0;
  size_t shed_attempt = 0;
  for (;;) {
    if (!fd_.valid()) {
      Status status = Handshake();
      if (!status.ok()) {
        if (status.code() == StatusCode::kResourceExhausted &&
            shed_attempt < options_.max_shed_retries) {
          call_stats_.shed_retries++;
          SleepBackoff(last_shed_hint_ms_, shed_attempt++);
          continue;
        }
        if (IsTransportFailure(status.code()) &&
            reconnects_used < options_.max_reconnects) {
          call_stats_.transport_failures++;
          SleepBackoff(0, reconnects_used);
          ++reconnects_used;
          continue;
        }
        return status;
      }
      call_stats_.reconnects++;
    }
    WireStatus wire_status;
    call_stats_.requests_sent++;
    auto body = CallOnce(type, wire_payload, &wire_status);
    if (!body.ok()) {
      // Transport failure: the connection is unusable; reconnect within
      // budget. The retry is exactly-once for mutating requests (same
      // token) and inherently safe for read-only ones.
      call_stats_.transport_failures++;
      fd_.Reset();
      if (reconnects_used < options_.max_reconnects) {
        ++reconnects_used;
        continue;
      }
      return body.status();
    }
    if (wire_status.status.ok()) return body;
    if (wire_status.status.code() == StatusCode::kResourceExhausted &&
        shed_attempt < options_.max_shed_retries) {
      call_stats_.shed_retries++;
      SleepBackoff(wire_status.retry_after_ms, shed_attempt++);
      continue;
    }
    if (wire_status.status.code() == StatusCode::kUnavailable &&
        reconnects_used < options_.max_reconnects) {
      // A response-carried kUnavailable (a server stopping while the call
      // waited on durability or a standby ack) is as retryable as a dropped
      // connection, and never an ack: the op may or may not have applied,
      // and the resend carries the same token, so it is exactly-once either
      // way. Reconnect — the endpoint may come back as a promoted standby.
      call_stats_.transport_failures++;
      fd_.Reset();
      SleepBackoff(0, reconnects_used);
      ++reconnects_used;
      continue;
    }
    return wire_status.status;
  }
}

Status Client::CameraStart(const core::CameraId& camera) {
  io::BinaryWriter writer;
  writer.WriteString(camera);
  return Call(MsgType::kCameraStart, writer.buffer()).status();
}

Status Client::CameraTerminate(const core::CameraId& camera) {
  io::BinaryWriter writer;
  writer.WriteString(camera);
  return Call(MsgType::kCameraTerminate, writer.buffer()).status();
}

Status Client::IngestFrame(const core::FrameObservation& frame) {
  io::BinaryWriter writer;
  EncodeFrameObservation(&writer, frame);
  return Call(MsgType::kIngestFrame, writer.buffer()).status();
}

Status Client::Flush() { return Call(MsgType::kFlush, "").status(); }

Status Client::Ping() {
  Status status = Call(MsgType::kPing, "").status();
  if (status.ok()) call_stats_.pings_sent++;
  return status;
}

StatusOr<core::DirectQueryResult> Client::DirectQuery(
    const FeatureVector& feature, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  EncodeFeatureVector(&writer, feature);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kDirectQuery, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeDirectQueryResult(&reader);
}

StatusOr<core::ClusteringQueryResult> Client::ClusteringQuery(
    core::SvsId target_id, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  writer.WriteI64(target_id);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kClusteringQueryById, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeClusteringQueryResult(&reader);
}

StatusOr<core::ClusteringQueryResult> Client::ClusteringQuery(
    const FeatureMap& target, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  EncodeFeatureMap(&writer, target);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kClusteringQueryByMap, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeClusteringQueryResult(&reader);
}

StatusOr<core::SvsMetadata> Client::GetMetaData(core::SvsId id) {
  io::BinaryWriter writer;
  writer.WriteI64(id);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kGetMetaData, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeSvsMetadata(&reader);
}

StatusOr<MonitorStatsReply> Client::MonitorStats() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kMonitorStats, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeMonitorStats(&reader);
}

StatusOr<std::vector<CameraHealthEntry>> Client::CameraHealthReport() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kCameraHealth, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeCameraHealthReport(&reader);
}

StatusOr<core::QueryLoadStats> Client::QueryLoadStats() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kQueryLoadStats, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeQueryLoadStats(&reader);
}

StatusOr<WalShipReply> Client::WalShip(uint64_t from_lsn,
                                       uint32_t max_records,
                                       uint32_t wait_ms, uint64_t epoch) {
  io::BinaryWriter writer;
  EncodeWalShipRequest(&writer, {from_lsn, max_records, wait_ms, epoch});
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kWalShip, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeWalShipReply(&reader);
}

StatusOr<RepSyncReply> Client::RepSync(uint64_t since_version) {
  io::BinaryWriter writer;
  EncodeRepSyncRequest(&writer, {since_version});
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kRepSync, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeRepSyncReply(&reader);
}

StatusOr<FeatureMap> Client::SvsFeatureMap(core::SvsId id) {
  io::BinaryWriter writer;
  writer.WriteI64(id);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kSvsFeatureMap, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeFeatureMap(&reader);
}

StatusOr<CheckpointFetchReply> Client::CheckpointFetch() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kCheckpointFetch, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeCheckpointFetchReply(&reader);
}

Status Client::SaveSnapshot(const std::string& path) {
  io::BinaryWriter writer;
  writer.WriteString(path);
  return Call(MsgType::kSnapshotSave, writer.buffer()).status();
}

StatusOr<uint64_t> Client::LoadSnapshot(const std::string& path) {
  io::BinaryWriter writer;
  writer.WriteString(path);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kSnapshotLoad, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return reader.ReadU64();
}

}  // namespace vz::net
