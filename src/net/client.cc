#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace vz::net {

namespace {

/// Capped exponential backoff: the server's retry-after hint (or the floor)
/// doubled per attempt.
int64_t BackoffMs(const ClientOptions& options, int64_t hint_ms,
                  size_t attempt) {
  int64_t base = hint_ms > 0 ? hint_ms : options.backoff_floor_ms;
  if (base <= 0) base = 1;
  int64_t delay = base;
  for (size_t i = 0; i < attempt && delay < options.backoff_cap_ms; ++i) {
    delay *= 2;
  }
  return std::min(delay, options.backoff_cap_ms);
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 const ClientOptions& options) {
  Client client(host, port, options);
  for (size_t attempt = 0;; ++attempt) {
    Status status = client.Handshake();
    if (status.ok()) return client;
    // A connection-level shed (server at capacity) is retryable exactly like
    // a shed query; everything else is final.
    if (status.code() != StatusCode::kResourceExhausted ||
        attempt >= options.max_shed_retries) {
      return status;
    }
    const int64_t delay =
        BackoffMs(options, client.last_shed_hint_ms_, attempt);
    client.call_stats_.shed_retries++;
    client.call_stats_.backoff_ms_total += delay;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

Status Client::Handshake() {
  VZ_ASSIGN_OR_RETURN(fd_,
                      TcpConnect(host_, port_, options_.connect_timeout_ms));
  io::BinaryWriter hello;
  hello.WriteU32(kProtocolVersion);
  VZ_RETURN_IF_ERROR(WriteFrame(fd_.get(),
                                static_cast<uint32_t>(MsgType::kHello),
                                hello.buffer()));
  auto response = ReadFrame(fd_.get());
  if (!response.ok()) {
    fd_.Reset();
    return response.status();
  }
  io::BinaryReader reader(response->payload);
  auto wire_status = DecodeWireStatus(&reader);
  if (!wire_status.ok()) {
    fd_.Reset();
    return wire_status.status();
  }
  if (wire_status->status.code() == StatusCode::kResourceExhausted) {
    last_shed_hint_ms_ = wire_status->retry_after_ms;
  }
  // The server reports its own version after the status, on success and on
  // version mismatch alike (sheds carry no version).
  if (reader.remaining() >= sizeof(uint32_t)) {
    auto version = reader.ReadU32();
    if (version.ok()) server_protocol_version_ = *version;
  }
  if (!wire_status->status.ok()) {
    fd_.Reset();
    return wire_status->status;
  }
  return Status::OK();
}

StatusOr<std::string> Client::CallOnce(MsgType type,
                                       const std::string& payload,
                                       WireStatus* wire_status) {
  if (!fd_.valid()) return Status::FailedPrecondition("not connected");
  VZ_RETURN_IF_ERROR(
      WriteFrame(fd_.get(), static_cast<uint32_t>(type), payload));
  auto response = ReadFrame(fd_.get());
  if (!response.ok()) {
    return response.status().code() == StatusCode::kNotFound
               ? Status::DataLoss("connection closed by server")
               : response.status();
  }
  const uint32_t expected = static_cast<uint32_t>(type) | kResponseFlag;
  const uint32_t hello_error =
      static_cast<uint32_t>(MsgType::kHello) | kResponseFlag;
  // Frame-level failures (torn request frame) come back as a Hello-typed
  // error response; anything else off-type means the stream desynced.
  if (response->type != expected && response->type != hello_error) {
    return Status::DataLoss("response type mismatch");
  }
  io::BinaryReader reader(response->payload);
  VZ_ASSIGN_OR_RETURN(*wire_status, DecodeWireStatus(&reader));
  return response->payload.substr(reader.position());
}

StatusOr<std::string> Client::Call(MsgType type, const std::string& payload) {
  size_t reconnects_used = 0;
  for (size_t attempt = 0;; ++attempt) {
    if (!fd_.valid()) {
      Status status = Handshake();
      if (!status.ok()) {
        if (status.code() == StatusCode::kResourceExhausted &&
            attempt < options_.max_shed_retries) {
          const int64_t delay =
              BackoffMs(options_, last_shed_hint_ms_, attempt);
          call_stats_.shed_retries++;
          call_stats_.backoff_ms_total += delay;
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          continue;
        }
        return status;
      }
      call_stats_.reconnects++;
    }
    WireStatus wire_status;
    call_stats_.requests_sent++;
    auto body = CallOnce(type, payload, &wire_status);
    if (!body.ok()) {
      // Transport failure: the connection is unusable; reconnect within
      // budget. Requests are safe to replay — queries are read-only and a
      // replayed ingest is deduplicated by the ingestion guard.
      fd_.Reset();
      if (reconnects_used < options_.max_reconnects) {
        ++reconnects_used;
        continue;
      }
      return body.status();
    }
    if (wire_status.status.ok()) return body;
    if (wire_status.status.code() == StatusCode::kResourceExhausted &&
        attempt < options_.max_shed_retries) {
      const int64_t delay =
          BackoffMs(options_, wire_status.retry_after_ms, attempt);
      call_stats_.shed_retries++;
      call_stats_.backoff_ms_total += delay;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      continue;
    }
    return wire_status.status;
  }
}

Status Client::CameraStart(const core::CameraId& camera) {
  io::BinaryWriter writer;
  writer.WriteString(camera);
  return Call(MsgType::kCameraStart, writer.buffer()).status();
}

Status Client::CameraTerminate(const core::CameraId& camera) {
  io::BinaryWriter writer;
  writer.WriteString(camera);
  return Call(MsgType::kCameraTerminate, writer.buffer()).status();
}

Status Client::IngestFrame(const core::FrameObservation& frame) {
  io::BinaryWriter writer;
  EncodeFrameObservation(&writer, frame);
  return Call(MsgType::kIngestFrame, writer.buffer()).status();
}

Status Client::Flush() { return Call(MsgType::kFlush, "").status(); }

StatusOr<core::DirectQueryResult> Client::DirectQuery(
    const FeatureVector& feature, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  EncodeFeatureVector(&writer, feature);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kDirectQuery, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeDirectQueryResult(&reader);
}

StatusOr<core::ClusteringQueryResult> Client::ClusteringQuery(
    core::SvsId target_id, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  writer.WriteI64(target_id);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kClusteringQueryById, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeClusteringQueryResult(&reader);
}

StatusOr<core::ClusteringQueryResult> Client::ClusteringQuery(
    const FeatureMap& target, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  EncodeFeatureMap(&writer, target);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kClusteringQueryByMap, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeClusteringQueryResult(&reader);
}

StatusOr<core::SvsMetadata> Client::GetMetaData(core::SvsId id) {
  io::BinaryWriter writer;
  writer.WriteI64(id);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kGetMetaData, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeSvsMetadata(&reader);
}

StatusOr<MonitorStatsReply> Client::MonitorStats() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kMonitorStats, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeMonitorStats(&reader);
}

StatusOr<std::vector<CameraHealthEntry>> Client::CameraHealthReport() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kCameraHealth, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeCameraHealthReport(&reader);
}

StatusOr<core::QueryLoadStats> Client::QueryLoadStats() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kQueryLoadStats, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeQueryLoadStats(&reader);
}

Status Client::SaveSnapshot(const std::string& path) {
  io::BinaryWriter writer;
  writer.WriteString(path);
  return Call(MsgType::kSnapshotSave, writer.buffer()).status();
}

StatusOr<uint64_t> Client::LoadSnapshot(const std::string& path) {
  io::BinaryWriter writer;
  writer.WriteString(path);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kSnapshotLoad, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return reader.ReadU64();
}

}  // namespace vz::net
