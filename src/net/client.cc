#include "net/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>

namespace vz::net {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Process-unique session id: a counter mixed with the clock and pid.
/// Uniqueness across client instances is what matters (two clients sharing
/// a session id would share a dedup window); determinism is not — tests pin
/// `ClientOptions::session_id` instead.
uint64_t GenerateSessionId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t nonce = counter.fetch_add(1) + 1;
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const uint64_t pid = static_cast<uint64_t>(::getpid());
  const uint64_t id = SplitMix64(now ^ (pid << 32) ^ (nonce * 0x9E3779B9ULL));
  return id == 0 ? 1 : id;  // 0 is reserved as "no token"
}

/// True for status codes that mean "the connection is unusable but the
/// server may well be fine": worth a reconnect. `kInternal` is included
/// because a refused connect (server mid-restart) surfaces as such.
bool IsTransportFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kDataLoss ||
         code == StatusCode::kNotFound || code == StatusCode::kInternal;
}

}  // namespace

int64_t BackoffDelayMs(const ClientOptions& options, int64_t hint_ms,
                       size_t attempt, Rng* rng) {
  int64_t base = hint_ms > 0 ? hint_ms : options.backoff_floor_ms;
  if (base <= 0) base = 1;
  int64_t delay = base;
  for (size_t i = 0; i < attempt && delay < options.backoff_cap_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options.backoff_cap_ms);
  // Subtractive jitter: uniform in [delay * (1 - jitter), delay]. Shrinking
  // only (never growing) keeps the cap an honest upper bound.
  if (rng != nullptr && options.backoff_jitter > 0 && delay > 0) {
    const double jitter = std::min(1.0, options.backoff_jitter);
    const int64_t jittered = static_cast<int64_t>(
        static_cast<double>(delay) * (1.0 - jitter * rng->UniformDouble()));
    delay = std::max<int64_t>(1, jittered);
  }
  return delay;
}

struct Client::PendingCall {
  bool done = false;
  uint32_t type = 0;
  std::string payload;
};

struct Client::ConnCore {
  UniqueFd fd;
  /// Set before the reader starts, immutable after: this connection speaks
  /// v5 framing (correlation ids, reader-thread demux, pushes).
  bool v5 = false;
  int64_t io_timeout_ms = -1;
  /// Serializes frame writes (requests from concurrent callers).
  std::mutex write_mu;
  /// Guards everything below.
  std::mutex mu;
  std::condition_variable cv;
  /// Terminal stream status once non-OK: the reader exited and every
  /// current and future call on this connection fails with it.
  Status broken = Status::OK();
  uint64_t next_correlation = 1;
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall>> pending;
  /// Correlation id of a Subscribe RPC -> its push callback.
  std::unordered_map<uint64_t, PushCallback> push_callbacks;
  /// Subscription id -> owning correlation, for Unsubscribe cleanup.
  std::unordered_map<uint64_t, uint64_t> subscription_corr;
  std::thread reader;

  ~ConnCore() {
    // Normal teardown joins via Client::DropConn; this is the backstop for
    // a core torn down by destruction order (e.g. Connect failing late).
    if (reader.joinable()) {
      if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
      reader.join();
    }
  }
};

struct Client::Shared {
  /// Guards stats, the token sequence, the jitter stream, and the client's
  /// `core_` pointer swap.
  std::mutex mu;
  /// Serializes handshakes among concurrent callers, so one dropped
  /// connection produces one reconnect, not a thundering herd of them.
  std::mutex reconnect_mu;
  uint64_t next_sequence = 1;
  int64_t last_shed_hint_ms = 0;
  ClientCallStats stats;
  Rng rng;

  explicit Shared(uint64_t seed) : rng(seed) {}
};

Client::Client(std::string host, uint16_t port, const ClientOptions& options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      session_id_(options.session_id != 0 ? options.session_id
                                          : GenerateSessionId()),
      shared_(std::make_unique<Shared>(options.backoff_seed != 0
                                           ? options.backoff_seed
                                           : SplitMix64(session_id_))) {}

Client::~Client() {
  if (shared_ != nullptr) Close();
}

// Out of line so `Shared`/`ConnCore` are complete where these instantiate.
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

void Client::Close() { DropConn(conn()); }

std::shared_ptr<Client::ConnCore> Client::conn() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return core_;
}

void Client::DropConn(const std::shared_ptr<ConnCore>& core) {
  if (core == nullptr) return;
  std::shared_ptr<ConnCore> victim;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (core_ == core) victim = std::move(core_);
  }
  if (victim == nullptr) return;  // a racing caller already dropped it
  // Shut the socket down first: that wakes a reader blocked in recv, which
  // then fails all pending calls and exits, making the join below bounded.
  if (victim->fd.valid()) ::shutdown(victim->fd.get(), SHUT_RDWR);
  if (victim->reader.joinable()) victim->reader.join();
}

ClientCallStats Client::call_stats() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->stats;
}

void Client::SleepBackoff(int64_t hint_ms, size_t attempt) {
  int64_t delay = 0;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    delay = BackoffDelayMs(options_, hint_ms, attempt, &shared_->rng);
    shared_->stats.backoff_ms_total += delay;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 const ClientOptions& options) {
  Client client(host, port, options);
  size_t shed_attempt = 0;
  size_t reconnects_used = 0;
  for (;;) {
    Status status = client.Handshake();
    if (status.ok()) return client;
    // A connection-level shed (server at capacity) is retryable exactly like
    // a shed query; a transport failure (flaky link, server mid-restart)
    // consumes the same per-call reconnect budget `Call` uses. Everything
    // else is final.
    if (status.code() == StatusCode::kResourceExhausted) {
      if (shed_attempt >= options.max_shed_retries) return status;
      int64_t hint = 0;
      {
        std::lock_guard<std::mutex> lock(client.shared_->mu);
        client.shared_->stats.shed_retries++;
        hint = client.shared_->last_shed_hint_ms;
      }
      client.SleepBackoff(hint, shed_attempt++);
      continue;
    }
    if (IsTransportFailure(status.code())) {
      {
        std::lock_guard<std::mutex> lock(client.shared_->mu);
        client.shared_->stats.transport_failures++;
      }
      if (reconnects_used >= options.max_reconnects) return status;
      client.SleepBackoff(0, reconnects_used++);
      continue;
    }
    return status;
  }
}

Status Client::Handshake() {
  const int64_t io_timeout =
      options_.io_timeout_ms > 0 ? options_.io_timeout_ms : -1;
  auto connected = TcpConnect(host_, port_, options_.connect_timeout_ms);
  if (!connected.ok()) return connected.status();
  auto core = std::make_shared<ConnCore>();
  core->fd = std::move(*connected);
  core->io_timeout_ms = io_timeout;
  // The hello exchange ALWAYS uses the legacy framing, whatever version is
  // being negotiated — that is what lets a v4 server read a v5 client's
  // hello (and refuse it intelligibly) and vice versa.
  io::BinaryWriter hello;
  hello.WriteU32(options_.protocol_version);
  if (Status s = WriteFrame(core->fd.get(),
                            static_cast<uint32_t>(MsgType::kHello),
                            hello.buffer(), io_timeout);
      !s.ok()) {
    return s;
  }
  auto response = ReadFrame(core->fd.get(), io_timeout);
  if (!response.ok()) {
    // As on the Call path: an unreadable response frame is stream
    // corruption, whatever decode error it produced — retryable transport.
    return response.status().code() == StatusCode::kInvalidArgument
               ? Status::DataLoss("hello response corrupted: " +
                                  response.status().message())
               : response.status();
  }
  io::BinaryReader reader(response->payload);
  auto wire_status = DecodeWireStatus(&reader);
  if (!wire_status.ok()) return wire_status.status();
  if (wire_status->status.code() == StatusCode::kResourceExhausted) {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->last_shed_hint_ms = wire_status->retry_after_ms;
  }
  // The server reports its own version after the status, on success and on
  // version mismatch alike (sheds carry no version).
  if (reader.remaining() >= sizeof(uint32_t)) {
    auto version = reader.ReadU32();
    if (version.ok()) server_protocol_version_ = *version;
  }
  if (!wire_status->status.ok()) {
    // The server answers an unreadable request frame with a hello-typed
    // error carrying the decode status: on the hello path that surfaces
    // here. kDataLoss/kInvalidArgument therefore mean our hello got
    // corrupted in transit — retryable — while genuine refusals (version
    // mismatch = kFailedPrecondition, shed = kResourceExhausted) keep
    // their codes.
    const StatusCode code = wire_status->status.code();
    if (code == StatusCode::kDataLoss ||
        code == StatusCode::kInvalidArgument) {
      return Status::DataLoss("server could not read our hello: " +
                              wire_status->status.message());
    }
    return wire_status->status;
  }
  if (options_.protocol_version >= 5) {
    // Both sides switch to v5 framing after a successful v5 hello; from
    // here every frame on this connection carries a correlation id and the
    // reader thread owns the receive side.
    core->v5 = true;
    core->reader = std::thread([core] { ReaderLoop(core); });
  }
  std::shared_ptr<ConnCore> old;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    old = std::move(core_);
    core_ = std::move(core);
  }
  if (old != nullptr && old->fd.valid()) {
    ::shutdown(old->fd.get(), SHUT_RDWR);
  }
  // `old`'s destructor joins its reader if one was running.
  return Status::OK();
}

void Client::ReaderLoop(std::shared_ptr<ConnCore> core) {
  for (;;) {
    // Block without a deadline: per-call deadlines are enforced by the
    // waiters (cv.wait_for), and teardown wakes this recv via shutdown.
    auto frame = ReadFrameV5(core->fd.get(), /*timeout_ms=*/-1);
    if (!frame.ok()) {
      Status broken = frame.status();
      if (broken.code() == StatusCode::kNotFound) {
        broken = Status::DataLoss("connection closed by server");
      } else if (broken.code() == StatusCode::kInvalidArgument) {
        broken = Status::DataLoss("response stream corrupted: " +
                                  broken.message());
      }
      std::lock_guard<std::mutex> lock(core->mu);
      core->broken = std::move(broken);
      core->cv.notify_all();
      return;
    }
    if (frame->type == static_cast<uint32_t>(MsgType::kPushEvent)) {
      io::BinaryReader event_reader(frame->payload);
      auto event = DecodePushEvent(&event_reader);
      // A push whose CRC passed but whose payload does not decode is from a
      // future schema we half-understand: drop the event, keep the stream
      // (framing is intact). Pushes are at-most-once anyway.
      if (!event.ok()) continue;
      PushCallback callback;
      {
        std::lock_guard<std::mutex> lock(core->mu);
        auto it = core->push_callbacks.find(frame->correlation);
        // Unknown correlation: a push racing an unsubscribe. Drop it.
        if (it != core->push_callbacks.end()) callback = it->second;
      }
      // Invoked outside the lock so the callback may issue (read-only) RPCs.
      if (callback) callback(*event);
      continue;
    }
    if (frame->correlation == 0) {
      // A correlation-less error frame: the server could not read one of
      // our frames (it answers with a legacy-correlation-0 hello-typed
      // error) and is closing. Connection-fatal — no way to tell which
      // in-flight call it refers to.
      std::lock_guard<std::mutex> lock(core->mu);
      core->broken = Status::Unavailable("server rejected a request frame");
      core->cv.notify_all();
      return;
    }
    std::lock_guard<std::mutex> lock(core->mu);
    auto it = core->pending.find(frame->correlation);
    // Unknown correlation: the waiter abandoned the slot (deadline expired)
    // before the response arrived. Drop it.
    if (it == core->pending.end()) continue;
    it->second->done = true;
    it->second->type = frame->type;
    it->second->payload = std::move(frame->payload);
    core->pending.erase(it);
    core->cv.notify_all();
  }
}

StatusOr<std::shared_ptr<Client::ConnCore>> Client::EnsureConn() {
  std::shared_ptr<ConnCore> core = conn();
  if (core != nullptr) return core;
  std::lock_guard<std::mutex> reconnect_lock(shared_->reconnect_mu);
  core = conn();
  if (core != nullptr) return core;
  VZ_RETURN_IF_ERROR(Handshake());
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stats.reconnects++;
  }
  return conn();
}

StatusOr<std::string> Client::CallOnce(const std::shared_ptr<ConnCore>& core,
                                       MsgType type,
                                       const std::string& payload,
                                       WireStatus* wire_status) {
  if (!core->fd.valid()) return Status::FailedPrecondition("not connected");
  const int64_t io_timeout = core->io_timeout_ms;
  VZ_RETURN_IF_ERROR(WriteFrame(core->fd.get(), static_cast<uint32_t>(type),
                                payload, io_timeout));
  auto response = ReadFrame(core->fd.get(), io_timeout);
  if (!response.ok()) {
    if (response.status().code() == StatusCode::kNotFound) {
      return Status::DataLoss("connection closed by server");
    }
    if (response.status().code() == StatusCode::kInvalidArgument) {
      // Bad magic, hostile length, alien type: on the response path these
      // all mean the stream got corrupted in transit, not that we argued
      // badly — reclassify so the reconnect-retry machinery kicks in.
      return Status::DataLoss("response stream corrupted: " +
                              response.status().message());
    }
    return response.status();
  }
  const uint32_t expected = static_cast<uint32_t>(type) | kResponseFlag;
  const uint32_t hello_error =
      static_cast<uint32_t>(MsgType::kHello) | kResponseFlag;
  if (response->type == hello_error && type != MsgType::kHello) {
    // The server could not read our request frame (torn or corrupted in
    // transit) and is about to close the connection. It never processed the
    // request, so a reconnect-retry is safe even without a token.
    io::BinaryReader error_reader(response->payload);
    auto error_status = DecodeWireStatus(&error_reader);
    return Status::Unavailable(
        "server rejected the request frame: " +
        (error_status.ok() ? error_status->status.message()
                           : "unreadable error response"));
  }
  // Anything else off-type means the stream desynced.
  if (response->type != expected) {
    return Status::DataLoss("response type mismatch");
  }
  io::BinaryReader reader(response->payload);
  VZ_ASSIGN_OR_RETURN(*wire_status, DecodeWireStatus(&reader));
  return response->payload.substr(reader.position());
}

StatusOr<std::string> Client::CallOnceV5(const std::shared_ptr<ConnCore>& core,
                                         MsgType type,
                                         const std::string& payload,
                                         WireStatus* wire_status,
                                         const PushCallback* push_callback,
                                         uint64_t* correlation_out) {
  if (!core->fd.valid()) return Status::FailedPrecondition("not connected");
  auto slot = std::make_shared<PendingCall>();
  uint64_t correlation = 0;
  {
    std::lock_guard<std::mutex> lock(core->mu);
    if (!core->broken.ok()) return core->broken;
    correlation = core->next_correlation++;
    core->pending.emplace(correlation, slot);
    // Registered before the request is on the wire, so the first push can
    // never outrun the registration.
    if (push_callback != nullptr) {
      core->push_callbacks.emplace(correlation, *push_callback);
    }
  }
  if (correlation_out != nullptr) *correlation_out = correlation;
  auto abandon_pending = [&] {
    std::lock_guard<std::mutex> lock(core->mu);
    core->pending.erase(correlation);
  };
  {
    std::lock_guard<std::mutex> write_lock(core->write_mu);
    if (Status s = WriteFrameV5(core->fd.get(), static_cast<uint32_t>(type),
                                correlation, payload, core->io_timeout_ms);
        !s.ok()) {
      abandon_pending();
      return s;
    }
  }
  {
    std::unique_lock<std::mutex> lock(core->mu);
    auto ready = [&] { return slot->done || !core->broken.ok(); };
    if (core->io_timeout_ms > 0) {
      core->cv.wait_for(lock, std::chrono::milliseconds(core->io_timeout_ms),
                        ready);
    } else {
      core->cv.wait(lock, ready);
    }
    if (!slot->done) {
      const Status broken = core->broken;
      core->pending.erase(correlation);
      // Same contract as a blocking-read deadline on the legacy path: a
      // response that missed its deadline is a transport failure.
      return broken.ok() ? Status::Unavailable("response deadline expired")
                         : broken;
    }
  }
  const uint32_t expected = static_cast<uint32_t>(type) | kResponseFlag;
  const uint32_t hello_error =
      static_cast<uint32_t>(MsgType::kHello) | kResponseFlag;
  if (slot->type == hello_error && type != MsgType::kHello) {
    // Correlated hello-typed error: the server read the frame (correlation
    // intact) but refused to dispatch its payload. Never processed —
    // reconnect-retry safe.
    io::BinaryReader error_reader(slot->payload);
    auto error_status = DecodeWireStatus(&error_reader);
    return Status::Unavailable(
        "server rejected the request frame: " +
        (error_status.ok() ? error_status->status.message()
                           : "unreadable error response"));
  }
  if (slot->type != expected) {
    return Status::DataLoss("response type mismatch");
  }
  io::BinaryReader reader(slot->payload);
  VZ_ASSIGN_OR_RETURN(*wire_status, DecodeWireStatus(&reader));
  return slot->payload.substr(reader.position());
}

StatusOr<std::string> Client::Call(MsgType type, const std::string& payload) {
  // One token per logical call: retries re-send the same (session, sequence)
  // pair, which is what lets the server recognise and deduplicate them.
  std::string wire_payload;
  if (IsMutatingType(static_cast<uint32_t>(type))) {
    uint64_t sequence = 0;
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      sequence = shared_->next_sequence++;
    }
    io::BinaryWriter writer;
    EncodeIdempotencyToken(&writer, {session_id_, sequence});
    wire_payload = writer.buffer() + payload;
  } else {
    wire_payload = payload;
  }

  // The reconnect budget is per call and covers both mid-call transport
  // drops and failed re-handshakes (a server mid-restart refuses connects
  // for a while).
  size_t reconnects_used = 0;
  size_t shed_attempt = 0;
  for (;;) {
    auto ensured = EnsureConn();
    if (!ensured.ok()) {
      const Status status = ensured.status();
      if (status.code() == StatusCode::kResourceExhausted &&
          shed_attempt < options_.max_shed_retries) {
        int64_t hint = 0;
        {
          std::lock_guard<std::mutex> lock(shared_->mu);
          shared_->stats.shed_retries++;
          hint = shared_->last_shed_hint_ms;
        }
        SleepBackoff(hint, shed_attempt++);
        continue;
      }
      if (IsTransportFailure(status.code()) &&
          reconnects_used < options_.max_reconnects) {
        {
          std::lock_guard<std::mutex> lock(shared_->mu);
          shared_->stats.transport_failures++;
        }
        SleepBackoff(0, reconnects_used);
        ++reconnects_used;
        continue;
      }
      return status;
    }
    std::shared_ptr<ConnCore> core = *ensured;
    WireStatus wire_status;
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      shared_->stats.requests_sent++;
    }
    auto body = core->v5 ? CallOnceV5(core, type, wire_payload, &wire_status)
                         : CallOnce(core, type, wire_payload, &wire_status);
    if (!body.ok()) {
      // Transport failure: the connection is unusable; reconnect within
      // budget. The retry is exactly-once for mutating requests (same
      // token) and inherently safe for read-only ones.
      {
        std::lock_guard<std::mutex> lock(shared_->mu);
        shared_->stats.transport_failures++;
      }
      DropConn(core);
      if (reconnects_used < options_.max_reconnects) {
        ++reconnects_used;
        continue;
      }
      return body.status();
    }
    if (wire_status.status.ok()) return body;
    if (wire_status.status.code() == StatusCode::kResourceExhausted &&
        shed_attempt < options_.max_shed_retries) {
      {
        std::lock_guard<std::mutex> lock(shared_->mu);
        shared_->stats.shed_retries++;
      }
      SleepBackoff(wire_status.retry_after_ms, shed_attempt++);
      continue;
    }
    if (wire_status.status.code() == StatusCode::kUnavailable &&
        reconnects_used < options_.max_reconnects) {
      // A response-carried kUnavailable (a server stopping while the call
      // waited on durability or a standby ack) is as retryable as a dropped
      // connection, and never an ack: the op may or may not have applied,
      // and the resend carries the same token, so it is exactly-once either
      // way. Reconnect — the endpoint may come back as a promoted standby.
      {
        std::lock_guard<std::mutex> lock(shared_->mu);
        shared_->stats.transport_failures++;
      }
      DropConn(core);
      SleepBackoff(0, reconnects_used);
      ++reconnects_used;
      continue;
    }
    return wire_status.status;
  }
}

Status Client::CameraStart(const core::CameraId& camera) {
  io::BinaryWriter writer;
  writer.WriteString(camera);
  return Call(MsgType::kCameraStart, writer.buffer()).status();
}

Status Client::CameraTerminate(const core::CameraId& camera) {
  io::BinaryWriter writer;
  writer.WriteString(camera);
  return Call(MsgType::kCameraTerminate, writer.buffer()).status();
}

Status Client::IngestFrame(const core::FrameObservation& frame) {
  io::BinaryWriter writer;
  EncodeFrameObservation(&writer, frame);
  return Call(MsgType::kIngestFrame, writer.buffer()).status();
}

StatusOr<IngestBatchReply> Client::IngestBatch(
    const std::vector<core::FrameObservation>& frames) {
  io::BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(frames.size()));
  for (const auto& frame : frames) EncodeFrameObservation(&writer, frame);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kIngestBatch, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeIngestBatchReply(&reader);
}

Status Client::Flush() { return Call(MsgType::kFlush, "").status(); }

Status Client::Ping() {
  Status status = Call(MsgType::kPing, "").status();
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stats.pings_sent++;
  }
  return status;
}

StatusOr<uint64_t> Client::Subscribe(const SubscribeRequest& request,
                                     PushCallback callback) {
  auto ensured = EnsureConn();
  if (!ensured.ok()) return ensured.status();
  std::shared_ptr<ConnCore> core = *ensured;
  if (!core->v5) {
    return Status::FailedPrecondition(
        "Subscribe requires a protocol v5 connection (client pinned to v" +
        std::to_string(options_.protocol_version) + ")");
  }
  io::BinaryWriter writer;
  EncodeSubscribeRequest(&writer, request);
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stats.requests_sent++;
  }
  WireStatus wire_status;
  uint64_t correlation = 0;
  auto body = CallOnceV5(core, MsgType::kSubscribe, writer.buffer(),
                         &wire_status, &callback, &correlation);
  const Status failure = !body.ok() ? body.status() : wire_status.status;
  if (!failure.ok()) {
    std::lock_guard<std::mutex> lock(core->mu);
    core->push_callbacks.erase(correlation);
    return failure;
  }
  io::BinaryReader reader(std::move(*body));
  auto subscription_id = reader.ReadU64();
  if (!subscription_id.ok()) {
    std::lock_guard<std::mutex> lock(core->mu);
    core->push_callbacks.erase(correlation);
    return subscription_id.status();
  }
  {
    std::lock_guard<std::mutex> lock(core->mu);
    core->subscription_corr.emplace(*subscription_id, correlation);
  }
  return *subscription_id;
}

Status Client::Unsubscribe(uint64_t subscription_id) {
  std::shared_ptr<ConnCore> core = conn();
  if (core == nullptr || !core->v5) {
    return Status::FailedPrecondition(
        "no v5 connection (subscriptions are connection-scoped)");
  }
  io::BinaryWriter writer;
  writer.WriteU64(subscription_id);
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stats.requests_sent++;
  }
  WireStatus wire_status;
  auto body =
      CallOnceV5(core, MsgType::kUnsubscribe, writer.buffer(), &wire_status);
  if (!body.ok()) return body.status();
  if (!wire_status.status.ok()) return wire_status.status;
  std::lock_guard<std::mutex> lock(core->mu);
  auto it = core->subscription_corr.find(subscription_id);
  if (it != core->subscription_corr.end()) {
    core->push_callbacks.erase(it->second);
    core->subscription_corr.erase(it);
  }
  return Status::OK();
}

StatusOr<core::DirectQueryResult> Client::DirectQuery(
    const FeatureVector& feature, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  EncodeFeatureVector(&writer, feature);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kDirectQuery, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeDirectQueryResult(&reader);
}

StatusOr<core::ClusteringQueryResult> Client::ClusteringQuery(
    core::SvsId target_id, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  writer.WriteI64(target_id);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kClusteringQueryById, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeClusteringQueryResult(&reader);
}

StatusOr<core::ClusteringQueryResult> Client::ClusteringQuery(
    const FeatureMap& target, const core::QueryConstraints& constraints) {
  io::BinaryWriter writer;
  EncodeFeatureMap(&writer, target);
  EncodeQueryConstraints(&writer, constraints);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kClusteringQueryByMap, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeClusteringQueryResult(&reader);
}

StatusOr<core::SvsMetadata> Client::GetMetaData(core::SvsId id) {
  io::BinaryWriter writer;
  writer.WriteI64(id);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kGetMetaData, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeSvsMetadata(&reader);
}

StatusOr<MonitorStatsReply> Client::MonitorStats() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kMonitorStats, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeMonitorStats(&reader);
}

StatusOr<std::vector<CameraHealthEntry>> Client::CameraHealthReport() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kCameraHealth, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeCameraHealthReport(&reader);
}

StatusOr<core::QueryLoadStats> Client::QueryLoadStats() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kQueryLoadStats, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeQueryLoadStats(&reader);
}

StatusOr<AdminTuneReply> Client::AdminTune(const AdminTuneRequest& request) {
  io::BinaryWriter writer;
  EncodeAdminTuneRequest(&writer, request);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kAdminTune, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeAdminTuneReply(&reader);
}

StatusOr<WalShipReply> Client::WalShip(uint64_t from_lsn,
                                       uint32_t max_records,
                                       uint32_t wait_ms, uint64_t epoch) {
  io::BinaryWriter writer;
  EncodeWalShipRequest(&writer, {from_lsn, max_records, wait_ms, epoch});
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kWalShip, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeWalShipReply(&reader);
}

StatusOr<RepSyncReply> Client::RepSync(uint64_t since_version) {
  io::BinaryWriter writer;
  EncodeRepSyncRequest(&writer, {since_version});
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kRepSync, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeRepSyncReply(&reader);
}

StatusOr<FeatureMap> Client::SvsFeatureMap(core::SvsId id) {
  io::BinaryWriter writer;
  writer.WriteI64(id);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kSvsFeatureMap, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return DecodeFeatureMap(&reader);
}

StatusOr<CheckpointFetchReply> Client::CheckpointFetch() {
  VZ_ASSIGN_OR_RETURN(std::string body, Call(MsgType::kCheckpointFetch, ""));
  io::BinaryReader reader(std::move(body));
  return DecodeCheckpointFetchReply(&reader);
}

Status Client::SaveSnapshot(const std::string& path) {
  io::BinaryWriter writer;
  writer.WriteString(path);
  return Call(MsgType::kSnapshotSave, writer.buffer()).status();
}

StatusOr<uint64_t> Client::LoadSnapshot(const std::string& path) {
  io::BinaryWriter writer;
  writer.WriteString(path);
  VZ_ASSIGN_OR_RETURN(std::string body,
                      Call(MsgType::kSnapshotLoad, writer.buffer()));
  io::BinaryReader reader(std::move(body));
  return reader.ReadU64();
}

}  // namespace vz::net
