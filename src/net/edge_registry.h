#ifndef VZ_NET_EDGE_REGISTRY_H_
#define VZ_NET_EDGE_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/svs.h"
#include "net/wire.h"

namespace vz::net {

/// Address of one edge shard a coordinator fans out to.
struct EdgeEndpoint {
  std::string host;
  uint16_t port = 0;
};

/// Tuning of the per-edge health ladder (see DESIGN.md, "Sharded
/// deployment").
struct EdgeRegistryOptions {
  /// Consecutive RPC failures that evict an edge from fan-out
  /// (`kUnreachable`). The first failure already demotes it to `kDegraded`.
  uint64_t unreachable_after = 2;
  /// A reachable edge whose last successful rep-sync is older than this is
  /// reported (and still fanned out) as `kDegraded`: its representatives may
  /// no longer prune correctly. <= 0 disables staleness demotion.
  int64_t rep_staleness_bound_ms = 10'000;
  /// Probe cadence for unreachable edges: exponential from the floor to the
  /// cap, with subtractive jitter from a stream seeded by `seed ^ index` so
  /// a coordinator never probes every dead edge in lockstep.
  int64_t probe_backoff_floor_ms = 50;
  int64_t probe_backoff_cap_ms = 2'000;
  double probe_backoff_jitter = 0.25;
  uint64_t seed = 0x5EED;
};

/// The coordinator's shard-health state machine: one row per configured edge,
/// driven by RPC outcomes (`RecordSuccess` / `RecordFailure`), rep-sync
/// progress (`RecordRepSync`) and the passage of time (staleness).
///
/// The ladder (wire enum `ShardState`):
///
///   kHealthy      — answering RPCs, representatives fresh. Full fan-out
///                   member.
///   kDegraded     — still fanned out, flagged for operators: either errors
///                   were seen since the last success, the edge has never
///                   completed a rep-sync, or its last sync is older than
///                   the staleness bound.
///   kUnreachable  — `unreachable_after` consecutive failures: evicted from
///                   fan-out, probed with seeded exponential backoff until a
///                   probe succeeds, then re-admitted.
///
/// All time arguments are milliseconds on one monotonic clock of the
/// caller's choosing (the coordinator passes steady-clock ms; tests may pass
/// anything monotone) — the registry itself never reads a clock, which keeps
/// every transition deterministic and unit-testable.
///
/// Thread-safe; every method takes the internal lock.
class EdgeRegistry {
 public:
  /// Everything the coordinator knows about one edge, as one snapshot.
  struct EdgeSnapshot {
    EdgeEndpoint endpoint;
    size_t index = 0;
    ShardState state = ShardState::kDegraded;
    uint64_t consecutive_failures = 0;
    /// ms since the last successful rep-sync at the probe time; -1 = never.
    int64_t rep_staleness_ms = -1;
    uint64_t synced_version = 0;
    uint64_t rep_entries = 0;
    std::vector<core::CameraId> cameras;
  };

  EdgeRegistry(std::vector<EdgeEndpoint> edges,
               const EdgeRegistryOptions& options);

  EdgeRegistry(const EdgeRegistry&) = delete;
  EdgeRegistry& operator=(const EdgeRegistry&) = delete;

  size_t size() const { return edges_.size(); }
  EdgeEndpoint endpoint(size_t index) const;

  /// Any RPC against the edge completed. Resets the failure streak; an
  /// unreachable edge is re-admitted (its probe just succeeded).
  void RecordSuccess(size_t index, int64_t now_ms);

  /// Any RPC against the edge failed at the transport level. Crossing
  /// `unreachable_after` consecutive failures evicts the edge and schedules
  /// its next probe with backoff (each further failed probe doubles the
  /// delay up to the cap).
  void RecordFailure(size_t index, int64_t now_ms);

  /// A rep-sync round-trip succeeded: the edge's index version is `version`
  /// and the coordinator now holds `entries` representatives for it. Counts
  /// as a success and resets the staleness clock.
  void RecordRepSync(size_t index, uint64_t version, uint64_t entries,
                     int64_t now_ms);

  /// Installs the edge's camera inventory (from its CameraHealth report) —
  /// what a degraded answer lists as `excluded_cameras` when the shard is
  /// down.
  void RecordCameras(size_t index, std::vector<core::CameraId> cameras);

  /// Index version acknowledged by the last successful rep-sync (the
  /// `since_version` of the next one).
  uint64_t synced_version(size_t index) const;

  /// True when the edge participates in fan-out (not `kUnreachable`).
  bool Eligible(size_t index) const;

  /// True when an unreachable edge's probe backoff has elapsed. Always
  /// false for reachable edges (they are synced on the regular cadence, not
  /// probed).
  bool ProbeDue(size_t index, int64_t now_ms) const;

  /// The ladder state at `now_ms`, staleness applied.
  ShardState StateAt(size_t index, int64_t now_ms) const;

  /// Cameras known to live on the edge.
  std::vector<core::CameraId> CamerasOf(size_t index) const;

  EdgeSnapshot Snapshot(size_t index, int64_t now_ms) const;

  /// The Monitor reply's per-shard table, one row per edge in index order.
  std::vector<ShardHealthInfo> HealthTable(int64_t now_ms) const;

 private:
  struct Edge {
    EdgeEndpoint endpoint;
    /// RPC-outcome level only; staleness demotion is applied at read time
    /// (it depends on `now`, not on an event).
    bool unreachable = false;
    uint64_t consecutive_failures = 0;
    int64_t last_sync_ms = -1;
    uint64_t synced_version = 0;
    uint64_t rep_entries = 0;
    /// Earliest monotonic ms for the next probe while unreachable.
    int64_t next_probe_ms = 0;
    /// Failed probes since eviction (the backoff exponent).
    uint64_t probe_attempt = 0;
    std::vector<core::CameraId> cameras;
    Rng rng{0};
  };

  ShardState StateAtLocked(const Edge& edge, int64_t now_ms) const;
  void ScheduleProbeLocked(Edge* edge, int64_t now_ms);

  const EdgeRegistryOptions options_;
  mutable std::mutex mu_;
  std::vector<Edge> edges_;
};

}  // namespace vz::net

#endif  // VZ_NET_EDGE_REGISTRY_H_
