#ifndef VZ_NET_SUBSCRIPTION_H_
#define VZ_NET_SUBSCRIPTION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/svs.h"
#include "net/wire.h"

namespace vz::net {

/// Registry and delivery buffer of standing queries (see DESIGN.md,
/// "Standing queries and multiplexing").
///
/// The engine sits between two planes with incompatible latency contracts:
///
///  - The *ingest* plane calls `OnSegment` for every finalized segment,
///    typically under the serving layer's exclusive state lock. It must
///    never block on a subscriber: match evaluation is a handful of
///    Euclidean kernels against the new segment's feature map, and delivery
///    is an O(1) enqueue into a bounded per-subscription queue.
///  - The *delivery* plane (one server thread) waits on `WaitForWork`,
///    drains pending events per connection with `Drain`, and writes them to
///    sockets it has verified writable. A subscriber that stops reading
///    simply stops being drained; its queue saturates and drop-oldest kicks
///    in, recorded by a `PushKind::kGap` marker that is materialized as the
///    FIRST event of the next successful drain.
///
/// Delivery is therefore at-most-once with explicit loss accounting:
/// sequences are assigned at drain time, so as-delivered sequence numbers
/// are dense and a subscriber can prove it saw every frame the server sent.
///
/// Thread-safe; every public method takes the engine mutex. Subscription
/// state is connection-scoped: `DropConnection` reclaims everything a
/// closed or evicted connection registered.
class SubscriptionEngine {
 public:
  struct Options {
    /// Bounded per-subscription event queue; the oldest event is dropped
    /// (and counted into the next gap marker) when a new one arrives full.
    size_t queue_capacity = 256;
    /// Cap on events handed out per subscription per Drain call, so one
    /// hot subscription cannot monopolize a delivery round.
    size_t max_drain_per_subscription = 64;
  };

  struct Stats {
    uint64_t subscriptions_active = 0;
    uint64_t subscriptions_total = 0;
    uint64_t events_enqueued = 0;
    uint64_t events_dropped = 0;
    uint64_t gaps_recorded = 0;
    uint64_t matches_evaluated = 0;
  };

  /// One drained event bound for one connection.
  struct Delivery {
    uint64_t correlation = 0;  // the owning Subscribe RPC's correlation id
    PushEvent event;
  };

  SubscriptionEngine();
  explicit SubscriptionEngine(Options options);

  /// Registers a standing query owned by `conn_id`; pushes for it carry
  /// `correlation`. Returns the new subscription id (unique per engine).
  uint64_t Subscribe(uint64_t conn_id, uint64_t correlation,
                     SubscribeRequest spec);

  /// Cancels one subscription. kNotFound when the id is unknown or owned by
  /// a different connection (a connection may only cancel its own).
  Status Unsubscribe(uint64_t conn_id, uint64_t subscription_id);

  /// Reclaims every subscription owned by `conn_id` (connection closed or
  /// evicted). Idempotent.
  void DropConnection(uint64_t conn_id);

  /// Ingest-plane hook: evaluate `svs` against every match subscription and
  /// enqueue a `kMatch` event for each hit. Non-blocking (bounded queues
  /// drop oldest). Wakes the delivery plane when anything was enqueued.
  void OnSegment(const core::Svs& svs);

  /// Ingest-plane hook: the index version advanced; enqueue a
  /// `kIndexUpdate` for every stats subscription that has not yet seen
  /// `version`. Consecutive updates coalesce: a queue whose newest pending
  /// event is an index update is overwritten in place rather than grown.
  void OnIndexVersion(uint64_t version);

  /// Delivery-plane wait: blocks until any subscription has a pending event
  /// or `timeout_ms` elapses. Returns true when work may be pending.
  bool WaitForWork(int64_t timeout_ms);

  /// Connections that own at least one subscription with pending events.
  std::vector<uint64_t> ConnectionsWithPending();

  /// Drains up to `max_drain_per_subscription` events from each of
  /// `conn_id`'s subscriptions, assigning delivery sequences. A recorded
  /// gap is materialized as the first event of its subscription's batch.
  std::vector<Delivery> Drain(uint64_t conn_id);

  Stats stats() const;

 private:
  struct Subscription {
    uint64_t id = 0;
    uint64_t conn_id = 0;
    uint64_t correlation = 0;
    SubscribeRequest spec;
    std::deque<PushEvent> queue;
    /// Events dropped since the last materialized gap marker.
    uint64_t dropped_pending = 0;
    /// Next as-delivered sequence number (assigned at drain time).
    uint64_t next_sequence = 0;
    /// Newest index version already enqueued or delivered (stats subs).
    uint64_t seen_index_version = 0;
  };

  /// Enqueues under `mu_`, applying drop-oldest. Returns true if enqueued
  /// an event (as opposed to coalescing into an existing one).
  void EnqueueLocked(Subscription* sub, PushEvent event);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, Subscription> subscriptions_;
  /// conn id -> subscription ids owned by it (registration order).
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_conn_;
  Stats stats_;
};

}  // namespace vz::net

#endif  // VZ_NET_SUBSCRIPTION_H_
