#include "train/specialized_trainer.h"

#include <algorithm>
#include <unordered_map>

#include "common/math_util.h"
#include "sim/object_class.h"
#include "vector/feature_vector.h"

namespace vz::train {

BaseModelProfile BaseModelProfile::MobileNetV2() {
  return {"mobilenet_v2", 0.74, 0.20, 6.0};
}
BaseModelProfile BaseModelProfile::ResNet50() {
  return {"resnet50", 0.82, 0.15, 20.0};
}
BaseModelProfile BaseModelProfile::ResNet101() {
  return {"resnet101", 0.85, 0.13, 34.0};
}
BaseModelProfile BaseModelProfile::InceptionV3() {
  return {"inception_v3", 0.83, 0.14, 26.0};
}

SpecializedTrainer::SpecializedTrainer(const sim::GroundTruthLog* log)
    : log_(log) {}

namespace {

// Histogram of true object classes across the frames of the given SVSs.
std::unordered_map<int, size_t> ClassHistogram(
    const std::vector<const core::Svs*>& svss, const sim::GroundTruthLog* log) {
  std::unordered_map<int, size_t> hist;
  for (const core::Svs* svs : svss) {
    for (int64_t frame_id : svs->frame_ids()) {
      const sim::FrameTruth* truth = log->Lookup(frame_id);
      if (truth == nullptr) continue;
      for (int object_class : truth->object_classes) hist[object_class]++;
    }
  }
  return hist;
}

}  // namespace

TrainingSetAnalysis SpecializedTrainer::Analyze(
    const std::vector<const core::Svs*>& training,
    const std::vector<const core::Svs*>& target, Rng* rng) const {
  TrainingSetAnalysis analysis;

  // Trained classes: most frequent training classes covering >= 95% of
  // training object mass (Sec. 7.5).
  const auto train_hist = ClassHistogram(training, log_);
  size_t total_train = 0;
  for (const auto& [object_class, count] : train_hist) total_train += count;
  analysis.training_objects = total_train;
  std::vector<std::pair<size_t, int>> ranked;
  for (const auto& [object_class, count] : train_hist) {
    ranked.emplace_back(count, object_class);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  size_t covered = 0;
  for (const auto& [count, object_class] : ranked) {
    if (total_train > 0 &&
        static_cast<double>(covered) >= 0.95 * static_cast<double>(total_train)) {
      break;
    }
    analysis.trained_classes.push_back(object_class);
    covered += count;
  }

  // Class coverage of the target workload.
  const auto target_hist = ClassHistogram(target, log_);
  size_t total_target = 0;
  size_t matched = 0;
  for (const auto& [object_class, count] : target_hist) {
    total_target += count;
    if (std::find(analysis.trained_classes.begin(),
                  analysis.trained_classes.end(),
                  object_class) != analysis.trained_classes.end()) {
      matched += count;
    }
  }
  analysis.class_coverage =
      total_target == 0
          ? 0.0
          : static_cast<double>(matched) / static_cast<double>(total_target);

  // Visual coherence: mean pairwise distance over a sample of training
  // features, normalized by the sample's centroid norm. Tighter clusters
  // (same style, same appearance) score higher. Rows are raw pointers into
  // the maps' SoA buffers; all training SVSs of one application share the
  // extractor's dimension.
  std::vector<const float*> sample;
  size_t sample_dim = 0;
  for (const core::Svs* svs : training) {
    const FeatureMap& map = svs->features();
    if (map.empty()) continue;
    if (sample_dim == 0) sample_dim = map.dim();
    if (map.dim() != sample_dim) continue;
    for (size_t i = 0; i < map.size(); ++i) sample.push_back(map.row(i));
  }
  if (sample.size() > 200) {
    rng->Shuffle(&sample);
    sample.resize(200);
  }
  if (sample.size() >= 2) {
    double total_dist = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < sample.size(); ++i) {
      for (size_t j = i + 1; j < std::min(sample.size(), i + 20); ++j) {
        total_dist += EuclideanDistance(sample[i], sample[j], sample_dim);
        ++pairs;
      }
    }
    const double mean_dist =
        pairs > 0 ? total_dist / static_cast<double>(pairs) : 0.0;
    // Normalize by the *target* workload's intra-set spread, so a training
    // set that is tighter than the workload it serves scores higher; scales
    // of the training set itself must not cancel out.
    double target_dist = 0.0;
    size_t target_pairs = 0;
    for (const core::Svs* svs : target) {
      const FeatureMap& map = svs->features();
      const size_t limit = std::min<size_t>(map.size(), 40);
      for (size_t i = 0; i < limit; ++i) {
        for (size_t j = i + 1; j < limit; ++j) {
          target_dist += EuclideanDistance(map.row(i), map.row(j), map.dim());
          ++target_pairs;
        }
      }
    }
    const double scale =
        target_pairs > 0 ? target_dist / static_cast<double>(target_pairs)
                         : 1.0;
    const double spread = scale > 0.0 ? mean_dist / scale : mean_dist;
    analysis.visual_coherence = 1.0 / (1.0 + spread);
  }
  return analysis;
}

double SpecializedTrainer::PredictTop2Accuracy(
    const BaseModelProfile& model, const TrainingSetAnalysis& analysis) const {
  // Coverage carries most of the specialization gain; coherence the rest.
  const double match =
      0.7 * analysis.class_coverage + 0.3 * analysis.visual_coherence;
  return Clamp(model.base_top2_accuracy +
                   model.specialization_headroom * match,
               0.0, 0.995);
}

}  // namespace vz::train
