#ifndef VZ_TRAIN_SPECIALIZED_TRAINER_H_
#define VZ_TRAIN_SPECIALIZED_TRAINER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/svs.h"
#include "sim/ground_truth.h"

namespace vz::train {

/// A pre-trained base model being specialized (Sec. 7.5 uses MobileNetV2,
/// ResNet50, ResNet101 and InceptionV3, "which cover a range of accuracy and
/// inference time trade-off").
struct BaseModelProfile {
  std::string name;
  /// Top-2 accuracy before specialization, on the generic label space.
  double base_top2_accuracy = 0.80;
  /// Headroom: how much a perfectly matched training set can add.
  double specialization_headroom = 0.16;
  double inference_ms_per_frame = 20.0;

  static BaseModelProfile MobileNetV2();
  static BaseModelProfile ResNet50();
  static BaseModelProfile ResNet101();
  static BaseModelProfile InceptionV3();
};

/// How well a candidate training set matches a target workload. The paper's
/// Sec. 7.5 credits two factors for the clustering query's win: the selected
/// streams "share similar classes of objects and have objects within the
/// same class visually similar to one another" — measured here as class
/// coverage and visual coherence.
struct TrainingSetAnalysis {
  /// Classes that cover >= 95% of the training objects (the paper keeps only
  /// those and folds the rest into "Other").
  std::vector<int> trained_classes;
  /// Fraction of the target workload's object mass within trained classes.
  double class_coverage = 0.0;
  /// 1 / (1 + normalized mean intra-class feature spread) over the training
  /// features; higher when same-class objects look alike.
  double visual_coherence = 0.0;
  size_t training_objects = 0;
};

/// Simulates transfer-learning specialization (the paper retrains the first
/// and last three layers, after MCDNN [31]): the specialized model's top-2
/// accuracy is a monotone function of how well the training set covers and
/// visually matches the target workload. The experiment's conclusion depends
/// only on *which* SVSs were grouped together, which this preserves.
class SpecializedTrainer {
 public:
  /// `log` must outlive the trainer.
  explicit SpecializedTrainer(const sim::GroundTruthLog* log);

  /// Scores a training set (SVSs picked by a clustering query or by manual
  /// spatial labels) against a target workload.
  TrainingSetAnalysis Analyze(const std::vector<const core::Svs*>& training,
                              const std::vector<const core::Svs*>& target,
                              Rng* rng) const;

  /// Predicted top-2 accuracy of `model` specialized on the analyzed set.
  double PredictTop2Accuracy(const BaseModelProfile& model,
                             const TrainingSetAnalysis& analysis) const;

 private:
  const sim::GroundTruthLog* log_;
};

}  // namespace vz::train

#endif  // VZ_TRAIN_SPECIALIZED_TRAINER_H_
