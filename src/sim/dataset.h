#ifndef VZ_SIM_DATASET_H_
#define VZ_SIM_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "core/videozilla.h"
#include "sim/feature_extractor.h"
#include "sim/ground_truth.h"
#include "sim/object_detector.h"
#include "sim/scene.h"
#include "sim/video_source.h"

namespace vz::sim {

/// Parameters of the synthetic SVS dataset used by the microbenchmarks
/// (Sec. 7, "Datasets": "1000 SVSs. Each contains 500 1024-dimension feature
/// vectors ... 10 different types of feature vector distributions").
///
/// Defaults are scaled down so tests and benches run in seconds; benches
/// print the parameters they actually used (see EXPERIMENTS.md).
struct SyntheticDatasetOptions {
  size_t num_svs = 200;
  size_t vectors_per_svs = 100;
  size_t dim = 256;
  size_t num_types = 10;
  /// Norm of each type's mean vector.
  double type_scale = 10.0;
  /// Per-SVS jitter of the mean within its type.
  double svs_jitter = 1.0;
  /// Per-vector noise around the SVS mean.
  double noise_sigma = 1.5;
  /// When true, per-SVS vector counts are uniform in
  /// [min_vectors, max_vectors] (the Fig. 11 segmentation workload).
  bool variable_length = false;
  size_t min_vectors = 50;
  size_t max_vectors = 150;
  uint64_t seed = 2022;
};

/// The generated synthetic dataset.
struct SyntheticDataset {
  std::vector<FeatureMap> svss;
  /// Ground-truth type of each SVS.
  std::vector<int> labels;
};

/// Generates the multivariate-normal synthetic SVS dataset.
SyntheticDataset MakeSyntheticDataset(const SyntheticDatasetOptions& options);

/// Parameters of the real-world-like multi-camera deployment (Sec. 7,
/// "Datasets": 40 in-vehicle road-view cameras over 4 cities + highways,
/// 2 train-station livestreams, 2 harbor feeds; ~30 h total).
struct DeploymentOptions {
  size_t cities = 4;
  size_t downtown_per_city = 5;
  size_t highway_cameras = 20;
  size_t train_stations = 2;
  size_t harbors = 2;
  /// Cameras whose schedule drives downtown -> highway (the Sec. 7.1
  /// "combined case ... emulates a car driving from a downtown area to a
  /// highway").
  size_t combined_drives = 0;
  /// Per-camera feed length; scaled so the suite runs quickly. The paper's
  /// ~30 h / 44 cameras is ~40 min per feed.
  int64_t feed_duration_ms = 12LL * 60 * 1000;
  /// Key-frame-candidate rate.
  double fps = 0.5;
  size_t feature_dim = 64;
  ExtractorProfile extractor = ExtractorProfile::ResNet50();
  DetectorProfile detector;
  uint64_t seed = 7;
};

/// A fully wired simulated deployment: scenes, cameras with schedules,
/// detector, extractor, and the oracle log. Observations are materialized
/// once so multiple systems (Video-zilla and the baselines) replay exactly
/// the same frames.
class Deployment {
 public:
  explicit Deployment(const DeploymentOptions& options);

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// All frame observations, per camera in timestamp order (cameras
  /// concatenated). Generated lazily on first call.
  const std::vector<core::FrameObservation>& observations();

  /// Every camera id with its manual location tag (for the Spatula-style
  /// baseline) and style tag.
  struct CameraInfo {
    core::CameraId camera;
    std::string location_tag;
    std::string style_tag;
    std::string kind;  // "downtown" | "highway" | "train_station" | "harbor"
  };
  const std::vector<CameraInfo>& cameras() const { return cameras_; }

  GroundTruthLog& log() { return log_; }
  FeatureSpace& space() { return space_; }
  const FeatureExtractor& extractor() const { return *extractor_; }
  const SceneLibrary& scenes() const { return scenes_; }

  /// Feeds every observation into `system` (cameras must not be started
  /// yet), then flushes.
  Status IngestAll(core::VideoZilla* system);

  /// Splits the camera fleet over `shards` edges, round-robin in camera
  /// order, so a sharded deployment covers every camera exactly once and
  /// the assignment is a pure function of the deployment (every process —
  /// edges, coordinator, tests — derives the same split independently).
  std::vector<std::vector<core::CameraId>> PartitionCameras(
      size_t shards) const;

  /// `IngestAll` restricted to `cameras` (one shard of `PartitionCameras`):
  /// starts only those cameras, replays only their observations in the
  /// global timestamp order, then flushes.
  Status IngestShard(core::VideoZilla* system,
                     const std::vector<core::CameraId>& cameras);

  /// A query feature for an object of `object_class` — "an image containing
  /// the object of interest" (Sec. 5.2) passed through the extractor.
  FeatureVector MakeQueryFeature(int object_class, Rng* rng) const;

 private:
  void BuildCameras();

  DeploymentOptions options_;
  SceneLibrary scenes_;
  FeatureSpace space_;
  std::unique_ptr<FeatureExtractor> extractor_;
  ObjectDetector detector_;
  GroundTruthLog log_;
  Rng rng_;
  int64_t next_frame_id_ = 0;
  std::vector<CameraInfo> cameras_;
  std::vector<VideoSourceOptions> source_options_;
  std::vector<core::FrameObservation> observations_;
  bool generated_ = false;
};

}  // namespace vz::sim

#endif  // VZ_SIM_DATASET_H_
