#ifndef VZ_SIM_EVALUATION_H_
#define VZ_SIM_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "sim/ground_truth.h"
#include "sim/verifier.h"

namespace vz::sim {

/// Frame-level confusion counts for one query under one indexing scheme.
/// A frame is predicted positive iff the scheme examined it AND the heavy
/// model reported the class; unexamined frames are predicted negative —
/// which is how index pruning turns into false negatives (Sec. 7.4).
struct QueryEvaluation {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  size_t true_negatives = 0;

  double Precision() const {
    const size_t denom = true_positives + false_positives;
    return denom == 0 ? 1.0 : static_cast<double>(true_positives) / denom;
  }
  double Recall() const {
    const size_t denom = true_positives + false_negatives;
    return denom == 0 ? 1.0 : static_cast<double>(true_positives) / denom;
  }
  /// False positive rate: FP / (FP + TN).
  double Fpr() const {
    const size_t denom = false_positives + true_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(false_positives) / denom;
  }
  /// False negative rate: FN / (FN + TP) == 1 - recall.
  double Fnr() const { return 1.0 - Recall(); }
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  /// Accumulates another query's counts.
  QueryEvaluation& operator+=(const QueryEvaluation& other);
};

/// Scores a query: `examined_frames` is what the scheme sent to the heavy
/// model; `universe_frames` is every frame the query could in principle
/// return (all frames of all allowed cameras).
QueryEvaluation EvaluateFrameQuery(const std::vector<int64_t>& examined_frames,
                                   const std::vector<int64_t>& universe_frames,
                                   int object_class, const GroundTruthLog& log,
                                   const HeavyModel& model);

}  // namespace vz::sim

#endif  // VZ_SIM_EVALUATION_H_
