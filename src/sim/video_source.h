#ifndef VZ_SIM_VIDEO_SOURCE_H_
#define VZ_SIM_VIDEO_SOURCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/frame.h"
#include "sim/feature_extractor.h"
#include "sim/ground_truth.h"
#include "sim/object_detector.h"
#include "sim/scene.h"

namespace vz::sim {

/// One stretch of a camera's schedule during which a single scene is active.
struct SceneSegment {
  const Scene* scene = nullptr;
  int64_t duration_ms = 0;
};

/// Configuration of one simulated camera feed.
struct VideoSourceOptions {
  core::CameraId camera;
  /// Scene schedule played in order (loops are encoded by repetition).
  std::vector<SceneSegment> schedule;
  /// Generated (key-candidate) frames per second of video time. Real feeds
  /// run 30 fps but the indexing layer only sees key-frame candidates.
  double fps = 1.0;
  /// First frame timestamp.
  int64_t start_ms = 0;
  /// Style tag shared by visually similar cameras (e.g. the city for
  /// in-vehicle feeds); drives the Sec. 7.5 within-cluster similarity.
  std::string style_tag;
  /// Manual location label for the Spatula-style baseline ("cameras located
  /// in NYC", Sec. 7.4).
  std::string location_tag;
  /// Bytes per encoded frame (storage accounting; ~20 GB/day at 30 fps in
  /// the paper scales to this per key-frame candidate).
  size_t bytes_per_frame = 60'000;
};

/// A frame as generated, before detection — pure ground truth.
struct GroundTruthFrame {
  core::CameraId camera;
  int64_t frame_id = -1;
  int64_t timestamp_ms = 0;
  std::vector<int> object_classes;
  double deviation = 0.0;
  size_t bytes = 0;
  const Scene* scene = nullptr;
};

/// Generates a camera feed from a scene schedule.
class VideoSource {
 public:
  /// `next_frame_id` is a shared counter so frame ids are globally unique.
  VideoSource(const VideoSourceOptions& options, Rng rng,
              int64_t* next_frame_id);

  /// Next frame, or nullopt when the schedule is exhausted.
  std::optional<GroundTruthFrame> NextFrame();

  const VideoSourceOptions& options() const { return options_; }
  int64_t end_ms() const;

 private:
  VideoSourceOptions options_;
  Rng rng_;
  int64_t* next_frame_id_;
  int64_t now_ms_;
  size_t segment_index_ = 0;
  int64_t segment_elapsed_ms_ = 0;
};

/// The simulated edge stack in front of one camera: detector + feature
/// extractor, converting ground-truth frames into the `FrameObservation`s
/// Video-zilla ingests, while recording the oracle log.
class CameraSimulator {
 public:
  /// All pointers must outlive the simulator.
  CameraSimulator(VideoSource source, const ObjectDetector* detector,
                  const FeatureExtractor* extractor, GroundTruthLog* log,
                  Rng rng);

  /// Next observation, or nullopt at end of feed.
  std::optional<core::FrameObservation> NextObservation();

  const VideoSource& source() const { return source_; }

 private:
  VideoSource source_;
  const ObjectDetector* detector_;
  const FeatureExtractor* extractor_;
  GroundTruthLog* log_;
  Rng rng_;
};

}  // namespace vz::sim

#endif  // VZ_SIM_VIDEO_SOURCE_H_
