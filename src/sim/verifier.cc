#include "sim/verifier.h"

namespace vz::sim {

namespace {

// splitmix64 finalizer for a deterministic per-(frame, class) coin.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

HeavyModel::HeavyModel(double true_positive_rate, double false_positive_rate,
                       uint64_t seed)
    : tpr_(true_positive_rate), fpr_(false_positive_rate), seed_(seed) {}

bool HeavyModel::DetectsInFrame(int64_t frame_id, int object_class,
                                bool truly_present) const {
  const uint64_t h = Mix(static_cast<uint64_t>(frame_id) * 0x9E3779B97F4A7C15ULL ^
                         (static_cast<uint64_t>(object_class) << 32) ^ seed_);
  const double coin =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return truly_present ? coin < tpr_ : coin < fpr_;
}

SimObjectVerifier::SimObjectVerifier(const FeatureSpace* space,
                                     const GroundTruthLog* log,
                                     const HeavyModel* model,
                                     const GpuCostModel& cost)
    : space_(space), log_(log), model_(model), cost_(cost) {}

core::ObjectVerifier::Verification SimObjectVerifier::Verify(
    const core::Svs& svs, const FeatureVector& query_feature) {
  Verification v;
  const int query_class = space_->NearestPrototype(query_feature);
  v.frames_processed = svs.frame_ids().size();
  v.gpu_ms =
      static_cast<double>(v.frames_processed) * cost_.heavy_ms_per_frame;
  // The heavy model scans every frame (queries want all matching frames, so
  // no early exit — the GPU accounting reflects the full pass).
  for (int64_t frame_id : svs.frame_ids()) {
    const bool present = log_->FrameContains(frame_id, query_class);
    if (model_->DetectsInFrame(frame_id, query_class, present)) {
      v.contains = true;
    }
  }
  total_gpu_ms_.fetch_add(v.gpu_ms, std::memory_order_relaxed);
  return v;
}

}  // namespace vz::sim
