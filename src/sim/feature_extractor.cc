#include "sim/feature_extractor.h"

#include <cmath>

namespace vz::sim {

namespace {

ExtractorProfile BaseProfile(std::string name, double noise_sigma) {
  ExtractorProfile profile;
  profile.name = std::move(name);
  profile.noise_sigma = noise_sigma;
  profile.confusion_prob.assign(kNumObjectClasses, 0.0);
  profile.confusion_target.assign(kNumObjectClasses, kOtherClass);
  // Plausible visual confusions shared by all backbones (at different
  // strengths, scaled below).
  auto confuse = [&profile](int a, int b, double p) {
    profile.confusion_prob[static_cast<size_t>(a)] = p;
    profile.confusion_target[static_cast<size_t>(a)] = b;
  };
  confuse(kTruck, kBus, 0.03);
  confuse(kBus, kTruck, 0.03);
  confuse(kMotorcycle, kBicycle, 0.04);
  confuse(kFireHydrant, kTrafficLight, 0.03);
  confuse(kBench, kLuggage, 0.02);
  confuse(kStreetSign, kStopSign, 0.03);
  return profile;
}

}  // namespace

ExtractorProfile ExtractorProfile::ResNet50() {
  ExtractorProfile profile = BaseProfile("resnet50", 0.40);
  profile.hard_example_prob = 0.05;
  profile.gpu_ms_per_object = 0.55;
  return profile;
}

ExtractorProfile ExtractorProfile::ResNet34() {
  ExtractorProfile profile = BaseProfile("resnet34", 0.50);
  for (double& p : profile.confusion_prob) p *= 1.5;
  profile.hard_example_prob = 0.07;
  profile.gpu_ms_per_object = 0.35;
  return profile;
}

ExtractorProfile ExtractorProfile::Vgg16() {
  ExtractorProfile profile = BaseProfile("vgg16", 0.70);
  for (double& p : profile.confusion_prob) p *= 2.0;
  // Sec. 7.4: "VGG-16 classifies fire hydrants less accurately than it
  // classifies boats and trains, which propagates to inaccurate clustering".
  profile.confusion_prob[kFireHydrant] = 0.30;
  profile.confusion_target[kFireHydrant] = kTrafficLight;
  profile.hard_example_prob = 0.10;
  profile.gpu_ms_per_object = 0.50;
  return profile;
}

FeatureExtractor::FeatureExtractor(FeatureSpace* space,
                                   const ExtractorProfile& profile)
    : space_(space), profile_(profile) {
  if (profile_.confusion_prob.size() < kNumObjectClasses) {
    profile_.confusion_prob.resize(kNumObjectClasses, 0.0);
  }
  if (profile_.confusion_target.size() < kNumObjectClasses) {
    profile_.confusion_target.resize(kNumObjectClasses, kOtherClass);
  }
}

FeatureVector FeatureExtractor::ExtractClean(int true_class,
                                             const std::string& style_tag,
                                             Rng* rng) const {
  ExtractorProfile clean = profile_;
  clean.hard_example_prob = 0.0;
  return FeatureExtractor(space_, clean).Extract(true_class, style_tag, rng);
}

FeatureVector FeatureExtractor::Extract(int true_class,
                                        const std::string& style_tag,
                                        Rng* rng) const {
  int embedded_class = true_class;
  if (true_class >= 0 && true_class < kNumObjectClasses &&
      rng->Bernoulli(profile_.confusion_prob[static_cast<size_t>(true_class)])) {
    const int target =
        profile_.confusion_target[static_cast<size_t>(true_class)];
    if (target >= 0 && target < kNumObjectClasses) embedded_class = target;
  }
  FeatureVector feature = space_->Prototype(embedded_class);
  if (!style_tag.empty()) {
    feature.Add(space_->StyleOffset(style_tag));
  }
  double sigma = profile_.noise_sigma;
  if (rng->Bernoulli(profile_.hard_example_prob)) sigma *= 4.0;
  for (size_t i = 0; i < feature.dim(); ++i) {
    feature[i] += static_cast<float>(rng->Gaussian(0.0, sigma));
  }
  return feature;
}

double FeatureExtractor::OtherThreshold() const {
  // Expected noise norm is sigma * sqrt(dim); style offsets add a fixed
  // slack. Hard examples (4x noise) land well beyond this.
  const double noise_norm =
      profile_.noise_sigma * std::sqrt(static_cast<double>(space_->dim()));
  return profile_.other_threshold_factor * noise_norm +
         space_->options().style_scale;
}

std::vector<int> FeatureExtractor::TopKClasses(const FeatureVector& feature,
                                               size_t k) const {
  double nearest = 0.0;
  (void)space_->NearestPrototype(feature, &nearest);
  std::vector<int> ranked = space_->RankClasses(feature, k);
  if (nearest > OtherThreshold()) {
    // Unrecognizable object: "other" leads the ranking (Fig. 18's fourth
    // class).
    ranked.insert(ranked.begin(), kOtherClass);
    if (ranked.size() > k) ranked.resize(k);
  }
  return ranked;
}

int FeatureExtractor::Classify(const FeatureVector& feature) const {
  return TopKClasses(feature, 1).front();
}

}  // namespace vz::sim
