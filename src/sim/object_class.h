#ifndef VZ_SIM_OBJECT_CLASS_H_
#define VZ_SIM_OBJECT_CLASS_H_

#include <string_view>

namespace vz::sim {

/// COCO-style object classes used across the simulated deployment. The
/// evaluation queries (Sec. 7.4) target kFireHydrant, kBoat and kTrain —
/// objects present in some but not all feeds.
enum ObjectClass : int {
  kPerson = 0,
  kCar,
  kTruck,
  kBus,
  kTrain,
  kBoat,
  kFireHydrant,
  kTrafficLight,
  kBicycle,
  kMotorcycle,
  kDog,
  kLuggage,
  kStopSign,
  kBench,
  kBird,
  kStreetSign,
  kNumObjectClasses,
  /// Pseudo-class emitted by cheap classifiers for unrecognizable objects —
  /// the "other" class whose frames a top-k index must always re-examine
  /// (Fig. 18).
  kOtherClass = kNumObjectClasses,
};

/// Human-readable class name ("fire_hydrant", ...).
std::string_view ObjectClassName(int object_class);

}  // namespace vz::sim

#endif  // VZ_SIM_OBJECT_CLASS_H_
