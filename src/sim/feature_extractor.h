#ifndef VZ_SIM_FEATURE_EXTRACTOR_H_
#define VZ_SIM_FEATURE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/feature_space.h"
#include "sim/object_class.h"
#include "vector/feature_vector.h"

namespace vz::sim {

/// Error characteristics of one simulated CNN backbone. Video-zilla builds
/// one index per extractor model (Sec. 5.4, "Per-model indexing"); Fig. 19
/// compares ResNet-50, ResNet-34 and VGG-16.
struct ExtractorProfile {
  std::string name;
  /// Per-dimension Gaussian feature noise; larger = blurrier class clusters.
  double noise_sigma = 0.4;
  /// Per-class probability that the extractor embeds the object near a
  /// confusable class's prototype instead (indexed by ObjectClass).
  std::vector<double> confusion_prob;
  /// Per-class confusion target (indexed by ObjectClass).
  std::vector<int> confusion_target;
  /// Probability of a "hard example" whose noise is inflated 3x, typically
  /// landing in the cheap classifier's "other" bucket (Fig. 18).
  double hard_example_prob = 0.06;
  /// Cheap-classifier rejection threshold, as a multiple of the expected
  /// noise norm: features farther than this from every prototype classify
  /// as kOtherClass.
  double other_threshold_factor = 2.2;
  /// Simulated GPU cost of embedding one object at ingestion.
  double gpu_ms_per_object = 0.4;

  /// The paper's three evaluation extractors (Sec. 7.4). VGG-16 is noisier
  /// overall and specifically confuses fire hydrants (the FNR disparity of
  /// Fig. 19).
  static ExtractorProfile ResNet50();
  static ExtractorProfile ResNet34();
  static ExtractorProfile Vgg16();
};

/// Simulated CNN feature extractor: embeds ground-truth objects into the
/// shared `FeatureSpace` with model-specific noise and confusion, and
/// provides the cheap top-k classification used by the FOCUS-style baseline.
class FeatureExtractor {
 public:
  /// `space` must outlive the extractor.
  FeatureExtractor(FeatureSpace* space, const ExtractorProfile& profile);

  const ExtractorProfile& profile() const { return profile_; }
  FeatureSpace* space() const { return space_; }

  /// Embeds an object of `true_class` with optional style tag (camera group
  /// appearance). This is "running the CNN to the penultimate layer"
  /// (Sec. 3.1).
  FeatureVector Extract(int true_class, const std::string& style_tag,
                        Rng* rng) const;

  /// Like `Extract`, but never produces a hard example: models a clean,
  /// well-cropped query image (model confusion still applies, which is what
  /// degrades e.g. VGG-16 fire-hydrant queries in Fig. 19).
  FeatureVector ExtractClean(int true_class, const std::string& style_tag,
                             Rng* rng) const;

  /// Cheap softmax-style classification of an extracted feature: the k
  /// nearest prototypes, or {kOtherClass} first when nothing is close enough.
  std::vector<int> TopKClasses(const FeatureVector& feature, size_t k) const;

  /// Top-1 convenience (may be kOtherClass).
  int Classify(const FeatureVector& feature) const;

  /// Distance threshold that separates "recognized" from "other".
  double OtherThreshold() const;

 private:
  FeatureSpace* space_;
  ExtractorProfile profile_;
};

}  // namespace vz::sim

#endif  // VZ_SIM_FEATURE_EXTRACTOR_H_
