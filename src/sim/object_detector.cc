#include "sim/object_detector.h"

#include <algorithm>

namespace vz::sim {

ObjectDetector::ObjectDetector(const DetectorProfile& profile)
    : profile_(profile) {}

core::BoundingBox ObjectDetector::RandomBox(Rng* rng) const {
  core::BoundingBox box;
  const float w = static_cast<float>(
      rng->UniformDouble(0.05, 0.4) * profile_.frame_width);
  const float h = static_cast<float>(
      rng->UniformDouble(0.05, 0.4) * profile_.frame_height);
  box.left = static_cast<float>(
      rng->UniformDouble(0.0, profile_.frame_width - w));
  box.top = static_cast<float>(
      rng->UniformDouble(0.0, profile_.frame_height - h));
  box.right = box.left + w;
  box.bottom = box.top + h;
  return box;
}

std::vector<Detection> ObjectDetector::Detect(
    const std::vector<int>& true_classes, Rng* rng) const {
  std::vector<Detection> detections;
  detections.reserve(true_classes.size() + 1);
  for (int object_class : true_classes) {
    if (!rng->Bernoulli(profile_.recall)) continue;
    Detection d;
    d.object_class = object_class;
    d.box = RandomBox(rng);
    d.genuine = true;
    detections.push_back(d);
  }
  if (rng->Bernoulli(
          std::min(1.0, profile_.false_positives_per_frame))) {
    Detection ghost;
    ghost.object_class = rng->UniformInt(0, kNumObjectClasses - 1);
    ghost.box = RandomBox(rng);
    ghost.genuine = false;
    detections.push_back(ghost);
  }
  return detections;
}

}  // namespace vz::sim
