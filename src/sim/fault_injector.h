#ifndef VZ_SIM_FAULT_INJECTOR_H_
#define VZ_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/frame.h"

namespace vz::sim {

/// Inclusive simulated-time window during which a camera delivers nothing —
/// an encoder hang, a network partition, a dead uplink.
struct CameraStallWindow {
  core::CameraId camera;
  int64_t start_ms = 0;
  int64_t end_ms = 0;
};

/// A camera process dying and coming back mid-stream. On the first frame at
/// or after `at_ms` the restarted pipeline re-delivers its last pre-restart
/// frame (recovery code replaying the tail of its upload queue) before
/// resuming the live feed.
struct CameraRestart {
  core::CameraId camera;
  int64_t at_ms = 0;
};

/// Configuration of the deterministic fault injector.
///
/// Per-frame faults are mutually exclusive: a single uniform roll against
/// cumulative probability thresholds selects at most ONE fault per frame, so
/// every ledger counter maps 1:1 onto an ingestion-side counter and tests can
/// assert exact equality instead of bounds. The probabilities must therefore
/// sum to at most 1.
struct FaultInjectorOptions {
  uint64_t seed = 42;
  /// Frame is silently lost in transport.
  double drop_probability = 0.0;
  /// Frame is delivered twice (same timestamp and frame id).
  double duplicate_probability = 0.0;
  /// Frame is held back and delivered after the camera's next frame.
  double reorder_probability = 0.0;
  /// One object feature gets a NaN component.
  double nan_probability = 0.0;
  /// One object feature gets an Inf component.
  double inf_probability = 0.0;
  /// One object feature is truncated to the wrong dimension.
  double dim_mismatch_probability = 0.0;
  /// The detector returns nothing for this frame (objects cleared).
  double detector_dropout_probability = 0.0;
  /// Scheduled per-camera outage windows (checked before the fault roll).
  std::vector<CameraStallWindow> stalls;
  /// Scheduled mid-stream camera restarts.
  std::vector<CameraRestart> restarts;
};

/// Deterministic fault injector for ingestion robustness tests.
///
/// Sits between a frame source (e.g. `Deployment::observations()`) and
/// `VideoZilla::IngestFrame`: every observation passes through `Transform`,
/// which returns the (possibly empty, possibly multi-element) list of frames
/// actually delivered. The injector keeps an exact ledger of every fault it
/// applied, so a test can compare the ledger against the system's
/// `IngestStats` counter for counter:
///
///   drops/stalls     -> frames that never reach `IngestFrame`
///   duplicates,      -> `duplicates_dropped`
///    restart replays
///   reorders         -> `out_of_order_dropped` (within the tolerance window)
///   NaN/Inf/dim      -> `objects_quarantined`
///   detector dropout -> accepted with zero objects (no counter)
///
/// Same seed + same input stream => bit-identical fault sequence.
class FaultInjector {
 public:
  /// Exact record of every fault applied. All counters are in frames except
  /// the `objects_*` ones, which count corrupted objects.
  struct Ledger {
    /// Frames offered to the injector.
    uint64_t frames_seen = 0;
    /// Frames emitted towards ingestion (includes duplicates and replays).
    uint64_t frames_delivered = 0;
    uint64_t frames_dropped = 0;
    uint64_t frames_stalled = 0;
    /// Extra copies emitted by the duplicate fault.
    uint64_t frames_duplicated = 0;
    /// Extra copies emitted by post-restart replay.
    uint64_t restart_replays = 0;
    /// Frames emitted behind a newer frame of the same camera. Counted at
    /// the late emission, so this equals the receiver's out-of-order count.
    uint64_t frames_reordered = 0;
    uint64_t detector_dropouts = 0;
    uint64_t objects_nan = 0;
    uint64_t objects_inf = 0;
    uint64_t objects_dim_mismatch = 0;
  };

  explicit FaultInjector(const FaultInjectorOptions& options);

  /// Applies at most one fault to `frame` and returns the frames to deliver,
  /// in delivery order. May return zero frames (drop/stall/held for
  /// reordering) or more than one (duplicate, restart replay, or a
  /// previously held frame released behind this one).
  std::vector<core::FrameObservation> Transform(
      const core::FrameObservation& frame);

  /// Releases frames still held for reordering at end of stream. Each
  /// camera's leftover is the newest frame it has seen, so these arrive in
  /// order and are NOT counted as reordered.
  std::vector<core::FrameObservation> Drain();

  const Ledger& ledger() const { return ledger_; }

  /// Truncates an in-memory buffer to its first `keep_bytes` bytes — a torn
  /// write or a connection cut mid-message. Fails if the buffer is shorter
  /// than `keep_bytes`. The in-memory form exists so the network wire-frame
  /// fuzzer can corrupt encoded frames without a filesystem round trip.
  static Status Truncate(std::string* data, size_t keep_bytes);

  /// Flips `num_flips` deterministically chosen distinct bits of an
  /// in-memory buffer (capped at the buffer's bit count) — silent
  /// corruption in transit or at rest that can never cancel itself out.
  /// Fails on an empty buffer.
  static Status FlipBits(std::string* data, size_t num_flips, uint64_t seed);

  /// Overwrites `path` with its own first `keep_bytes` bytes — a torn write
  /// (power loss mid-snapshot). Fails if the file is shorter than
  /// `keep_bytes`.
  static Status TruncateFile(const std::string& path, size_t keep_bytes);

  /// Flips `num_flips` deterministically chosen bits in `path` — silent
  /// media corruption. Fails on an empty or unreadable file.
  static Status FlipBits(const std::string& path, size_t num_flips,
                         uint64_t seed);

  /// Drops the last `drop_bytes` bytes of `path` — a torn tail: the crash
  /// landed mid-append and the file ends inside a record. Fails if the file
  /// is shorter than `drop_bytes`. (Equivalent to `TruncateFile(path,
  /// size - drop_bytes)` but phrased the way WAL salvage tests reason:
  /// damage is measured from the tail.)
  static Status TruncateTail(const std::string& path, size_t drop_bytes);

  /// Emulates a partial fsync (short write): the file keeps its length but
  /// its last `zero_bytes` bytes are replaced with zeros — blocks the
  /// filesystem allocated whose data never reached the platter. Unlike a
  /// torn tail, the reader sees a full-length file whose suffix is garbage,
  /// so salvage must reject the zeroed region structurally, not by EOF.
  static Status ShortWriteTail(const std::string& path, size_t zero_bytes);

 private:
  enum class Fault {
    kNone,
    kDrop,
    kDuplicate,
    kReorder,
    kNan,
    kInf,
    kDimMismatch,
    kDetectorDropout,
  };

  /// One uniform roll mapped through the cumulative fault thresholds.
  Fault Roll();
  bool InStall(const core::FrameObservation& frame) const;
  /// Corrupts one (deterministically chosen) object of `frame` in place.
  void CorruptObject(core::FrameObservation* frame, Fault fault);

  FaultInjectorOptions options_;
  Rng rng_;
  Ledger ledger_;
  /// Frame held back per camera by the reorder fault.
  std::unordered_map<core::CameraId, core::FrameObservation> held_;
  /// Last frame delivered per camera (replayed after a restart).
  std::unordered_map<core::CameraId, core::FrameObservation> last_delivered_;
  /// Restarts not yet triggered, per camera.
  std::unordered_map<core::CameraId, std::vector<int64_t>> pending_restarts_;
};

}  // namespace vz::sim

#endif  // VZ_SIM_FAULT_INJECTOR_H_
