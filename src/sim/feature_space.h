#ifndef VZ_SIM_FEATURE_SPACE_H_
#define VZ_SIM_FEATURE_SPACE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/object_class.h"
#include "vector/feature_vector.h"

namespace vz::sim {

/// Parameters of the synthetic CNN feature space.
struct FeatureSpaceOptions {
  /// Feature dimensionality (the paper's extractors emit 512-4096-d
  /// penultimate activations; microbenchmarks use 1024-d, end-to-end runs a
  /// smaller dim for speed — the geometry, not the dimension, carries the
  /// behaviour).
  size_t dim = 64;
  /// Norm of each class prototype; controls inter-class separation.
  double prototype_scale = 10.0;
  /// Norm of per-style offsets (city / camera-group appearance variation),
  /// giving visually-similar-within-cluster structure (Sec. 7.5).
  double style_scale = 2.0;
  /// Seed fixing the prototype geometry.
  uint64_t seed = 99;
};

/// The latent geometry every simulated CNN shares: one prototype vector per
/// object class, plus deterministic style offsets. A real penultimate-layer
/// embedding clusters same-class objects around class modes with intra-class
/// spread — exactly the structure reproduced here, which is all the OMD/OCD
/// machinery observes.
class FeatureSpace {
 public:
  explicit FeatureSpace(const FeatureSpaceOptions& options);

  size_t dim() const { return options_.dim; }
  const FeatureSpaceOptions& options() const { return options_; }

  /// Prototype of `object_class` (valid for 0 <= c < kNumObjectClasses).
  const FeatureVector& Prototype(int object_class) const {
    return prototypes_[static_cast<size_t>(object_class)];
  }

  /// Deterministic style offset for a tag like "nyc" or "harbor-2". Cached.
  const FeatureVector& StyleOffset(const std::string& tag);

  /// Class whose prototype is nearest to `feature`, with the distance in
  /// `*distance` when non-null.
  int NearestPrototype(const FeatureVector& feature,
                       double* distance = nullptr) const;

  /// Classes ranked by prototype distance (ascending), truncated to `k`.
  std::vector<int> RankClasses(const FeatureVector& feature, size_t k) const;

 private:
  FeatureSpaceOptions options_;
  std::vector<FeatureVector> prototypes_;
  std::unordered_map<std::string, FeatureVector> styles_;
};

}  // namespace vz::sim

#endif  // VZ_SIM_FEATURE_SPACE_H_
