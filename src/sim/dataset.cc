#include "sim/dataset.h"

#include <algorithm>
#include <string>
#include <utility>

namespace vz::sim {

SyntheticDataset MakeSyntheticDataset(const SyntheticDatasetOptions& options) {
  SyntheticDataset dataset;
  Rng rng(options.seed);

  // Type means: random directions at `type_scale`.
  std::vector<FeatureVector> type_means;
  type_means.reserve(options.num_types);
  for (size_t t = 0; t < options.num_types; ++t) {
    FeatureVector mean(options.dim);
    for (size_t i = 0; i < options.dim; ++i) {
      mean[i] = static_cast<float>(rng.Gaussian());
    }
    mean.Normalize();
    mean.Scale(options.type_scale);
    type_means.push_back(std::move(mean));
  }

  dataset.svss.reserve(options.num_svs);
  dataset.labels.reserve(options.num_svs);
  for (size_t s = 0; s < options.num_svs; ++s) {
    const int type = static_cast<int>(s % options.num_types);
    // Per-SVS mean: the type mean plus a small jitter.
    FeatureVector svs_mean = type_means[static_cast<size_t>(type)];
    for (size_t i = 0; i < options.dim; ++i) {
      svs_mean[i] += static_cast<float>(rng.Gaussian(0.0, options.svs_jitter));
    }
    size_t count = options.vectors_per_svs;
    if (options.variable_length) {
      count = static_cast<size_t>(rng.UniformInt(
          static_cast<int>(options.min_vectors),
          static_cast<int>(options.max_vectors)));
    }
    FeatureMap map;
    for (size_t v = 0; v < count; ++v) {
      FeatureVector vec = svs_mean;
      for (size_t i = 0; i < options.dim; ++i) {
        vec[i] += static_cast<float>(rng.Gaussian(0.0, options.noise_sigma));
      }
      (void)map.Add(std::move(vec), 1.0);
    }
    dataset.svss.push_back(std::move(map));
    dataset.labels.push_back(type);
  }
  return dataset;
}

Deployment::Deployment(const DeploymentOptions& options)
    : options_(options),
      space_(FeatureSpaceOptions{options.feature_dim, 10.0, 2.0,
                                 options.seed ^ 0xFEED}),
      detector_(options.detector),
      rng_(options.seed) {
  extractor_ = std::make_unique<FeatureExtractor>(&space_, options.extractor);
  BuildCameras();
}

void Deployment::BuildCameras() {
  const char* kCityNames[] = {"nyc", "london", "chicago", "la",
                              "paris", "tokyo", "berlin", "rome"};
  // Downtown in-vehicle cameras: 5 per city, style/location = the city.
  for (size_t c = 0; c < options_.cities; ++c) {
    const std::string city = kCityNames[c % 8];
    for (size_t i = 0; i < options_.downtown_per_city; ++i) {
      VideoSourceOptions src;
      src.camera = "downtown-" + city + "-" + std::to_string(i);
      // Mostly commercial blocks with occasional residential stretches, so
      // hydrant content is sparse at the *stream* level (Sec. 7.6 measures
      // only ~1.5% of video time in hydrant-carrying SVSs).
      const int64_t res = options_.feed_duration_ms / 8;
      const int64_t com = options_.feed_duration_ms * 3 / 8;
      src.schedule = {{&scenes_.downtown_commercial(), com},
                      {&scenes_.downtown_residential(), res},
                      {&scenes_.downtown_commercial(), com},
                      {&scenes_.downtown_residential(), res}};
      src.fps = options_.fps;
      src.style_tag = city;
      src.location_tag = city;
      source_options_.push_back(src);
      cameras_.push_back({src.camera, src.location_tag, src.style_tag,
                          "downtown"});
    }
  }
  // Highway in-vehicle cameras across regions.
  for (size_t i = 0; i < options_.highway_cameras; ++i) {
    VideoSourceOptions src;
    src.camera = "highway-" + std::to_string(i);
    src.schedule = {{&scenes_.highway(), options_.feed_duration_ms}};
    src.fps = options_.fps;
    src.style_tag = "highway";
    src.location_tag = "hw-region-" + std::to_string(i % 4);
    source_options_.push_back(src);
    cameras_.push_back({src.camera, src.location_tag, src.style_tag,
                        "highway"});
  }
  // Train stations: empty platform interleaved with trains passing.
  for (size_t i = 0; i < options_.train_stations; ++i) {
    VideoSourceOptions src;
    src.camera = "station-" + std::to_string(i);
    const int64_t cycle_empty = options_.feed_duration_ms / 6;
    const int64_t cycle_train = options_.feed_duration_ms / 12;
    for (int rep = 0; rep < 4; ++rep) {
      src.schedule.push_back({&scenes_.train_station_empty(), cycle_empty});
      src.schedule.push_back({&scenes_.train_station_train(), cycle_train});
    }
    src.fps = options_.fps;
    src.style_tag = "station-" + std::to_string(i);
    src.location_tag = "station-" + std::to_string(i);
    source_options_.push_back(src);
    cameras_.push_back({src.camera, src.location_tag, src.style_tag,
                        "train_station"});
  }
  // Combined drives: downtown then highway within one feed (Sec. 7.1).
  for (size_t i = 0; i < options_.combined_drives; ++i) {
    VideoSourceOptions src;
    src.camera = "combined-" + std::to_string(i);
    src.schedule = {{&scenes_.downtown(), options_.feed_duration_ms / 2},
                    {&scenes_.highway(), options_.feed_duration_ms / 2}};
    src.fps = options_.fps;
    src.style_tag = kCityNames[i % 8];
    src.location_tag = "combined-" + std::to_string(i);
    source_options_.push_back(src);
    cameras_.push_back({src.camera, src.location_tag, src.style_tag,
                        "combined"});
  }
  // Harbors: busy and quiet stretches.
  for (size_t i = 0; i < options_.harbors; ++i) {
    VideoSourceOptions src;
    src.camera = "harbor-" + std::to_string(i);
    const int64_t half = options_.feed_duration_ms / 6;
    for (int rep = 0; rep < 3; ++rep) {
      src.schedule.push_back({&scenes_.harbor_busy(), half});
      src.schedule.push_back({&scenes_.harbor_quiet(), half});
    }
    src.fps = options_.fps;
    src.style_tag = "harbor";
    src.location_tag = "harbor-" + std::to_string(i);
    source_options_.push_back(src);
    cameras_.push_back({src.camera, src.location_tag, src.style_tag,
                        "harbor"});
  }
}

const std::vector<core::FrameObservation>& Deployment::observations() {
  if (generated_) return observations_;
  generated_ = true;
  for (const VideoSourceOptions& src : source_options_) {
    VideoSource source(src, rng_.Fork(), &next_frame_id_);
    CameraSimulator sim(std::move(source), &detector_, extractor_.get(),
                        &log_, rng_.Fork());
    for (;;) {
      auto obs = sim.NextObservation();
      if (!obs.has_value()) break;
      observations_.push_back(std::move(*obs));
    }
  }
  return observations_;
}

Status Deployment::IngestAll(core::VideoZilla* system) {
  for (const CameraInfo& info : cameras_) {
    VZ_RETURN_IF_ERROR(system->CameraStart(info.camera));
  }
  for (const core::FrameObservation& obs : observations()) {
    VZ_RETURN_IF_ERROR(system->IngestFrame(obs));
  }
  return system->Flush();
}

std::vector<std::vector<core::CameraId>> Deployment::PartitionCameras(
    size_t shards) const {
  std::vector<std::vector<core::CameraId>> parts(std::max<size_t>(1, shards));
  for (size_t i = 0; i < cameras_.size(); ++i) {
    parts[i % parts.size()].push_back(cameras_[i].camera);
  }
  return parts;
}

Status Deployment::IngestShard(core::VideoZilla* system,
                               const std::vector<core::CameraId>& cameras) {
  for (const core::CameraId& camera : cameras) {
    VZ_RETURN_IF_ERROR(system->CameraStart(camera));
  }
  for (const core::FrameObservation& obs : observations()) {
    if (std::find(cameras.begin(), cameras.end(), obs.camera) ==
        cameras.end()) {
      continue;
    }
    VZ_RETURN_IF_ERROR(system->IngestFrame(obs));
  }
  return system->Flush();
}

FeatureVector Deployment::MakeQueryFeature(int object_class, Rng* rng) const {
  // Query images are deliberate, well-cropped examples of the object of
  // interest; extractor confusion still applies (Sec. 7.4's fire-hydrant /
  // VGG-16 effect) but degenerate hard examples do not.
  return extractor_->ExtractClean(object_class, /*style_tag=*/"", rng);
}

}  // namespace vz::sim
