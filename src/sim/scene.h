#ifndef VZ_SIM_SCENE_H_
#define VZ_SIM_SCENE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/object_class.h"

namespace vz::sim {

/// A scene type: the implicit "collective semantics" an SVS should capture
/// (Sec. 1/2: parking lot, downtown, school, train passing, empty tracks...).
/// A scene is a class distribution plus an object density; everything a
/// camera sees while a scene is active is drawn from it.
struct Scene {
  std::string name;
  /// P(class) for a generated object; indexed by ObjectClass, must have
  /// kNumObjectClasses entries (zeros allowed).
  std::vector<double> class_distribution;
  /// Mean number of objects per generated frame (Poisson-ish).
  double objects_per_frame = 3.0;
  /// Mean pixel deviation between consecutive frames in [0, 1]; moving
  /// cameras and busy scenes deviate more.
  double frame_deviation = 0.2;

  /// Samples one object class from the distribution.
  int SampleClass(Rng* rng) const;
  /// Samples a frame's object count.
  size_t SampleObjectCount(Rng* rng) const;
};

/// The scene library used by the real-world-like dataset (Sec. 7,
/// "Datasets"): downtown and highway road views (in-vehicle cameras), train
/// stations in both states, harbors, and a parking lot (VIRAT-style, Fig. 4).
class SceneLibrary {
 public:
  SceneLibrary();

  const Scene& downtown() const { return downtown_; }
  /// Residential blocks: fire hydrants present (the paper's rare query
  /// object appears in *some* streams, not uniformly).
  const Scene& downtown_residential() const { return downtown_residential_; }
  /// Commercial blocks: hydrant-free downtown traffic.
  const Scene& downtown_commercial() const { return downtown_commercial_; }
  const Scene& highway() const { return highway_; }
  const Scene& train_station_train() const { return train_station_train_; }
  const Scene& train_station_empty() const { return train_station_empty_; }
  const Scene& harbor_busy() const { return harbor_busy_; }
  const Scene& harbor_quiet() const { return harbor_quiet_; }
  const Scene& parking_lot() const { return parking_lot_; }

 private:
  Scene downtown_;
  Scene downtown_residential_;
  Scene downtown_commercial_;
  Scene highway_;
  Scene train_station_train_;
  Scene train_station_empty_;
  Scene harbor_busy_;
  Scene harbor_quiet_;
  Scene parking_lot_;
};

}  // namespace vz::sim

#endif  // VZ_SIM_SCENE_H_
