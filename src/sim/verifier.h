#ifndef VZ_SIM_VERIFIER_H_
#define VZ_SIM_VERIFIER_H_

#include <atomic>
#include <cstdint>

#include "core/query.h"
#include "sim/feature_space.h"
#include "sim/ground_truth.h"

namespace vz::sim {

/// Simulated GPU cost model (replaces the RTX 2070/2080Ti of Sec. 7).
/// Figs. 15-17 compare *how many frames* each indexing scheme pushes through
/// the heavy ground-truth CNN; these constants convert frame counts into the
/// paper's GPU-time axis.
struct GpuCostModel {
  /// Heavy (ground-truth, YOLO-v2-class) model per frame.
  double heavy_ms_per_frame = 35.0;
  /// Cheap ingestion model per object.
  double cheap_ms_per_object = 0.4;
};

/// The heavy "ground truth" CNN (YOLO-v2 in Sec. 7.4): highly accurate but
/// not perfect, which is where every scheme's residual FPR/FNR comes from
/// (Fig. 19's "classifier only" series is this model run over everything).
///
/// Verdicts are a deterministic hash of (frame, class, seed), so every
/// indexing scheme that examines the same frame sees the same verdict —
/// exactly as one physical CNN would behave.
class HeavyModel {
 public:
  explicit HeavyModel(double true_positive_rate = 0.97,
                      double false_positive_rate = 0.05, uint64_t seed = 31);

  /// Would the heavy model report `object_class` in this frame?
  bool DetectsInFrame(int64_t frame_id, int object_class,
                      bool truly_present) const;

  double true_positive_rate() const { return tpr_; }
  double false_positive_rate() const { return fpr_; }

 private:
  double tpr_;
  double fpr_;
  uint64_t seed_;
};

/// The heavy-model verification stage of a direct query: resolves the query
/// feature to its intended class (nearest prototype), runs the heavy model
/// over the SVS's frames, and charges GPU time per frame processed.
class SimObjectVerifier : public core::ObjectVerifier {
 public:
  /// All pointers must outlive the verifier.
  SimObjectVerifier(const FeatureSpace* space, const GroundTruthLog* log,
                    const HeavyModel* model,
                    const GpuCostModel& cost = GpuCostModel());

  /// Thread-safe: verdicts are pure functions of (frame, class, seed) and
  /// the cumulative GPU counter is atomic, so concurrent calls from the
  /// parallel query path are safe and per-call results are unaffected.
  Verification Verify(const core::Svs& svs,
                      const FeatureVector& query_feature) override;

  /// Total GPU milliseconds charged so far across all verifications. Under
  /// concurrent verification the accumulation order (and hence the last
  /// floating-point bits) may vary; per-query totals reported by
  /// `DirectQueryResult` are aggregated deterministically instead.
  double total_gpu_ms() const {
    return total_gpu_ms_.load(std::memory_order_relaxed);
  }
  void ResetTotals() { total_gpu_ms_.store(0.0, std::memory_order_relaxed); }

 private:
  const FeatureSpace* space_;
  const GroundTruthLog* log_;
  const HeavyModel* model_;
  GpuCostModel cost_;
  std::atomic<double> total_gpu_ms_{0.0};
};

}  // namespace vz::sim

#endif  // VZ_SIM_VERIFIER_H_
