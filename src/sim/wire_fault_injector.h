#ifndef VZ_SIM_WIRE_FAULT_INJECTOR_H_
#define VZ_SIM_WIRE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/rng.h"

namespace vz::sim {

/// Configuration of the deterministic byte-stream fault injector that powers
/// the chaos proxy (`net::ChaosProxy`).
///
/// Like `FaultInjectorOptions`, per-chunk faults are mutually exclusive: a
/// single uniform roll against cumulative probability thresholds picks at
/// most ONE fault per relayed chunk, so every ledger counter is exact and
/// chaos tests can reason about fault totals instead of bounds. The
/// probabilities must sum to at most 1.
struct WireFaultInjectorOptions {
  uint64_t seed = 42;
  /// Chunk is forwarded after a pause — transient congestion. Stacks with
  /// nothing else (it is its own roll outcome).
  double delay_probability = 0.0;
  int64_t delay_ms = 2;
  /// Chunk is forwarded in two separate writes — TCP segmentation. The
  /// receiver must reassemble; a correct framing layer never notices.
  double split_probability = 0.0;
  /// Chunk loses its tail and the connection is reset right after — a torn
  /// frame followed by disconnect. The receiver sees kDataLoss.
  double truncate_probability = 0.0;
  /// A few bits of the chunk flip in transit — the CRC must catch it.
  double bitflip_probability = 0.0;
  size_t bitflip_count = 1;
  /// This chunk and everything after it in this direction is silently
  /// swallowed while the connection stays open — a mute peer. Only an I/O
  /// deadline gets the receiver out.
  double blackhole_probability = 0.0;
  /// The connection is hard-closed without forwarding the chunk.
  double reset_probability = 0.0;
};

/// Deterministic byte-level fault injector for a single relay direction.
///
/// `Apply` takes one chunk about to be forwarded, may corrupt it in place,
/// and describes what the relay should do with it. Not thread-safe: each
/// relay direction owns its own injector (seeded via `Fork` off a master
/// generator), which keeps multi-connection chaos runs deterministic per
/// direction regardless of thread scheduling.
///
/// Same seed + same chunk sequence => bit-identical fault sequence.
class WireFaultInjector {
 public:
  /// What the relay must do with the (possibly modified) chunk.
  struct Action {
    /// Sleep this long before forwarding.
    int64_t delay_ms = 0;
    /// Forward [0, split_at) and [split_at, size) as two writes; 0 = one
    /// write.
    size_t split_at = 0;
    /// Swallow the chunk (and, because the fault is sticky, every later
    /// chunk in this direction).
    bool blackhole = false;
    /// Hard-close the connection after forwarding whatever is left of the
    /// chunk (which a truncation may have emptied of its tail).
    bool reset = false;
  };

  /// Exact record of every fault applied (chunks, not bytes).
  struct Ledger {
    uint64_t chunks_seen = 0;
    uint64_t chunks_clean = 0;
    uint64_t delays = 0;
    uint64_t splits = 0;
    uint64_t truncations = 0;
    uint64_t bitflips = 0;
    uint64_t blackholes = 0;
    uint64_t resets = 0;
    /// Chunks swallowed because the direction was already blackholed
    /// (not new faults; excluded from the roll).
    uint64_t blackholed_chunks = 0;

    Ledger& operator+=(const Ledger& other);
  };

  explicit WireFaultInjector(const WireFaultInjectorOptions& options);

  /// Rolls at most one fault for `chunk`, corrupting it in place when the
  /// fault calls for it. Once a blackhole triggered, every later call
  /// reports `blackhole` without rolling.
  Action Apply(std::string* chunk);

  /// Child injector with an independent deterministic stream — one per
  /// relay direction.
  WireFaultInjector Fork();

  const Ledger& ledger() const { return ledger_; }

 private:
  WireFaultInjectorOptions options_;
  Rng rng_;
  Ledger ledger_;
  bool blackholed_ = false;
};

}  // namespace vz::sim

#endif  // VZ_SIM_WIRE_FAULT_INJECTOR_H_
