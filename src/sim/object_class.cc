#include "sim/object_class.h"

namespace vz::sim {

std::string_view ObjectClassName(int object_class) {
  switch (object_class) {
    case kPerson:
      return "person";
    case kCar:
      return "car";
    case kTruck:
      return "truck";
    case kBus:
      return "bus";
    case kTrain:
      return "train";
    case kBoat:
      return "boat";
    case kFireHydrant:
      return "fire_hydrant";
    case kTrafficLight:
      return "traffic_light";
    case kBicycle:
      return "bicycle";
    case kMotorcycle:
      return "motorcycle";
    case kDog:
      return "dog";
    case kLuggage:
      return "luggage";
    case kStopSign:
      return "stop_sign";
    case kBench:
      return "bench";
    case kBird:
      return "bird";
    case kStreetSign:
      return "street_sign";
    case kOtherClass:
      return "other";
  }
  return "unknown";
}

}  // namespace vz::sim
