#include "sim/evaluation.h"

#include <unordered_set>

namespace vz::sim {

QueryEvaluation& QueryEvaluation::operator+=(const QueryEvaluation& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  true_negatives += other.true_negatives;
  return *this;
}

QueryEvaluation EvaluateFrameQuery(const std::vector<int64_t>& examined_frames,
                                   const std::vector<int64_t>& universe_frames,
                                   int object_class, const GroundTruthLog& log,
                                   const HeavyModel& model) {
  QueryEvaluation eval;
  std::unordered_set<int64_t> examined(examined_frames.begin(),
                                       examined_frames.end());
  for (int64_t frame_id : universe_frames) {
    const bool present = log.FrameContains(frame_id, object_class);
    const bool predicted =
        examined.count(frame_id) > 0 &&
        model.DetectsInFrame(frame_id, object_class, present);
    if (predicted && present) {
      ++eval.true_positives;
    } else if (predicted && !present) {
      ++eval.false_positives;
    } else if (!predicted && present) {
      ++eval.false_negatives;
    } else {
      ++eval.true_negatives;
    }
  }
  return eval;
}

}  // namespace vz::sim
