#include "sim/feature_space.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vz::sim {

namespace {

FeatureVector RandomDirection(size_t dim, double scale, Rng* rng) {
  FeatureVector v(dim);
  for (size_t i = 0; i < dim; ++i) {
    v[i] = static_cast<float>(rng->Gaussian());
  }
  v.Normalize();
  v.Scale(scale);
  return v;
}

uint64_t HashTag(const std::string& tag) {
  // FNV-1a.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : tag) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

FeatureSpace::FeatureSpace(const FeatureSpaceOptions& options)
    : options_(options) {
  Rng rng(options_.seed);
  prototypes_.reserve(kNumObjectClasses);
  for (int c = 0; c < kNumObjectClasses; ++c) {
    prototypes_.push_back(
        RandomDirection(options_.dim, options_.prototype_scale, &rng));
  }
}

const FeatureVector& FeatureSpace::StyleOffset(const std::string& tag) {
  auto it = styles_.find(tag);
  if (it != styles_.end()) return it->second;
  Rng rng(options_.seed ^ HashTag(tag));
  return styles_
      .emplace(tag, RandomDirection(options_.dim, options_.style_scale, &rng))
      .first->second;
}

int FeatureSpace::NearestPrototype(const FeatureVector& feature,
                                   double* distance) const {
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int c = 0; c < kNumObjectClasses; ++c) {
    const double d =
        SquaredDistance(feature, prototypes_[static_cast<size_t>(c)]);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  if (distance != nullptr) *distance = std::sqrt(best_dist);
  return best;
}

std::vector<int> FeatureSpace::RankClasses(const FeatureVector& feature,
                                           size_t k) const {
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(kNumObjectClasses);
  for (int c = 0; c < kNumObjectClasses; ++c) {
    ranked.emplace_back(
        SquaredDistance(feature, prototypes_[static_cast<size_t>(c)]), c);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> classes;
  classes.reserve(std::min<size_t>(k, ranked.size()));
  for (size_t i = 0; i < std::min<size_t>(k, ranked.size()); ++i) {
    classes.push_back(ranked[i].second);
  }
  return classes;
}

}  // namespace vz::sim
