#include "sim/ground_truth.h"

#include <algorithm>

namespace vz::sim {

void GroundTruthLog::Record(int64_t frame_id, FrameTruth truth) {
  frames_[frame_id] = std::move(truth);
}

const FrameTruth* GroundTruthLog::Lookup(int64_t frame_id) const {
  auto it = frames_.find(frame_id);
  return it == frames_.end() ? nullptr : &it->second;
}

bool GroundTruthLog::FrameContains(int64_t frame_id, int object_class) const {
  const FrameTruth* truth = Lookup(frame_id);
  if (truth == nullptr) return false;
  return std::find(truth->object_classes.begin(), truth->object_classes.end(),
                   object_class) != truth->object_classes.end();
}

bool GroundTruthLog::SvsContains(const core::Svs& svs,
                                 int object_class) const {
  for (int64_t frame_id : svs.frame_ids()) {
    if (FrameContains(frame_id, object_class)) return true;
  }
  return false;
}

size_t GroundTruthLog::SvsMatchingFrames(const core::Svs& svs,
                                         int object_class) const {
  size_t count = 0;
  for (int64_t frame_id : svs.frame_ids()) {
    if (FrameContains(frame_id, object_class)) ++count;
  }
  return count;
}

std::vector<core::SvsId> GroundTruthLog::TrueSvsSet(
    const core::SvsStore& store, int object_class,
    const core::QueryConstraints& constraints) const {
  std::vector<core::SvsId> result;
  for (core::SvsId id : store.AllIds()) {
    auto svs = store.Get(id);
    if (!svs.ok()) continue;
    if (!constraints.AllowsCamera((*svs)->camera())) continue;
    if (!constraints.AllowsTime((*svs)->start_ms(), (*svs)->end_ms())) {
      continue;
    }
    if (SvsContains(**svs, object_class)) result.push_back(id);
  }
  return result;
}

}  // namespace vz::sim
