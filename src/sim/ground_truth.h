#ifndef VZ_SIM_GROUND_TRUTH_H_
#define VZ_SIM_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "core/svs.h"

namespace vz::sim {

/// Ground-truth record of one generated frame.
struct FrameTruth {
  core::CameraId camera;
  int64_t timestamp_ms = 0;
  std::vector<int> object_classes;
};

/// The simulation oracle: which objects were truly present in every
/// generated frame. Stands in for the authors' exhaustive ground-truth CNN
/// pass (Sec. 5.3, Sec. 7.4) — the evaluation's FPR/FNR and the monitor's
/// periodic checks are computed against this.
class GroundTruthLog {
 public:
  GroundTruthLog() = default;

  /// Registers a generated frame.
  void Record(int64_t frame_id, FrameTruth truth);

  /// Truth of a frame, or nullptr when unknown.
  const FrameTruth* Lookup(int64_t frame_id) const;

  /// Does the frame truly contain an object of `object_class`?
  bool FrameContains(int64_t frame_id, int object_class) const;

  /// Does any of the SVS's frames truly contain `object_class`?
  bool SvsContains(const core::Svs& svs, int object_class) const;

  /// Frames of the SVS that truly contain `object_class`.
  size_t SvsMatchingFrames(const core::Svs& svs, int object_class) const;

  /// All SVS ids in `store` that truly contain `object_class`, subject to
  /// the constraints. This is the reference set for precision/recall.
  std::vector<core::SvsId> TrueSvsSet(
      const core::SvsStore& store, int object_class,
      const core::QueryConstraints& constraints =
          core::QueryConstraints()) const;

  size_t size() const { return frames_.size(); }

 private:
  std::unordered_map<int64_t, FrameTruth> frames_;
};

}  // namespace vz::sim

#endif  // VZ_SIM_GROUND_TRUTH_H_
