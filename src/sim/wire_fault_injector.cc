#include "sim/wire_fault_injector.h"

#include "sim/fault_injector.h"

namespace vz::sim {

WireFaultInjector::Ledger& WireFaultInjector::Ledger::operator+=(
    const Ledger& other) {
  chunks_seen += other.chunks_seen;
  chunks_clean += other.chunks_clean;
  delays += other.delays;
  splits += other.splits;
  truncations += other.truncations;
  bitflips += other.bitflips;
  blackholes += other.blackholes;
  resets += other.resets;
  blackholed_chunks += other.blackholed_chunks;
  return *this;
}

WireFaultInjector::WireFaultInjector(const WireFaultInjectorOptions& options)
    : options_(options), rng_(options.seed) {}

WireFaultInjector WireFaultInjector::Fork() {
  WireFaultInjector child(options_);
  child.rng_ = rng_.Fork();
  return child;
}

WireFaultInjector::Action WireFaultInjector::Apply(std::string* chunk) {
  ++ledger_.chunks_seen;
  Action action;
  if (blackholed_) {
    ++ledger_.blackholed_chunks;
    action.blackhole = true;
    return action;
  }

  // One roll, cumulative thresholds: at most one fault per chunk, exact
  // ledger counts (mirrors FaultInjector::Roll).
  const double roll = rng_.UniformDouble();
  double threshold = options_.delay_probability;
  if (roll < threshold) {
    ++ledger_.delays;
    action.delay_ms = options_.delay_ms;
    return action;
  }
  threshold += options_.split_probability;
  if (roll < threshold && chunk->size() >= 2) {
    ++ledger_.splits;
    action.split_at =
        1 + static_cast<size_t>(rng_.UniformUint64(chunk->size() - 1));
    return action;
  }
  threshold += options_.truncate_probability;
  if (roll < threshold && !chunk->empty()) {
    ++ledger_.truncations;
    // Keep a strict prefix (possibly empty), then die: a torn frame
    // followed by disconnect, the classic kDataLoss producer.
    chunk->resize(static_cast<size_t>(rng_.UniformUint64(chunk->size())));
    action.reset = true;
    return action;
  }
  threshold += options_.bitflip_probability;
  if (roll < threshold && !chunk->empty()) {
    ++ledger_.bitflips;
    (void)FaultInjector::FlipBits(chunk, options_.bitflip_count,
                                  rng_.NextUint64());
    return action;
  }
  threshold += options_.blackhole_probability;
  if (roll < threshold) {
    ++ledger_.blackholes;
    blackholed_ = true;
    action.blackhole = true;
    return action;
  }
  threshold += options_.reset_probability;
  if (roll < threshold) {
    ++ledger_.resets;
    chunk->clear();
    action.reset = true;
    return action;
  }
  ++ledger_.chunks_clean;
  return action;
}

}  // namespace vz::sim
