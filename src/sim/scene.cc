#include "sim/scene.h"

#include <algorithm>
#include <cmath>

namespace vz::sim {

namespace {

std::vector<double> MakeDistribution(
    std::initializer_list<std::pair<int, double>> weights) {
  std::vector<double> dist(kNumObjectClasses, 0.0);
  for (const auto& [object_class, weight] : weights) {
    dist[static_cast<size_t>(object_class)] = weight;
  }
  return dist;
}

}  // namespace

int Scene::SampleClass(Rng* rng) const {
  return static_cast<int>(rng->WeightedIndex(class_distribution));
}

size_t Scene::SampleObjectCount(Rng* rng) const {
  if (objects_per_frame <= 0.0) return 0;
  // Knuth Poisson sampling; rates here are small.
  const double limit = std::exp(-objects_per_frame);
  size_t count = 0;
  double product = rng->UniformDouble();
  while (product > limit && count < 64) {
    ++count;
    product *= rng->UniformDouble();
  }
  return count;
}

SceneLibrary::SceneLibrary() {
  downtown_.name = "downtown";
  downtown_.class_distribution = MakeDistribution({{kPerson, 0.32},
                                                   {kCar, 0.28},
                                                   {kTrafficLight, 0.10},
                                                   {kFireHydrant, 0.04},
                                                   {kBicycle, 0.07},
                                                   {kBus, 0.07},
                                                   {kTruck, 0.06},
                                                   {kStopSign, 0.03},
                                                   {kStreetSign, 0.03}});
  downtown_.objects_per_frame = 5.0;
  downtown_.frame_deviation = 0.45;  // moving in-vehicle camera

  downtown_residential_.name = "downtown_residential";
  downtown_residential_.class_distribution =
      MakeDistribution({{kPerson, 0.30},
                        {kCar, 0.28},
                        {kFireHydrant, 0.12},
                        {kBicycle, 0.10},
                        {kDog, 0.06},
                        {kTrafficLight, 0.06},
                        {kStopSign, 0.04},
                        {kStreetSign, 0.04}});
  downtown_residential_.objects_per_frame = 4.0;
  downtown_residential_.frame_deviation = 0.40;

  downtown_commercial_.name = "downtown_commercial";
  downtown_commercial_.class_distribution =
      MakeDistribution({{kPerson, 0.34},
                        {kCar, 0.28},
                        {kTrafficLight, 0.12},
                        {kBus, 0.09},
                        {kTruck, 0.07},
                        {kBicycle, 0.05},
                        {kStopSign, 0.02},
                        {kStreetSign, 0.03}});
  downtown_commercial_.objects_per_frame = 5.0;
  downtown_commercial_.frame_deviation = 0.45;

  highway_.name = "highway";
  highway_.class_distribution = MakeDistribution({{kCar, 0.58},
                                                  {kTruck, 0.24},
                                                  {kBus, 0.08},
                                                  {kMotorcycle, 0.05},
                                                  {kStreetSign, 0.05}});
  highway_.objects_per_frame = 3.5;
  highway_.frame_deviation = 0.40;

  train_station_train_.name = "train_station_train";
  train_station_train_.class_distribution =
      MakeDistribution({{kTrain, 0.50}, {kPerson, 0.38}, {kLuggage, 0.12}});
  train_station_train_.objects_per_frame = 4.0;
  train_station_train_.frame_deviation = 0.30;

  train_station_empty_.name = "train_station_empty";
  train_station_empty_.class_distribution =
      MakeDistribution({{kPerson, 0.55}, {kBench, 0.25}, {kBird, 0.20}});
  train_station_empty_.objects_per_frame = 0.7;
  train_station_empty_.frame_deviation = 0.05;  // static camera, still scene

  harbor_busy_.name = "harbor_busy";
  harbor_busy_.class_distribution =
      MakeDistribution({{kBoat, 0.58}, {kPerson, 0.27}, {kBird, 0.15}});
  harbor_busy_.objects_per_frame = 3.0;
  harbor_busy_.frame_deviation = 0.15;

  harbor_quiet_.name = "harbor_quiet";
  harbor_quiet_.class_distribution =
      MakeDistribution({{kBird, 0.55}, {kBoat, 0.05}, {kPerson, 0.40}});
  harbor_quiet_.objects_per_frame = 0.9;
  harbor_quiet_.frame_deviation = 0.06;

  parking_lot_.name = "parking_lot";
  parking_lot_.class_distribution =
      MakeDistribution({{kCar, 0.55}, {kPerson, 0.33}, {kDog, 0.12}});
  parking_lot_.objects_per_frame = 2.5;
  parking_lot_.frame_deviation = 0.10;
}

}  // namespace vz::sim
