#include "sim/video_source.h"

#include <algorithm>

#include "common/math_util.h"

namespace vz::sim {

VideoSource::VideoSource(const VideoSourceOptions& options, Rng rng,
                         int64_t* next_frame_id)
    : options_(options),
      rng_(rng),
      next_frame_id_(next_frame_id),
      now_ms_(options.start_ms) {
  if (options_.fps <= 0.0) options_.fps = 1.0;
}

int64_t VideoSource::end_ms() const {
  int64_t total = options_.start_ms;
  for (const SceneSegment& s : options_.schedule) total += s.duration_ms;
  return total;
}

std::optional<GroundTruthFrame> VideoSource::NextFrame() {
  // Skip exhausted segments.
  while (segment_index_ < options_.schedule.size() &&
         segment_elapsed_ms_ >=
             options_.schedule[segment_index_].duration_ms) {
    segment_elapsed_ms_ -= options_.schedule[segment_index_].duration_ms;
    ++segment_index_;
  }
  if (segment_index_ >= options_.schedule.size()) return std::nullopt;
  const Scene* scene = options_.schedule[segment_index_].scene;

  GroundTruthFrame frame;
  frame.camera = options_.camera;
  frame.frame_id = (*next_frame_id_)++;
  frame.timestamp_ms = now_ms_;
  frame.scene = scene;
  frame.bytes = options_.bytes_per_frame;
  frame.deviation =
      Clamp(scene->frame_deviation + rng_.Gaussian(0.0, 0.08), 0.0, 1.0);
  const size_t count = scene->SampleObjectCount(&rng_);
  frame.object_classes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    frame.object_classes.push_back(scene->SampleClass(&rng_));
  }

  const int64_t step_ms =
      std::max<int64_t>(1, static_cast<int64_t>(1000.0 / options_.fps));
  now_ms_ += step_ms;
  segment_elapsed_ms_ += step_ms;
  return frame;
}

CameraSimulator::CameraSimulator(VideoSource source,
                                 const ObjectDetector* detector,
                                 const FeatureExtractor* extractor,
                                 GroundTruthLog* log, Rng rng)
    : source_(std::move(source)),
      detector_(detector),
      extractor_(extractor),
      log_(log),
      rng_(rng) {}

std::optional<core::FrameObservation> CameraSimulator::NextObservation() {
  std::optional<GroundTruthFrame> frame = source_.NextFrame();
  if (!frame.has_value()) return std::nullopt;

  if (log_ != nullptr) {
    FrameTruth truth;
    truth.camera = frame->camera;
    truth.timestamp_ms = frame->timestamp_ms;
    truth.object_classes = frame->object_classes;
    log_->Record(frame->frame_id, std::move(truth));
  }

  core::FrameObservation obs;
  obs.camera = frame->camera;
  obs.frame_id = frame->frame_id;
  obs.timestamp_ms = frame->timestamp_ms;
  obs.deviation_from_previous = frame->deviation;
  obs.encoded_bytes = frame->bytes;
  for (const Detection& det :
       detector_->Detect(frame->object_classes, &rng_)) {
    core::DetectedObject object;
    object.box = det.box;
    object.feature = extractor_->Extract(
        det.object_class, source_.options().style_tag, &rng_);
    object.class_hint = extractor_->Classify(object.feature);
    object.class_confidence = det.genuine ? 0.9 : 0.5;
    obs.objects.push_back(std::move(object));
  }
  return obs;
}

}  // namespace vz::sim
