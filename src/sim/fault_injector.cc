#include "sim/fault_injector.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/statusor.h"

namespace vz::sim {

using core::FrameObservation;

FaultInjector::FaultInjector(const FaultInjectorOptions& options)
    : options_(options), rng_(options.seed) {
  for (const CameraRestart& restart : options_.restarts) {
    pending_restarts_[restart.camera].push_back(restart.at_ms);
  }
  for (auto& [camera, times] : pending_restarts_) {
    std::sort(times.begin(), times.end());
  }
}

FaultInjector::Fault FaultInjector::Roll() {
  // A single uniform sample against cumulative thresholds keeps the faults
  // mutually exclusive per frame — the invariant the ledger accounting
  // relies on.
  const double u = rng_.UniformDouble();
  double threshold = options_.drop_probability;
  if (u < threshold) return Fault::kDrop;
  threshold += options_.duplicate_probability;
  if (u < threshold) return Fault::kDuplicate;
  threshold += options_.reorder_probability;
  if (u < threshold) return Fault::kReorder;
  threshold += options_.nan_probability;
  if (u < threshold) return Fault::kNan;
  threshold += options_.inf_probability;
  if (u < threshold) return Fault::kInf;
  threshold += options_.dim_mismatch_probability;
  if (u < threshold) return Fault::kDimMismatch;
  threshold += options_.detector_dropout_probability;
  if (u < threshold) return Fault::kDetectorDropout;
  return Fault::kNone;
}

bool FaultInjector::InStall(const FrameObservation& frame) const {
  for (const CameraStallWindow& window : options_.stalls) {
    if (window.camera == frame.camera &&
        frame.timestamp_ms >= window.start_ms &&
        frame.timestamp_ms <= window.end_ms) {
      return true;
    }
  }
  return false;
}

void FaultInjector::CorruptObject(FrameObservation* frame, Fault fault) {
  const size_t object_index = static_cast<size_t>(
      rng_.UniformUint64(static_cast<uint64_t>(frame->objects.size())));
  FeatureVector& feature = frame->objects[object_index].feature;
  switch (fault) {
    case Fault::kNan: {
      const size_t c = static_cast<size_t>(
          rng_.UniformUint64(static_cast<uint64_t>(feature.dim())));
      feature[c] = std::numeric_limits<float>::quiet_NaN();
      ++ledger_.objects_nan;
      break;
    }
    case Fault::kInf: {
      const size_t c = static_cast<size_t>(
          rng_.UniformUint64(static_cast<uint64_t>(feature.dim())));
      feature[c] = std::numeric_limits<float>::infinity();
      ++ledger_.objects_inf;
      break;
    }
    case Fault::kDimMismatch: {
      // Chop the last component; a 1-d feature becomes empty, which the
      // receiver also treats as non-ingestible.
      std::vector<float> truncated(feature.components().begin(),
                                   feature.components().end() -
                                       (feature.dim() > 0 ? 1 : 0));
      feature = FeatureVector(std::move(truncated));
      ++ledger_.objects_dim_mismatch;
      break;
    }
    default:
      break;
  }
}

std::vector<FrameObservation> FaultInjector::Transform(
    const FrameObservation& frame) {
  ++ledger_.frames_seen;

  // Scheduled outages come first: during a stall window the camera emits
  // nothing, and no fault is rolled (the rng stream only advances on frames
  // that had a chance to be delivered).
  if (InStall(frame)) {
    ++ledger_.frames_stalled;
    return {};
  }

  std::vector<FrameObservation> out;

  // Scheduled restarts: the recovered pipeline replays its last delivered
  // frame before resuming. The replay matches the receiver's last accepted
  // (timestamp, frame id) pair, so it lands in the duplicate counter.
  auto pending = pending_restarts_.find(frame.camera);
  if (pending != pending_restarts_.end()) {
    auto& times = pending->second;
    while (!times.empty() && times.front() <= frame.timestamp_ms) {
      times.erase(times.begin());
      auto last = last_delivered_.find(frame.camera);
      if (last != last_delivered_.end()) {
        out.push_back(last->second);
        ++ledger_.restart_replays;
      }
    }
  }

  const Fault fault = Roll();
  FrameObservation primary = frame;
  bool deliver_primary = true;
  bool duplicate = false;
  switch (fault) {
    case Fault::kDrop:
      ++ledger_.frames_dropped;
      deliver_primary = false;
      break;
    case Fault::kDuplicate:
      duplicate = true;
      break;
    case Fault::kReorder:
      // Hold at most one frame per camera; a reorder roll while one is
      // already held delivers normally (and is not counted).
      if (held_.count(frame.camera) == 0) {
        held_.emplace(frame.camera, frame);
        deliver_primary = false;
      }
      break;
    case Fault::kNan:
    case Fault::kInf:
    case Fault::kDimMismatch:
      // A feature fault on an objectless frame has nothing to corrupt;
      // deliver unmodified and leave the ledger untouched.
      if (!primary.objects.empty()) CorruptObject(&primary, fault);
      break;
    case Fault::kDetectorDropout:
      if (!primary.objects.empty()) {
        primary.objects.clear();
        ++ledger_.detector_dropouts;
      }
      break;
    case Fault::kNone:
      break;
  }

  if (deliver_primary) {
    last_delivered_[frame.camera] = primary;
    out.push_back(primary);
    if (duplicate) {
      out.push_back(std::move(primary));
      ++ledger_.frames_duplicated;
    }
    // A frame held for reordering is released right behind the next
    // delivered frame of its camera — that is the moment it becomes late,
    // so it is counted here (and exactly here), matching the receiver's
    // out-of-order counter.
    auto held = held_.find(frame.camera);
    if (held != held_.end()) {
      out.push_back(std::move(held->second));
      held_.erase(held);
      ++ledger_.frames_reordered;
    }
  }

  ledger_.frames_delivered += out.size();
  return out;
}

std::vector<FrameObservation> FaultInjector::Drain() {
  // Leftover held frames are each the newest their camera has seen, so they
  // arrive in order: delivered, not reordered.
  std::vector<FrameObservation> out;
  for (auto& [camera, frame] : held_) {
    out.push_back(std::move(frame));
  }
  held_.clear();
  std::sort(out.begin(), out.end(),
            [](const FrameObservation& a, const FrameObservation& b) {
              return a.camera != b.camera ? a.camera < b.camera
                                          : a.timestamp_ms < b.timestamp_ms;
            });
  ledger_.frames_delivered += out.size();
  return out;
}

namespace {

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    data.append(buffer, n);
  }
  std::fclose(in);
  return data;
}

Status WriteWholeFile(const std::string& path, const std::string& data) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) return Status::Internal("cannot open " + path);
  const size_t written = std::fwrite(data.data(), 1, data.size(), out);
  if (std::fclose(out) != 0 || written != data.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

Status FaultInjector::Truncate(std::string* data, size_t keep_bytes) {
  if (keep_bytes > data->size()) {
    return Status::InvalidArgument(
        "buffer has only " + std::to_string(data->size()) +
        " bytes, cannot keep " + std::to_string(keep_bytes));
  }
  data->resize(keep_bytes);
  return Status::OK();
}

Status FaultInjector::FlipBits(std::string* data, size_t num_flips,
                               uint64_t seed) {
  if (data->empty()) {
    return Status::InvalidArgument("cannot flip bits in an empty buffer");
  }
  Rng rng(seed);
  // Distinct bit positions: with replacement, an even number of hits on the
  // same bit cancels out and "corrupts" the buffer into itself — which would
  // make corruption tests silently vacuous.
  const size_t total_bits = data->size() * 8;
  std::vector<size_t> flipped;
  for (size_t i = 0; i < num_flips && flipped.size() < total_bits; ++i) {
    size_t position;
    do {
      position = static_cast<size_t>(
          rng.UniformUint64(static_cast<uint64_t>(total_bits)));
    } while (std::find(flipped.begin(), flipped.end(), position) !=
             flipped.end());
    flipped.push_back(position);
    (*data)[position / 8] = static_cast<char>(
        static_cast<unsigned char>((*data)[position / 8]) ^
        (1u << (position % 8)));
  }
  return Status::OK();
}

Status FaultInjector::TruncateFile(const std::string& path,
                                   size_t keep_bytes) {
  VZ_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (Status s = Truncate(&data, keep_bytes); !s.ok()) {
    return Status(s.code(), "file " + path + ": " + s.message());
  }
  return WriteWholeFile(path, data);
}

Status FaultInjector::FlipBits(const std::string& path, size_t num_flips,
                               uint64_t seed) {
  VZ_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (Status s = FlipBits(&data, num_flips, seed); !s.ok()) {
    return Status(s.code(), "file " + path + ": " + s.message());
  }
  return WriteWholeFile(path, data);
}

Status FaultInjector::TruncateTail(const std::string& path,
                                   size_t drop_bytes) {
  VZ_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (drop_bytes > data.size()) {
    return Status::InvalidArgument(
        "file " + path + " holds " + std::to_string(data.size()) +
        " bytes, cannot drop " + std::to_string(drop_bytes));
  }
  if (Status s = Truncate(&data, data.size() - drop_bytes); !s.ok()) {
    return Status(s.code(), "file " + path + ": " + s.message());
  }
  return WriteWholeFile(path, data);
}

Status FaultInjector::ShortWriteTail(const std::string& path,
                                     size_t zero_bytes) {
  VZ_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (zero_bytes > data.size()) {
    return Status::InvalidArgument(
        "file " + path + " holds " + std::to_string(data.size()) +
        " bytes, cannot zero " + std::to_string(zero_bytes));
  }
  std::fill(data.end() - static_cast<ptrdiff_t>(zero_bytes), data.end(),
            '\0');
  return WriteWholeFile(path, data);
}

}  // namespace vz::sim
