#ifndef VZ_SIM_OBJECT_DETECTOR_H_
#define VZ_SIM_OBJECT_DETECTOR_H_

#include <vector>

#include "common/rng.h"
#include "core/frame.h"
#include "sim/object_class.h"

namespace vz::sim {

/// Error model of the simulated YOLO-style detector that clips objects from
/// frames before feature extraction (Sec. 3.1, "Video frame clipping").
struct DetectorProfile {
  /// Probability a truly present object is detected.
  double recall = 0.92;
  /// Expected spurious detections per frame (assigned a random class).
  double false_positives_per_frame = 0.02;
  /// Frame dimensions for synthesized boxes.
  float frame_width = 1280.0f;
  float frame_height = 720.0f;
};

/// One detection: the class that will be fed to feature extraction plus its
/// clipped bounding box.
struct Detection {
  int object_class = -1;
  core::BoundingBox box;
  /// True when this detection corresponds to a real object (false positives
  /// carry a random class and false here).
  bool genuine = true;
};

/// Simulated object detector: drops objects with (1 - recall), injects false
/// positives, and synthesizes plausible boxes. Detection quality only
/// affects *which* objects reach the index, which is exactly its role in the
/// real pipeline.
class ObjectDetector {
 public:
  explicit ObjectDetector(const DetectorProfile& profile);

  /// Runs detection over the ground-truth object classes of one frame.
  std::vector<Detection> Detect(const std::vector<int>& true_classes,
                                Rng* rng) const;

  const DetectorProfile& profile() const { return profile_; }

 private:
  core::BoundingBox RandomBox(Rng* rng) const;

  DetectorProfile profile_;
};

}  // namespace vz::sim

#endif  // VZ_SIM_OBJECT_DETECTOR_H_
