#ifndef VZ_BASELINE_TOPK_INDEX_H_
#define VZ_BASELINE_TOPK_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/frame.h"
#include "sim/feature_extractor.h"

namespace vz::baseline {

/// Parameters of the FOCUS-style per-camera top-k index (Hsieh et al.,
/// OSDI 2018), the frame-level comparator of Sec. 7.4.
struct TopKIndexOptions {
  /// Each object is indexed under its top-k cheap-classifier classes
  /// ("we set k = 3 for all top-k indices", Sec. 7.4).
  size_t k = 3;
  /// Number of classes the ingestion model can recognize per camera (the K
  /// of Fig. 15): only the K most frequent classes are kept; everything else
  /// lands in the "other" bucket, whose frames every query must re-examine
  /// (Fig. 18).
  size_t recognized_classes = 5;
};

/// Per-camera approximate top-k class index over frames. Built at ingestion
/// from the cheap classifier's ranked classes; a query for class X retrieves
/// every frame indexed under X plus every "other" frame, and ships them all
/// to the heavy ground-truth CNN.
class TopKIndex {
 public:
  /// `extractor` must outlive the index (it provides the cheap ranking).
  TopKIndex(const sim::FeatureExtractor* extractor,
            const TopKIndexOptions& options);

  /// Buffers one frame's objects (call for every ingested frame).
  void IngestFrame(const core::FrameObservation& frame);

  /// Computes each camera's K recognized classes and builds the inverted
  /// index. Must be called once after ingestion, before queries.
  void Finalize();

  /// Candidate frames for a query, per camera and overall.
  struct QueryResult {
    std::vector<int64_t> frames;
    std::vector<std::pair<core::CameraId, size_t>> per_camera_frames;
  };

  /// Frames any camera might contain `object_class` in: frames indexed under
  /// the class plus all "other" frames.
  QueryResult Query(int object_class) const;

  /// Same, restricted to the given cameras.
  QueryResult Query(int object_class,
                    const std::vector<core::CameraId>& cameras) const;

  /// Distinct classes indexed for a camera, including kOtherClass when
  /// present — Fig. 18's class count.
  std::vector<int> IndexedClasses(const core::CameraId& camera) const;

  /// Total frames ingested.
  size_t num_frames() const { return num_frames_; }

  /// Simulated ingestion GPU cost: the cheap model over every object, plus a
  /// per-class recognition surcharge that grows with K (Sec. 7.4: "a larger
  /// K requires a more complicated recognition model, hence larger
  /// processing overhead at ingestion time").
  double ingest_gpu_ms() const;

 private:
  struct CameraState {
    // Per-object top-k class rankings with the owning frame.
    std::vector<std::pair<int64_t, std::vector<int>>> object_rankings;
    std::vector<int64_t> frames;  // all frames of this camera, in order
    std::unordered_map<int, size_t> class_counts;  // top-1 histogram
    // Finalized inverted index: class (or kOtherClass) -> frame ids.
    std::map<int, std::vector<int64_t>> inverted;
    bool finalized = false;
  };

  const sim::FeatureExtractor* extractor_;
  TopKIndexOptions options_;
  std::map<core::CameraId, CameraState> cameras_;
  size_t num_frames_ = 0;
  size_t num_objects_ = 0;
};

}  // namespace vz::baseline

#endif  // VZ_BASELINE_TOPK_INDEX_H_
