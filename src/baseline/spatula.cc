#include "baseline/spatula.h"

#include <algorithm>

namespace vz::baseline {

void SpatulaCorrelator::RegisterCamera(const core::CameraId& camera,
                                       const std::string& location_tag) {
  location_of_[camera] = location_tag;
  auto& list = by_location_[location_tag];
  if (std::find(list.begin(), list.end(), camera) == list.end()) {
    list.push_back(camera);
  }
}

std::vector<core::CameraId> SpatulaCorrelator::CorrelatedCameras(
    const core::CameraId& source) const {
  auto it = location_of_.find(source);
  if (it == location_of_.end()) return {source};
  return CamerasAt(it->second);
}

std::vector<core::CameraId> SpatulaCorrelator::CamerasAt(
    const std::string& location_tag) const {
  auto it = by_location_.find(location_tag);
  if (it == by_location_.end()) return {};
  return it->second;
}

}  // namespace vz::baseline
