#include "baseline/topk_index.h"

#include <algorithm>
#include <unordered_set>

#include "sim/object_class.h"

namespace vz::baseline {

TopKIndex::TopKIndex(const sim::FeatureExtractor* extractor,
                     const TopKIndexOptions& options)
    : extractor_(extractor), options_(options) {
  if (options_.k == 0) options_.k = 1;
  if (options_.recognized_classes == 0) options_.recognized_classes = 1;
}

void TopKIndex::IngestFrame(const core::FrameObservation& frame) {
  CameraState& state = cameras_[frame.camera];
  state.frames.push_back(frame.frame_id);
  ++num_frames_;
  for (const core::DetectedObject& object : frame.objects) {
    ++num_objects_;
    std::vector<int> ranking =
        extractor_->TopKClasses(object.feature, options_.k);
    if (!ranking.empty()) state.class_counts[ranking.front()]++;
    state.object_rankings.emplace_back(frame.frame_id, std::move(ranking));
  }
}

void TopKIndex::Finalize() {
  for (auto& [camera, state] : cameras_) {
    if (state.finalized) continue;
    state.finalized = true;
    // The K most frequent top-1 classes are "recognized" on this camera.
    std::vector<std::pair<size_t, int>> by_count;
    for (const auto& [object_class, count] : state.class_counts) {
      if (object_class == sim::kOtherClass) continue;
      by_count.emplace_back(count, object_class);
    }
    std::sort(by_count.rbegin(), by_count.rend());
    std::unordered_set<int> recognized;
    for (size_t i = 0;
         i < std::min(options_.recognized_classes, by_count.size()); ++i) {
      recognized.insert(by_count[i].second);
    }
    // Invert: every object's recognized top-k classes point at its frame;
    // unrecognized or rejected objects land in the "other" bucket.
    std::map<int, std::unordered_set<int64_t>> buckets;
    for (const auto& [frame_id, ranking] : state.object_rankings) {
      // An object whose best guess is outside the recognition head's K
      // classes (or rejected outright) is unknown to the ingestion model;
      // its frame joins the "other" bucket that every query rescans.
      if (ranking.empty() || ranking.front() == sim::kOtherClass ||
          recognized.count(ranking.front()) == 0) {
        buckets[sim::kOtherClass].insert(frame_id);
      }
      for (int object_class : ranking) {
        if (object_class != sim::kOtherClass &&
            recognized.count(object_class) > 0) {
          buckets[object_class].insert(frame_id);
        }
      }
    }
    for (auto& [object_class, frames] : buckets) {
      std::vector<int64_t> sorted(frames.begin(), frames.end());
      std::sort(sorted.begin(), sorted.end());
      state.inverted.emplace(object_class, std::move(sorted));
    }
  }
}

TopKIndex::QueryResult TopKIndex::Query(int object_class) const {
  std::vector<core::CameraId> all;
  all.reserve(cameras_.size());
  for (const auto& [camera, state] : cameras_) all.push_back(camera);
  return Query(object_class, all);
}

TopKIndex::QueryResult TopKIndex::Query(
    int object_class, const std::vector<core::CameraId>& cameras) const {
  QueryResult result;
  for (const core::CameraId& camera : cameras) {
    auto it = cameras_.find(camera);
    if (it == cameras_.end()) continue;
    const CameraState& state = it->second;
    std::unordered_set<int64_t> frames;
    auto bucket = state.inverted.find(object_class);
    if (bucket != state.inverted.end()) {
      frames.insert(bucket->second.begin(), bucket->second.end());
    }
    // The "other" bucket must always be re-examined (Fig. 18): it may hide
    // any class.
    auto other = state.inverted.find(sim::kOtherClass);
    if (other != state.inverted.end()) {
      frames.insert(other->second.begin(), other->second.end());
    }
    result.per_camera_frames.emplace_back(camera, frames.size());
    for (int64_t frame : frames) result.frames.push_back(frame);
  }
  return result;
}

std::vector<int> TopKIndex::IndexedClasses(const core::CameraId& camera) const {
  std::vector<int> classes;
  auto it = cameras_.find(camera);
  if (it == cameras_.end()) return classes;
  for (const auto& [object_class, frames] : it->second.inverted) {
    classes.push_back(object_class);
  }
  return classes;
}

double TopKIndex::ingest_gpu_ms() const {
  const double per_object = extractor_->profile().gpu_ms_per_object;
  // Recognition-model complexity grows with K (roughly linearly in the
  // number of classes the head discriminates).
  const double k_factor =
      1.0 + 0.1 * static_cast<double>(options_.recognized_classes);
  return static_cast<double>(num_objects_) * per_object * k_factor;
}

}  // namespace vz::baseline
