#include "baseline/classifier_only.h"

#include <algorithm>

namespace vz::baseline {

void ClassifierOnlyBaseline::IngestFrame(const core::FrameObservation& frame) {
  frames_.push_back(frame.frame_id);
  frame_cameras_.push_back(frame.camera);
}

std::vector<int64_t> ClassifierOnlyBaseline::FramesOf(
    const std::vector<core::CameraId>& cameras) const {
  std::vector<int64_t> result;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (std::find(cameras.begin(), cameras.end(), frame_cameras_[i]) !=
        cameras.end()) {
      result.push_back(frames_[i]);
    }
  }
  return result;
}

}  // namespace vz::baseline
