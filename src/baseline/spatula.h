#ifndef VZ_BASELINE_SPATULA_H_
#define VZ_BASELINE_SPATULA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/frame.h"

namespace vz::baseline {

/// Spatula-style spatial-temporal camera correlation (Jain et al., SEC
/// 2020), the cross-camera comparator of Sec. 7.4: objects seen by one
/// camera are assumed to appear only on manually-labeled nearby cameras, so
/// a query captured in NYC searches only NYC cameras.
///
/// The manual location labels come from the deployment configuration —
/// exactly the labeling burden Sec. 7.5 points out Video-zilla removes.
class SpatulaCorrelator {
 public:
  SpatulaCorrelator() = default;

  /// Registers a camera with its manual location label.
  void RegisterCamera(const core::CameraId& camera,
                      const std::string& location_tag);

  /// Cameras sharing `source`'s location (including `source` itself).
  /// Unknown cameras correlate only with themselves.
  std::vector<core::CameraId> CorrelatedCameras(
      const core::CameraId& source) const;

  /// All cameras labeled with `location_tag`.
  std::vector<core::CameraId> CamerasAt(const std::string& location_tag) const;

  size_t num_cameras() const { return location_of_.size(); }

 private:
  std::unordered_map<core::CameraId, std::string> location_of_;
  std::unordered_map<std::string, std::vector<core::CameraId>> by_location_;
};

}  // namespace vz::baseline

#endif  // VZ_BASELINE_SPATULA_H_
