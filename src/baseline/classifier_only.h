#ifndef VZ_BASELINE_CLASSIFIER_ONLY_H_
#define VZ_BASELINE_CLASSIFIER_ONLY_H_

#include <cstdint>
#include <vector>

#include "core/frame.h"

namespace vz::baseline {

/// The no-index baseline of Fig. 19 ("classifier-only"): every query runs
/// the heavy model over every frame of every allowed camera. Its recall is
/// the ceiling every scheme is measured against; its GPU cost is the floor
/// pruning is measured against.
class ClassifierOnlyBaseline {
 public:
  ClassifierOnlyBaseline() = default;

  /// Records one ingested frame.
  void IngestFrame(const core::FrameObservation& frame);

  /// Every frame (the examined set of a classifier-only query).
  const std::vector<int64_t>& AllFrames() const { return frames_; }

  /// Frames of the given cameras only.
  std::vector<int64_t> FramesOf(
      const std::vector<core::CameraId>& cameras) const;

  size_t num_frames() const { return frames_.size(); }

 private:
  std::vector<int64_t> frames_;
  std::vector<core::CameraId> frame_cameras_;  // parallel to frames_
};

}  // namespace vz::baseline

#endif  // VZ_BASELINE_CLASSIFIER_ONLY_H_
