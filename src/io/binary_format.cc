#include "io/binary_format.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace vz::io {

namespace {

template <typename T>
void AppendRaw(std::string* buffer, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer->append(bytes, sizeof(T));
}

}  // namespace

void BinaryWriter::WriteU32(uint32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU64(uint64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF32(float v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF64(double v) { AppendRaw(&buffer_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  buffer_.append(s);
}

void BinaryWriter::WriteLengthPrefixedBytes(const std::string& bytes) {
  WriteU64(bytes.size());
  buffer_.append(bytes);
}

void BinaryWriter::WriteFloats(const std::vector<float>& values) {
  WriteFloats(values.data(), values.size());
}

void BinaryWriter::WriteFloats(const float* values, size_t count) {
  WriteU64(count);
  const size_t bytes = count * sizeof(float);
  const size_t offset = buffer_.size();
  buffer_.resize(offset + bytes);
  if (bytes > 0) {
    std::memcpy(buffer_.data() + offset, values, bytes);
  }
}

Status BinaryWriter::Flush(const std::string& path) const {
  // Temp-file + rename: readers never observe a half-written snapshot, and a
  // crash mid-write leaves the previous file intact. stdio (not ofstream) so
  // fsync/close failures are observable and propagated.
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot open for write: " + tmp);
  }
  Status status = Status::OK();
  if (!buffer_.empty() &&
      std::fwrite(buffer_.data(), 1, buffer_.size(), out) != buffer_.size()) {
    status = Status::Internal("short write: " + tmp);
  }
  if (status.ok() && std::fflush(out) != 0) {
    status = Status::Internal("flush failed: " + tmp);
  }
#ifndef _WIN32
  // Data must be durable before the rename publishes it, or a crash could
  // expose a renamed-but-empty file.
  if (status.ok() && ::fsync(::fileno(out)) != 0) {
    status = Status::Internal("fsync failed: " + tmp);
  }
#endif
  if (std::fclose(out) != 0 && status.ok()) {
    status = Status::Internal("close failed: " + tmp);
  }
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  if (!status.ok()) std::remove(tmp.c_str());
  return status;
}

StatusOr<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return BinaryReader(std::move(data));
}

Status BinaryReader::Need(size_t bytes) const {
  // `data_.size() - position_` (not `position_ + bytes`): a corrupted length
  // field near SIZE_MAX must not overflow the addition and slip past the
  // bounds check into a wild memcpy.
  if (bytes > data_.size() - position_) {
    return Status::OutOfRange("truncated input");
  }
  return Status::OK();
}

StatusOr<uint8_t> BinaryReader::ReadU8() {
  VZ_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[position_++]);
}

StatusOr<uint32_t> BinaryReader::ReadU32() {
  VZ_RETURN_IF_ERROR(Need(sizeof(uint32_t)));
  uint32_t v;
  std::memcpy(&v, data_.data() + position_, sizeof(v));
  position_ += sizeof(v);
  return v;
}

StatusOr<uint64_t> BinaryReader::ReadU64() {
  VZ_RETURN_IF_ERROR(Need(sizeof(uint64_t)));
  uint64_t v;
  std::memcpy(&v, data_.data() + position_, sizeof(v));
  position_ += sizeof(v);
  return v;
}

StatusOr<int64_t> BinaryReader::ReadI64() {
  VZ_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

StatusOr<float> BinaryReader::ReadF32() {
  VZ_RETURN_IF_ERROR(Need(sizeof(float)));
  float v;
  std::memcpy(&v, data_.data() + position_, sizeof(v));
  position_ += sizeof(v);
  return v;
}

StatusOr<double> BinaryReader::ReadF64() {
  VZ_RETURN_IF_ERROR(Need(sizeof(double)));
  double v;
  std::memcpy(&v, data_.data() + position_, sizeof(v));
  position_ += sizeof(v);
  return v;
}

StatusOr<std::string> BinaryReader::ReadString() {
  VZ_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  VZ_RETURN_IF_ERROR(Need(size));
  std::string s = data_.substr(position_, size);
  position_ += size;
  return s;
}

StatusOr<std::string> BinaryReader::ReadLengthPrefixedBytes() {
  // Identical wire layout to ReadString (u64 length + raw bytes); the
  // bounds check there already rejects lengths past the end of the buffer
  // before any allocation or copy.
  return ReadString();
}

Status BinaryReader::Skip(size_t bytes) {
  VZ_RETURN_IF_ERROR(Need(bytes));
  position_ += bytes;
  return Status::OK();
}

StatusOr<std::vector<float>> BinaryReader::ReadFloats() {
  VZ_ASSIGN_OR_RETURN(uint64_t count, ReadU64());
  // Divide instead of multiplying: `count * sizeof(float)` overflows for a
  // corrupted count near 2^64 and would both defeat the bounds check and
  // trigger a giant allocation below.
  if (count > remaining() / sizeof(float)) {
    return Status::OutOfRange("truncated input");
  }
  std::vector<float> values(count);
  if (count > 0) {
    std::memcpy(values.data(), data_.data() + position_,
                count * sizeof(float));
  }
  position_ += count * sizeof(float);
  return values;
}

}  // namespace vz::io
