#ifndef VZ_IO_WAL_H_
#define VZ_IO_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/videozilla.h"

namespace vz::io {

/// Append-only write-ahead log for the serving layer's mutating RPCs (see
/// DESIGN.md, "Durability and replication").
///
/// On-disk layout: a directory of segment files `wal-<seq>.vzwal`, each
///
///   u32 magic ("VZWL") | u32 version | u64 start_lsn | u32 header crc |
///   record*
///
/// where every record is framed as
///
///   u32 payload_len | payload | u32 crc32(payload)
///
/// and the payload itself carries `u64 lsn | u64 session_id | u64 sequence |
/// u32 op | u64 epoch | u64+bytes body` — the idempotency token travels
/// inside the log, which is what lets a restarted server rebuild its dedup
/// windows, and the promotion epoch travels with every record, which is what
/// lets a failed-over cluster fence a demoted primary (format v2; a v1 log
/// is no longer readable — recreate from a checkpoint).
///
/// LSNs are assigned densely (last + 1) and validated on read: a record
/// whose CRC fails, whose length is implausible, or whose LSN breaks the
/// `prev + 1` chain marks the torn tail. `Open` always salvages — the file
/// is truncated back to the last valid record and later segments are
/// dropped — so a crash mid-append (or a partial fsync that zeroed the tail)
/// costs exactly the unacknowledged suffix, never a parse error.
///
/// Durability is group-commit: `Append` writes the record to the OS and
/// returns; a background thread batches an `fsync` every
/// `fsync_interval_ms`; `WaitDurable(lsn)` blocks until the covering fsync
/// completed. One fsync therefore amortizes over every append of the
/// interval, across all sessions — the ack-latency/throughput knob measured
/// by `bench_wal_append`.

inline constexpr uint32_t kWalMagic = 0x565A574C;  // "VZWL"
inline constexpr uint32_t kWalFormatVersion = 2;  // v2: per-record epoch
/// Frame overhead of one record: length prefix + trailing CRC.
inline constexpr size_t kWalRecordOverhead = 2 * sizeof(uint32_t);
/// Fixed part of a record payload (lsn, session, sequence, op, epoch, body
/// length). A length field below this is structurally impossible — in
/// particular a zeroed tail (len 0) can never masquerade as an empty record.
inline constexpr size_t kWalMinPayloadBytes =
    4 * sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint64_t);
/// Upper bound on one record payload (matches the wire's frame cap).
inline constexpr uint64_t kWalMaxPayloadBytes = 64ull << 20;

/// Reserved `WalRecord::op` value (far outside the wire MsgType range) for
/// the durable promotion marker `net::Server::Promote` appends: the record
/// carries no state change, only its `epoch`, so the bump itself survives
/// restarts and ships to any tailing standby.
inline constexpr uint32_t kWalOpEpochMarker = 0xFFFF0001u;

struct WalOptions {
  std::string dir;
  /// Group-commit gather window. 0 syncs as fast as the sync thread can
  /// turn around (still batching appends that race one fsync); < 0 disables
  /// fsync entirely (benchmarks only — no durability).
  int64_t fsync_interval_ms = 2;
  /// Segment rotation threshold (record bytes per segment file).
  size_t segment_bytes = 4u << 20;
  /// LSN floor when the directory holds no records — the checkpoint cut a
  /// recovering server already restored, so numbering continues from it.
  uint64_t start_lsn = 0;
};

/// One logged mutation. `payload` is the op's post-token request body,
/// verbatim — replay re-executes it through the server's own dispatch.
struct WalRecord {
  /// Assigned by `Append` when 0; a nonzero value must continue the chain
  /// (`last_lsn + 1`) — the standby path, which mirrors primary numbering.
  uint64_t lsn = 0;
  uint64_t session_id = 0;  // 0 = untokened op
  uint64_t sequence = 0;
  uint32_t op = 0;  // wire MsgType value, opaque to the log
  /// Promotion epoch under which the record was written (see DESIGN.md,
  /// "Sharded deployment" — fencing). Opaque to the log itself.
  uint64_t epoch = 0;
  std::string payload;
};

struct WalStats {
  uint64_t appends = 0;
  uint64_t fsyncs = 0;
  uint64_t appended_bytes = 0;
  /// Bytes dropped by tail salvage at `Open` (torn or zeroed suffixes plus
  /// any segments stranded past them).
  uint64_t salvaged_bytes = 0;
  uint64_t segments_created = 0;
  uint64_t segments_deleted = 0;  // compaction
  uint64_t last_lsn = 0;
  uint64_t durable_lsn = 0;
  uint64_t base_lsn = 0;
  uint64_t live_bytes = 0;
};

class Wal {
 public:
  /// Opens (creating the directory's first segment if needed) and salvages:
  /// the tail is truncated back to the last valid record. Never fails on
  /// torn or corrupt tails — only on I/O errors or an unusable directory.
  static StatusOr<std::unique_ptr<Wal>> Open(const WalOptions& options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record (assigning its LSN, see `WalRecord::lsn`) and
  /// returns the LSN. The bytes reach the OS before return but are durable
  /// only once `WaitDurable` says so.
  StatusOr<uint64_t> Append(const WalRecord& record);

  /// Blocks until every record up to `lsn` is fsync'd. Always returns OK
  /// for LSNs this log assigned (destruction flushes before releasing
  /// waiters).
  Status WaitDurable(uint64_t lsn);

  /// Forces an immediate fsync of everything appended so far.
  Status Sync();

  /// True once `durable_lsn() > lsn`; otherwise waits up to `timeout_ms`
  /// for new durable records — the WAL-shipping long poll.
  bool WaitDurablePast(uint64_t lsn, int64_t timeout_ms);

  /// Up to `max_records` durable records with `lsn > from_lsn`, in order.
  /// `from_lsn < base_lsn()` is `kOutOfRange`: those records were compacted
  /// into a checkpoint and can no longer be shipped.
  StatusOr<std::vector<WalRecord>> ReadFrom(uint64_t from_lsn,
                                            size_t max_records);

  /// Feeds every record with `lsn > from_lsn` (durable or not — recovery
  /// owns the whole tail) through `fn`, in order, stopping on error.
  Status Replay(uint64_t from_lsn,
                const std::function<Status(const WalRecord&)>& fn);

  /// Deletes segments fully covered by a checkpoint at `upto_lsn` (the open
  /// segment is sealed and rotated first if covered). Records at or below
  /// the cut count as durable afterwards — the checkpoint supersedes them.
  Status Compact(uint64_t upto_lsn);

  uint64_t last_lsn() const;
  uint64_t durable_lsn() const;
  /// Records at or below this LSN have been compacted away.
  uint64_t base_lsn() const;
  /// Record bytes across live segments — the compaction trigger gauge.
  uint64_t live_bytes() const;
  WalStats stats() const;

 private:
  struct Segment {
    uint64_t seq = 0;
    std::string path;
    uint64_t start_lsn = 0;  // records span (start_lsn, last_lsn]
    uint64_t last_lsn = 0;
    uint64_t record_bytes = 0;  // valid extent past the header
    int fd = -1;                // open for append on the tail segment only
  };

  explicit Wal(const WalOptions& options);

  Status OpenDir();
  Status ScanAndSalvage();
  StatusOr<Segment> CreateSegment(uint64_t seq, uint64_t start_lsn);
  Status RotateLocked();
  Status SyncOpenSegmentLocked(uint64_t target_lsn);
  void SyncLoop();
  StatusOr<std::vector<WalRecord>> ReadSegment(const Segment& segment,
                                               uint64_t from_lsn,
                                               uint64_t upto_lsn,
                                               size_t max_records) const;

  const WalOptions options_;

  /// Serializes all segment/file mutations (append, rotate, compact, read).
  mutable std::mutex mu_;
  std::vector<Segment> segments_;
  uint64_t last_lsn_ = 0;
  uint64_t base_lsn_ = 0;
  uint64_t next_segment_seq_ = 1;
  WalStats stats_;

  /// Durability frontier, under its own lock so fsync waits never block
  /// appends.
  mutable std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  uint64_t durable_lsn_ = 0;
  uint64_t appended_lsn_ = 0;
  bool stop_ = false;
  std::thread sync_thread_;
};

// --- Checkpoint manifest -------------------------------------------------
//
// Compaction folds sealed segments into a snapshot-v2 pair:
//   checkpoint-<lsn>.vzss  — the SVS store (io::SaveSvsStore)
//   checkpoint-<lsn>.meta  — everything replay needs that the store alone
//                            cannot reconstruct: per-camera ingestion-guard
//                            state (quarantine decisions diverge without
//                            it), global ingest counters, the clock, and
//                            the per-session dedup windows at the cut.
// The meta file is written after the snapshot; recovery uses the newest LSN
// for which BOTH files are valid, so a crash between the two writes falls
// back to the previous checkpoint (whose WAL segments still exist).

inline constexpr uint32_t kWalCheckpointMagic = 0x565A574D;  // "VZWM"
inline constexpr uint32_t kWalCheckpointVersion = 2;  // v2: promotion epoch

struct WalCheckpoint {
  uint64_t lsn = 0;
  /// Promotion epoch at the cut — restored so a recovering server knows the
  /// newest epoch it ever served under even after compaction ate the log.
  uint64_t epoch = 0;
  int64_t now_ms = 0;
  core::IngestStats ingest;
  struct Camera {
    core::CameraId camera;
    core::CameraIngestStats stats;
    int64_t last_frame_id = -1;
    uint64_t expected_dim = 0;
  };
  /// Every camera *started* at the cut — the authority over pipeline
  /// existence (the snapshot auto-starts any camera with stored SVSs, which
  /// would silently resurrect terminated ones).
  std::vector<Camera> cameras;
  struct Session {
    uint64_t session_id = 0;
    uint64_t evicted_up_to = 0;
    std::vector<std::pair<uint64_t, std::string>> responses;  // seq -> bytes
  };
  std::vector<Session> sessions;
};

std::string WalCheckpointMetaPath(const std::string& dir, uint64_t lsn);
std::string WalCheckpointSnapshotPath(const std::string& dir, uint64_t lsn);

/// Atomic (tmp + fsync + rename), CRC-sealed.
Status SaveWalCheckpointMeta(const WalCheckpoint& checkpoint,
                             const std::string& path);
StatusOr<WalCheckpoint> LoadWalCheckpointMeta(const std::string& path);

/// LSNs of every `checkpoint-<lsn>.meta` in `dir`, ascending. (Validity is
/// the caller's problem — recovery probes from the newest down.)
StatusOr<std::vector<uint64_t>> ListWalCheckpointLsns(const std::string& dir);

/// Removes both files of every checkpoint older than `keep_lsn`.
void RemoveWalCheckpointsBelow(const std::string& dir, uint64_t keep_lsn);

}  // namespace vz::io

#endif  // VZ_IO_WAL_H_
