#ifndef VZ_IO_SVS_SNAPSHOT_H_
#define VZ_IO_SVS_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/svs.h"

namespace vz::io {

/// Persists and restores an `SvsStore` — every SVS with its feature map,
/// per-SVS representative, frame ids, byte accounting and access statistics.
///
/// A snapshot makes the indexing layer restartable: after a crash or a
/// planned restart, the store is reloaded and the intra-/inter-camera
/// indices are rebuilt by re-inserting the stored SVSs (index structures are
/// derived state; only the SVSs are ground truth). The format is versioned;
/// loaders reject unknown versions instead of misparsing.
///
/// Version 2 (current write format) treats failure as the common case:
///   header:     magic u32, version u32 (=2), record count u64
///   per record: payload length u64, payload bytes, payload CRC32 u32
///   footer:     CRC32 u32 over every preceding byte of the file
/// Per-record checksums localize corruption to one SVS (enabling prefix
/// salvage); the file-level checksum catches bit flips anywhere, including
/// in lengths and counts. Saves are atomic (temp file + rename, fsync'd), so
/// a crash during `SaveSvsStore` leaves the previous snapshot intact.
/// Version 1 (no checksums) still loads.

inline constexpr uint32_t kSnapshotMagic = 0x565A5353;  // "VZSS"
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kSnapshotVersionV1 = 1;

/// How `LoadSvsStore` reacts to a torn or corrupted snapshot.
struct SnapshotLoadOptions {
  /// Default (false): all-or-nothing — any parse or checksum error leaves
  /// the caller's store completely untouched. With salvage enabled, the
  /// valid record prefix of a torn snapshot is recovered instead: records
  /// are appended up to (not including) the first corrupted one and the
  /// load reports success with `SnapshotLoadReport::salvaged = true`.
  /// Salvage never admits a record whose own checksum fails.
  bool salvage = false;
};

/// What a load actually did — populated when the caller passes a report.
struct SnapshotLoadReport {
  /// Format version of the file (0 if the header was unreadable).
  uint32_t version = 0;
  /// Records the header promised.
  uint64_t records_expected = 0;
  /// Records appended to the store.
  uint64_t records_loaded = 0;
  /// True when a corrupted tail was dropped in salvage mode.
  bool salvaged = false;
};

/// Writes `store` to `path` in the current (v2, checksummed) format.
/// Atomic: on any failure the previous file at `path` is left untouched.
Status SaveSvsStore(const core::SvsStore& store, const std::string& path);

/// Writes `store` in the legacy v1 layout (no checksums). Exists so
/// compatibility with pre-v2 snapshots stays testable; new code should use
/// `SaveSvsStore`. Uses the same atomic temp-file + rename write path.
Status SaveSvsStoreV1(const core::SvsStore& store, const std::string& path);

/// Appends every SVS of the snapshot at `path` into `store`, preserving
/// creation order (ids are re-assigned densely; with an empty target store
/// they match the saved ids). Loads v1 and v2 snapshots. All decoding
/// happens in a temporary store: on magic/version mismatch, truncation or
/// checksum failure the caller's `store` is left exactly as it was — no
/// partially appended records (unless `options.salvage` asks for the valid
/// prefix of a torn file).
Status LoadSvsStore(const std::string& path, core::SvsStore* store,
                    const SnapshotLoadOptions& options = SnapshotLoadOptions(),
                    SnapshotLoadReport* report = nullptr);

}  // namespace vz::io

#endif  // VZ_IO_SVS_SNAPSHOT_H_
