#ifndef VZ_IO_SVS_SNAPSHOT_H_
#define VZ_IO_SVS_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "core/svs.h"

namespace vz::io {

/// Persists and restores an `SvsStore` — every SVS with its feature map,
/// per-SVS representative, frame ids, byte accounting and access statistics.
///
/// A snapshot makes the indexing layer restartable: after a crash or a
/// planned restart, the store is reloaded and the intra-/inter-camera
/// indices are rebuilt by re-inserting the stored SVSs (index structures are
/// derived state; only the SVSs are ground truth). The format is versioned
/// (`kSnapshotVersion`); loaders reject unknown versions instead of
/// misparsing.

inline constexpr uint32_t kSnapshotMagic = 0x565A5353;  // "VZSS"
inline constexpr uint32_t kSnapshotVersion = 1;

/// Writes `store` to `path`. Overwrites any existing file.
Status SaveSvsStore(const core::SvsStore& store, const std::string& path);

/// Appends every SVS of the snapshot at `path` into `store`, preserving
/// creation order (ids are re-assigned densely; with an empty target store
/// they match the saved ids). Errors on magic/version mismatch or truncation
/// without touching `store` beyond the SVSs already appended.
Status LoadSvsStore(const std::string& path, core::SvsStore* store);

}  // namespace vz::io

#endif  // VZ_IO_SVS_SNAPSHOT_H_
