#include "io/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>

#include "common/crc32.h"
#include "io/binary_format.h"

namespace vz::io {

namespace {

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%010" PRIu64 ".vzwal", seq);
  return dir + "/" + name;
}

/// Parses `wal-<seq>.vzwal`; nullopt for anything else in the directory.
std::optional<uint64_t> ParseSegmentName(const std::string& name) {
  if (name.size() != 4 + 10 + 6 || name.rfind("wal-", 0) != 0 ||
      name.substr(14) != ".vzwal") {
    return std::nullopt;
  }
  uint64_t seq = 0;
  for (size_t i = 4; i < 14; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open WAL directory for fsync: " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync of WAL directory failed: " + dir);
  }
  return Status::OK();
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("WAL write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

constexpr size_t kSegmentHeaderBytes =
    2 * sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint32_t);

std::string EncodeSegmentHeader(uint64_t start_lsn) {
  BinaryWriter writer;
  writer.WriteU32(kWalMagic);
  writer.WriteU32(kWalFormatVersion);
  writer.WriteU64(start_lsn);
  writer.WriteU32(Crc32(writer.buffer()));
  return writer.buffer();
}

/// Frames one record: u32 len | payload | u32 crc32(payload).
std::string EncodeRecord(const WalRecord& record, uint64_t lsn) {
  BinaryWriter payload;
  payload.WriteU64(lsn);
  payload.WriteU64(record.session_id);
  payload.WriteU64(record.sequence);
  payload.WriteU32(record.op);
  payload.WriteU64(record.epoch);
  payload.WriteLengthPrefixedBytes(record.payload);

  BinaryWriter framed;
  framed.WriteU32(static_cast<uint32_t>(payload.buffer().size()));
  framed.WriteBytes(payload.buffer());
  framed.WriteU32(Crc32(payload.buffer()));
  return framed.buffer();
}

/// Decodes the record at the reader's position. `expected_lsn` enforces the
/// dense LSN chain; any violation (bounds, CRC, chain break) returns an
/// error — which during a salvage scan means "the valid prefix ends here".
StatusOr<WalRecord> DecodeRecord(BinaryReader* reader,
                                 uint64_t expected_lsn) {
  VZ_ASSIGN_OR_RETURN(uint32_t len, reader->ReadU32());
  if (len < kWalMinPayloadBytes || len > kWalMaxPayloadBytes) {
    return Status::DataLoss("implausible WAL record length");
  }
  if (reader->remaining() < len + sizeof(uint32_t)) {
    return Status::DataLoss("torn WAL record");
  }
  const std::string_view payload(reader->data().data() + reader->position(),
                                 len);
  VZ_RETURN_IF_ERROR(reader->Skip(len));
  VZ_ASSIGN_OR_RETURN(uint32_t crc, reader->ReadU32());
  if (crc != Crc32(payload)) {
    return Status::DataLoss("WAL record checksum mismatch");
  }
  BinaryReader body{std::string(payload)};
  WalRecord record;
  VZ_ASSIGN_OR_RETURN(record.lsn, body.ReadU64());
  VZ_ASSIGN_OR_RETURN(record.session_id, body.ReadU64());
  VZ_ASSIGN_OR_RETURN(record.sequence, body.ReadU64());
  VZ_ASSIGN_OR_RETURN(record.op, body.ReadU32());
  VZ_ASSIGN_OR_RETURN(record.epoch, body.ReadU64());
  VZ_ASSIGN_OR_RETURN(record.payload, body.ReadLengthPrefixedBytes());
  if (!body.AtEnd()) {
    return Status::DataLoss("trailing bytes inside WAL record payload");
  }
  if (record.lsn != expected_lsn) {
    return Status::DataLoss("WAL LSN chain broken");
  }
  return record;
}

}  // namespace

Wal::Wal(const WalOptions& options) : options_(options) {}

Wal::~Wal() {
  // Final flush first, so any WaitDurable waiter is released by genuine
  // durability rather than by the shutdown flag.
  (void)Sync();
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    stop_ = true;
    sync_cv_.notify_all();
  }
  if (sync_thread_.joinable()) sync_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (Segment& segment : segments_) {
    if (segment.fd >= 0) {
      ::close(segment.fd);
      segment.fd = -1;
    }
  }
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const WalOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WAL directory must not be empty");
  }
  std::unique_ptr<Wal> wal(new Wal(options));
  VZ_RETURN_IF_ERROR(wal->OpenDir());
  VZ_RETURN_IF_ERROR(wal->ScanAndSalvage());
  {
    std::lock_guard<std::mutex> lock(wal->sync_mu_);
    wal->appended_lsn_ = wal->last_lsn_;
    wal->durable_lsn_ = wal->last_lsn_;  // recovered bytes came from disk
  }
  wal->sync_thread_ = std::thread([w = wal.get()] { w->SyncLoop(); });
  return wal;
}

Status Wal::OpenDir() {
  struct stat st;
  if (::stat(options_.dir.c_str(), &st) != 0) {
    if (::mkdir(options_.dir.c_str(), 0777) != 0) {
      return Status::Internal("cannot create WAL directory: " + options_.dir);
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("WAL path is not a directory: " +
                                   options_.dir);
  }
  return Status::OK();
}

Status Wal::ScanAndSalvage() {
  std::vector<uint64_t> seqs;
  {
    DIR* dir = ::opendir(options_.dir.c_str());
    if (dir == nullptr) {
      return Status::Internal("cannot list WAL directory: " + options_.dir);
    }
    while (struct dirent* entry = ::readdir(dir)) {
      if (auto seq = ParseSegmentName(entry->d_name)) seqs.push_back(*seq);
    }
    ::closedir(dir);
  }
  std::sort(seqs.begin(), seqs.end());

  last_lsn_ = options_.start_lsn;
  base_lsn_ = options_.start_lsn;
  uint64_t expected_start = options_.start_lsn;
  bool first = true;
  bool tail_found = false;  // everything after the torn point is dropped

  for (size_t i = 0; i < seqs.size(); ++i) {
    const std::string path = SegmentPath(options_.dir, seqs[i]);
    auto reader_or = BinaryReader::FromFile(path);
    if (!reader_or.ok()) {
      return Status::Internal("cannot read WAL segment " + path + ": " +
                              reader_or.status().message());
    }
    BinaryReader reader = std::move(*reader_or);
    const uint64_t file_bytes = reader.data().size();

    Segment segment;
    segment.seq = seqs[i];
    segment.path = path;

    bool header_ok = !tail_found;
    if (header_ok) {
      auto magic = reader.ReadU32();
      auto version = reader.ReadU32();
      auto start = reader.ReadU64();
      auto crc = reader.ReadU32();
      header_ok = magic.ok() && version.ok() && start.ok() && crc.ok() &&
                  *magic == kWalMagic && *version == kWalFormatVersion;
      if (header_ok) {
        BinaryWriter check;
        check.WriteU32(*magic);
        check.WriteU32(*version);
        check.WriteU64(*start);
        header_ok = *crc == Crc32(check.buffer());
      }
      if (header_ok && !first && *start != expected_start) {
        header_ok = false;  // hole between segments: stranded data
      }
      if (header_ok && first) {
        // The first retained segment defines the log's base; a checkpoint
        // below it is fine (those records were compacted), above it is the
        // caller's gap to detect.
        base_lsn_ = *start;
        last_lsn_ = *start;
        expected_start = *start;
      }
      if (header_ok) segment.start_lsn = *start;
    }
    if (!header_ok) {
      // Torn header or a segment stranded past a torn tail: drop the file.
      stats_.salvaged_bytes += file_bytes;
      tail_found = true;
      ::remove(path.c_str());
      continue;
    }
    first = false;

    // Decode records until the chain breaks; that offset is the valid
    // extent.
    uint64_t lsn = segment.start_lsn;
    size_t valid_end = reader.position();
    while (!reader.AtEnd()) {
      auto record = DecodeRecord(&reader, lsn + 1);
      if (!record.ok()) break;
      ++lsn;
      valid_end = reader.position();
    }
    segment.last_lsn = lsn;
    segment.record_bytes = valid_end - kSegmentHeaderBytes;
    if (valid_end < file_bytes) {
      stats_.salvaged_bytes += file_bytes - valid_end;
      if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
        return Status::Internal("cannot truncate torn WAL tail: " + path);
      }
      tail_found = true;  // later segments are stranded past this tear
    }
    expected_start = lsn;
    last_lsn_ = lsn;
    next_segment_seq_ = segment.seq + 1;
    segments_.push_back(std::move(segment));
  }

  if (!segments_.empty() && last_lsn_ < options_.start_lsn) {
    // Everything recovered predates the checkpoint cut (a torn tail ate
    // records the checkpoint already folded in). Those bytes are superseded:
    // drop them and restart numbering at the cut, or new appends would
    // collide with LSNs the checkpoint owns.
    for (Segment& segment : segments_) {
      stats_.salvaged_bytes += kSegmentHeaderBytes + segment.record_bytes;
      ::remove(segment.path.c_str());
    }
    segments_.clear();
    last_lsn_ = options_.start_lsn;
    base_lsn_ = options_.start_lsn;
  }
  if (segments_.empty()) {
    VZ_ASSIGN_OR_RETURN(Segment segment,
                        CreateSegment(next_segment_seq_++, last_lsn_));
    segments_.push_back(std::move(segment));
  } else {
    // Reopen the tail segment for appends.
    Segment& tail = segments_.back();
    tail.fd = ::open(tail.path.c_str(), O_WRONLY);
    if (tail.fd < 0) {
      return Status::Internal("cannot reopen WAL tail segment: " + tail.path);
    }
    if (::lseek(tail.fd, 0, SEEK_END) < 0) {
      return Status::Internal("cannot seek WAL tail segment: " + tail.path);
    }
    // Persist the salvage truncation before accepting new appends.
    if (::fsync(tail.fd) != 0) {
      return Status::Internal("cannot fsync WAL tail segment: " + tail.path);
    }
  }
  stats_.base_lsn = base_lsn_;
  return Status::OK();
}

StatusOr<Wal::Segment> Wal::CreateSegment(uint64_t seq, uint64_t start_lsn) {
  Segment segment;
  segment.seq = seq;
  segment.path = SegmentPath(options_.dir, seq);
  segment.start_lsn = start_lsn;
  segment.last_lsn = start_lsn;
  segment.fd = ::open(segment.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                      0666);
  if (segment.fd < 0) {
    return Status::Internal("cannot create WAL segment: " + segment.path);
  }
  const std::string header = EncodeSegmentHeader(start_lsn);
  if (Status s = WriteAll(segment.fd, header.data(), header.size());
      !s.ok()) {
    ::close(segment.fd);
    return s;
  }
  if (::fsync(segment.fd) != 0) {
    ::close(segment.fd);
    return Status::Internal("cannot fsync new WAL segment: " + segment.path);
  }
  // The file name itself must survive a crash.
  VZ_RETURN_IF_ERROR(FsyncDir(options_.dir));
  ++stats_.segments_created;
  return segment;
}

Status Wal::RotateLocked() {
  Segment& tail = segments_.back();
  // Seal: flush the old segment completely so the sync loop only ever has
  // to fsync the open one, then advance the durability frontier over it.
  if (tail.fd >= 0) {
    if (::fsync(tail.fd) != 0) {
      return Status::Internal("cannot fsync sealed WAL segment: " +
                              tail.path);
    }
    ::close(tail.fd);
    tail.fd = -1;
  }
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (tail.last_lsn > durable_lsn_) {
      durable_lsn_ = tail.last_lsn;
      ++stats_.fsyncs;
      sync_cv_.notify_all();
    }
  }
  VZ_ASSIGN_OR_RETURN(Segment fresh,
                      CreateSegment(next_segment_seq_++, tail.last_lsn));
  segments_.push_back(std::move(fresh));
  return Status::OK();
}

StatusOr<uint64_t> Wal::Append(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t lsn = record.lsn == 0 ? last_lsn_ + 1 : record.lsn;
  if (lsn != last_lsn_ + 1) {
    return Status::InvalidArgument(
        "WAL append breaks the LSN chain: got " + std::to_string(lsn) +
        ", expected " + std::to_string(last_lsn_ + 1));
  }
  if (record.payload.size() > kWalMaxPayloadBytes) {
    return Status::InvalidArgument("WAL record payload too large");
  }
  const std::string framed = EncodeRecord(record, lsn);
  if (segments_.back().record_bytes + framed.size() >
          options_.segment_bytes &&
      segments_.back().record_bytes > 0) {
    VZ_RETURN_IF_ERROR(RotateLocked());
  }
  Segment& tail = segments_.back();
  VZ_RETURN_IF_ERROR(WriteAll(tail.fd, framed.data(), framed.size()));
  tail.record_bytes += framed.size();
  tail.last_lsn = lsn;
  last_lsn_ = lsn;
  ++stats_.appends;
  stats_.appended_bytes += framed.size();
  {
    std::lock_guard<std::mutex> sync_lock(sync_mu_);
    appended_lsn_ = lsn;
    sync_cv_.notify_all();  // wake the sync loop (and long-poll waiters)
  }
  return lsn;
}

Status Wal::SyncOpenSegmentLocked(uint64_t target_lsn) {
  // `mu_` held. Everything up to `target_lsn` was fully written before the
  // caller sampled it, so one fsync of the open segment covers it (sealed
  // segments were flushed at rotation).
  Segment& tail = segments_.back();
  if (options_.fsync_interval_ms >= 0 && tail.fd >= 0) {
    if (::fsync(tail.fd) != 0) {
      return Status::Internal("WAL fsync failed: " + tail.path);
    }
  }
  std::lock_guard<std::mutex> lock(sync_mu_);
  if (target_lsn > durable_lsn_) {
    durable_lsn_ = target_lsn;
    ++stats_.fsyncs;
    sync_cv_.notify_all();
  }
  return Status::OK();
}

void Wal::SyncLoop() {
  for (;;) {
    uint64_t target = 0;
    {
      std::unique_lock<std::mutex> lock(sync_mu_);
      sync_cv_.wait(lock,
                    [this] { return stop_ || appended_lsn_ > durable_lsn_; });
      if (stop_) return;  // destructor does the final flush
      target = appended_lsn_;
    }
    // Group-commit gather window: appends racing this sleep share the fsync.
    if (options_.fsync_interval_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.fsync_interval_ms));
    }
    std::lock_guard<std::mutex> lock(mu_);
    {
      std::lock_guard<std::mutex> sync_lock(sync_mu_);
      target = std::max(target, appended_lsn_);
    }
    (void)SyncOpenSegmentLocked(target);  // failure leaves waiters blocked
                                          // until the next attempt
  }
}

Status Wal::WaitDurable(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  sync_cv_.wait(lock, [this, lsn] { return stop_ || durable_lsn_ >= lsn; });
  return Status::OK();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> sync_lock(sync_mu_);
    target = appended_lsn_;
  }
  return SyncOpenSegmentLocked(target);
}

bool Wal::WaitDurablePast(uint64_t lsn, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  return sync_cv_.wait_for(
      lock, std::chrono::milliseconds(std::max<int64_t>(timeout_ms, 0)),
      [this, lsn] { return stop_ || durable_lsn_ > lsn; });
}

StatusOr<std::vector<WalRecord>> Wal::ReadSegment(const Segment& segment,
                                                  uint64_t from_lsn,
                                                  uint64_t upto_lsn,
                                                  size_t max_records) const {
  VZ_ASSIGN_OR_RETURN(BinaryReader reader,
                      BinaryReader::FromFile(segment.path));
  VZ_RETURN_IF_ERROR(reader.Skip(kSegmentHeaderBytes));
  std::vector<WalRecord> records;
  uint64_t lsn = segment.start_lsn;
  const size_t valid_end = kSegmentHeaderBytes + segment.record_bytes;
  while (reader.position() < valid_end && lsn < segment.last_lsn &&
         records.size() < max_records) {
    VZ_ASSIGN_OR_RETURN(WalRecord record, DecodeRecord(&reader, lsn + 1));
    ++lsn;
    if (record.lsn > upto_lsn) break;
    if (record.lsn > from_lsn) records.push_back(std::move(record));
  }
  return records;
}

StatusOr<std::vector<WalRecord>> Wal::ReadFrom(uint64_t from_lsn,
                                               size_t max_records) {
  uint64_t durable = 0;
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    durable = durable_lsn_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (from_lsn < base_lsn_) {
    return Status::OutOfRange(
        "WAL records up to " + std::to_string(base_lsn_) +
        " were compacted into a checkpoint; cannot ship from " +
        std::to_string(from_lsn));
  }
  std::vector<WalRecord> records;
  for (const Segment& segment : segments_) {
    if (records.size() >= max_records) break;
    if (segment.last_lsn <= from_lsn) continue;
    VZ_ASSIGN_OR_RETURN(
        std::vector<WalRecord> chunk,
        ReadSegment(segment, from_lsn, durable,
                    max_records - records.size()));
    for (WalRecord& record : chunk) records.push_back(std::move(record));
  }
  return records;
}

Status Wal::Replay(uint64_t from_lsn,
                   const std::function<Status(const WalRecord&)>& fn) {
  std::vector<Segment> segments;
  {
    std::lock_guard<std::mutex> lock(mu_);
    segments = segments_;
    for (Segment& segment : segments) segment.fd = -1;  // read-only copies
  }
  for (const Segment& segment : segments) {
    if (segment.last_lsn <= from_lsn) continue;
    VZ_ASSIGN_OR_RETURN(std::vector<WalRecord> chunk,
                        ReadSegment(segment, from_lsn, last_lsn(),
                                    segment.last_lsn - segment.start_lsn));
    for (const WalRecord& record : chunk) {
      VZ_RETURN_IF_ERROR(fn(record));
    }
  }
  return Status::OK();
}

Status Wal::Compact(uint64_t upto_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (upto_lsn > last_lsn_) {
    return Status::InvalidArgument("cannot compact past the log end");
  }
  if (segments_.back().last_lsn <= upto_lsn &&
      segments_.back().record_bytes > 0) {
    VZ_RETURN_IF_ERROR(RotateLocked());
  }
  size_t removed = 0;
  while (segments_.size() > 1 && segments_[0].last_lsn <= upto_lsn) {
    ::remove(segments_[0].path.c_str());
    ++removed;
    ++stats_.segments_deleted;
    segments_.erase(segments_.begin());
  }
  if (removed > 0) {
    VZ_RETURN_IF_ERROR(FsyncDir(options_.dir));
  }
  base_lsn_ = segments_.front().start_lsn;
  stats_.base_lsn = base_lsn_;
  // The checkpoint supersedes the compacted records: they are durable by
  // definition even if their segment fsync never ran.
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  if (upto_lsn > durable_lsn_) {
    durable_lsn_ = upto_lsn;
    sync_cv_.notify_all();
  }
  return Status::OK();
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_lsn_;
}

uint64_t Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lock(sync_mu_);
  return durable_lsn_;
}

uint64_t Wal::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_;
}

uint64_t Wal::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const Segment& segment : segments_) bytes += segment.record_bytes;
  return bytes;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats stats = stats_;
  stats.last_lsn = last_lsn_;
  stats.base_lsn = base_lsn_;
  stats.live_bytes = 0;
  for (const Segment& segment : segments_) {
    stats.live_bytes += segment.record_bytes;
  }
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  stats.durable_lsn = durable_lsn_;
  return stats;
}

// --- Checkpoint manifest -------------------------------------------------

std::string WalCheckpointMetaPath(const std::string& dir, uint64_t lsn) {
  char name[64];
  std::snprintf(name, sizeof(name), "checkpoint-%016" PRIx64 ".meta", lsn);
  return dir + "/" + name;
}

std::string WalCheckpointSnapshotPath(const std::string& dir, uint64_t lsn) {
  char name[64];
  std::snprintf(name, sizeof(name), "checkpoint-%016" PRIx64 ".vzss", lsn);
  return dir + "/" + name;
}

Status SaveWalCheckpointMeta(const WalCheckpoint& checkpoint,
                             const std::string& path) {
  BinaryWriter writer;
  writer.WriteU32(kWalCheckpointMagic);
  writer.WriteU32(kWalCheckpointVersion);
  writer.WriteU64(checkpoint.lsn);
  writer.WriteU64(checkpoint.epoch);
  writer.WriteI64(checkpoint.now_ms);
  writer.WriteU64(checkpoint.ingest.frames_offered);
  writer.WriteU64(checkpoint.ingest.keyframes_selected);
  writer.WriteU64(checkpoint.ingest.features_extracted);
  writer.WriteU64(checkpoint.ingest.svs_created);
  writer.WriteU64(checkpoint.ingest.raw_feature_bytes);
  writer.WriteU64(checkpoint.ingest.frames_rejected);
  writer.WriteU64(checkpoint.ingest.out_of_order_dropped);
  writer.WriteU64(checkpoint.ingest.duplicates_dropped);
  writer.WriteU64(checkpoint.ingest.objects_quarantined);
  writer.WriteU64(checkpoint.cameras.size());
  for (const WalCheckpoint::Camera& camera : checkpoint.cameras) {
    writer.WriteString(camera.camera);
    writer.WriteU64(camera.stats.frames_offered);
    writer.WriteU64(camera.stats.frames_accepted);
    writer.WriteU64(camera.stats.frames_rejected);
    writer.WriteU64(camera.stats.out_of_order_dropped);
    writer.WriteU64(camera.stats.duplicates_dropped);
    writer.WriteU64(camera.stats.objects_quarantined);
    writer.WriteI64(camera.stats.last_frame_ms);
    writer.WriteI64(camera.last_frame_id);
    writer.WriteU64(camera.expected_dim);
  }
  writer.WriteU64(checkpoint.sessions.size());
  for (const WalCheckpoint::Session& session : checkpoint.sessions) {
    writer.WriteU64(session.session_id);
    writer.WriteU64(session.evicted_up_to);
    writer.WriteU64(session.responses.size());
    for (const auto& [sequence, response] : session.responses) {
      writer.WriteU64(sequence);
      writer.WriteLengthPrefixedBytes(response);
    }
  }
  writer.WriteU32(Crc32(writer.buffer()));
  return writer.Flush(path);
}

StatusOr<WalCheckpoint> LoadWalCheckpointMeta(const std::string& path) {
  VZ_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  if (reader.data().size() < sizeof(uint32_t)) {
    return Status::DataLoss("checkpoint manifest truncated: " + path);
  }
  const std::string_view sealed(reader.data().data(),
                                reader.data().size() - sizeof(uint32_t));
  {
    BinaryReader crc_reader{std::string(
        reader.data().data() + sealed.size(), sizeof(uint32_t))};
    VZ_ASSIGN_OR_RETURN(uint32_t crc, crc_reader.ReadU32());
    if (crc != Crc32(sealed)) {
      return Status::DataLoss("checkpoint manifest checksum mismatch: " +
                              path);
    }
  }
  WalCheckpoint checkpoint;
  VZ_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  VZ_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (magic != kWalCheckpointMagic) {
    return Status::DataLoss("not a checkpoint manifest: " + path);
  }
  if (version != kWalCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  VZ_ASSIGN_OR_RETURN(checkpoint.lsn, reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(checkpoint.epoch, reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(checkpoint.now_ms, reader.ReadI64());
  VZ_ASSIGN_OR_RETURN(checkpoint.ingest.frames_offered, reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(checkpoint.ingest.keyframes_selected, reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(checkpoint.ingest.features_extracted, reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(checkpoint.ingest.svs_created, reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(uint64_t raw_bytes, reader.ReadU64());
  checkpoint.ingest.raw_feature_bytes = static_cast<size_t>(raw_bytes);
  VZ_ASSIGN_OR_RETURN(checkpoint.ingest.frames_rejected, reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(checkpoint.ingest.out_of_order_dropped,
                      reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(checkpoint.ingest.duplicates_dropped, reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(checkpoint.ingest.objects_quarantined,
                      reader.ReadU64());
  VZ_ASSIGN_OR_RETURN(uint64_t camera_count, reader.ReadU64());
  for (uint64_t i = 0; i < camera_count; ++i) {
    WalCheckpoint::Camera camera;
    VZ_ASSIGN_OR_RETURN(camera.camera, reader.ReadString());
    VZ_ASSIGN_OR_RETURN(camera.stats.frames_offered, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(camera.stats.frames_accepted, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(camera.stats.frames_rejected, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(camera.stats.out_of_order_dropped, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(camera.stats.duplicates_dropped, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(camera.stats.objects_quarantined, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(camera.stats.last_frame_ms, reader.ReadI64());
    VZ_ASSIGN_OR_RETURN(camera.last_frame_id, reader.ReadI64());
    VZ_ASSIGN_OR_RETURN(camera.expected_dim, reader.ReadU64());
    checkpoint.cameras.push_back(std::move(camera));
  }
  VZ_ASSIGN_OR_RETURN(uint64_t session_count, reader.ReadU64());
  for (uint64_t i = 0; i < session_count; ++i) {
    WalCheckpoint::Session session;
    VZ_ASSIGN_OR_RETURN(session.session_id, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(session.evicted_up_to, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(uint64_t response_count, reader.ReadU64());
    for (uint64_t j = 0; j < response_count; ++j) {
      VZ_ASSIGN_OR_RETURN(uint64_t sequence, reader.ReadU64());
      VZ_ASSIGN_OR_RETURN(std::string response,
                          reader.ReadLengthPrefixedBytes());
      session.responses.emplace_back(sequence, std::move(response));
    }
    checkpoint.sessions.push_back(std::move(session));
  }
  return checkpoint;
}

StatusOr<std::vector<uint64_t>> ListWalCheckpointLsns(
    const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::Internal("cannot list WAL directory: " + dir);
  }
  std::vector<uint64_t> lsns;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() != 11 + 16 + 5 || name.rfind("checkpoint-", 0) != 0 ||
        name.substr(27) != ".meta") {
      continue;
    }
    uint64_t lsn = 0;
    bool valid = true;
    for (size_t i = 11; i < 27; ++i) {
      const char c = name[i];
      uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a') + 10;
      } else {
        valid = false;
        break;
      }
      lsn = (lsn << 4) | digit;
    }
    if (valid) lsns.push_back(lsn);
  }
  ::closedir(handle);
  std::sort(lsns.begin(), lsns.end());
  return lsns;
}

void RemoveWalCheckpointsBelow(const std::string& dir, uint64_t keep_lsn) {
  auto lsns = ListWalCheckpointLsns(dir);
  if (!lsns.ok()) return;
  for (uint64_t lsn : *lsns) {
    if (lsn >= keep_lsn) continue;
    ::remove(WalCheckpointMetaPath(dir, lsn).c_str());
    ::remove(WalCheckpointSnapshotPath(dir, lsn).c_str());
  }
}

}  // namespace vz::io
