#ifndef VZ_IO_BINARY_FORMAT_H_
#define VZ_IO_BINARY_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace vz::io {

/// Little-endian binary writer over an in-memory buffer. All multi-byte
/// integers are fixed-width little-endian; strings and arrays are
/// length-prefixed with a u64. The format carries no pointers, so snapshots
/// are portable across runs and platforms of the same endianness family.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloats(const std::vector<float>& values);
  /// As above from a raw buffer (e.g. an SoA FeatureMap row); identical wire
  /// format.
  void WriteFloats(const float* values, size_t count);
  /// Appends raw bytes with no length prefix (for pre-encoded payloads).
  void WriteBytes(const std::string& bytes) { buffer_.append(bytes); }
  /// Appends `bytes` behind a u64 length prefix, so a pre-encoded payload
  /// can be embedded in a stream and skipped or re-extracted without
  /// decoding it — the framing used by the network wire codec. The matching
  /// read is `BinaryReader::ReadLengthPrefixedBytes`.
  void WriteLengthPrefixedBytes(const std::string& bytes);

  const std::string& buffer() const { return buffer_; }

  /// Writes the buffer to `path` atomically: the bytes go to `path + ".tmp"`
  /// first, are fsync'd to stable storage, and the temp file is then renamed
  /// over `path` (an atomic replacement on POSIX filesystems). A crash at any
  /// point leaves either the old file or the new file, never a torn mix.
  /// Write, fsync and close failures are all propagated as `Internal`; the
  /// temp file is removed on any failure.
  Status Flush(const std::string& path) const;

 private:
  std::string buffer_;
};

/// Matching reader; every accessor validates bounds and returns OutOfRange
/// on truncated input instead of reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  /// Loads a file into a reader.
  static StatusOr<BinaryReader> FromFile(const std::string& path);

  StatusOr<uint8_t> ReadU8();
  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<int64_t> ReadI64();
  StatusOr<float> ReadF32();
  StatusOr<double> ReadF64();
  StatusOr<std::string> ReadString();
  StatusOr<std::vector<float>> ReadFloats();
  /// Extracts a blob written by `WriteLengthPrefixedBytes`. Overflow-safe:
  /// a corrupted length near 2^64 fails the bounds check instead of
  /// wrapping, so a truncated or bit-flipped stream yields OutOfRange,
  /// never a wild read. (Same wire layout as `ReadString`; this name exists
  /// so payload-embedding call sites read as byte-level framing.)
  StatusOr<std::string> ReadLengthPrefixedBytes();

  /// Advances past `bytes` without decoding them; OutOfRange if fewer remain.
  Status Skip(size_t bytes);

  bool AtEnd() const { return position_ >= data_.size(); }
  size_t remaining() const { return data_.size() - position_; }
  /// Current read offset — lets checksummed formats know how many bytes a
  /// record consumed.
  size_t position() const { return position_; }
  /// The full underlying buffer (for whole-file checksums).
  const std::string& data() const { return data_; }

 private:
  Status Need(size_t bytes) const;

  std::string data_;
  size_t position_ = 0;
};

}  // namespace vz::io

#endif  // VZ_IO_BINARY_FORMAT_H_
