#include "io/svs_snapshot.h"

#include <utility>

#include "io/binary_format.h"

namespace vz::io {

namespace {

void WriteFeatureMap(BinaryWriter* writer, const FeatureMap& map) {
  writer->WriteU64(map.size());
  for (size_t i = 0; i < map.size(); ++i) {
    writer->WriteFloats(map.vector(i).components());
    writer->WriteF64(map.weight(i));
  }
}

StatusOr<FeatureMap> ReadFeatureMap(BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  FeatureMap map;
  for (uint64_t i = 0; i < count; ++i) {
    VZ_ASSIGN_OR_RETURN(std::vector<float> values, reader->ReadFloats());
    VZ_ASSIGN_OR_RETURN(double weight, reader->ReadF64());
    VZ_RETURN_IF_ERROR(map.Add(FeatureVector(std::move(values)), weight));
  }
  return map;
}

void WriteRepresentative(BinaryWriter* writer,
                         const core::Representative& rep) {
  writer->WriteU64(rep.size());
  for (const core::WeightedCenter& center : rep.centers()) {
    writer->WriteFloats(center.center.components());
    writer->WriteF64(center.weight);
    writer->WriteF64(center.boundary);
    writer->WriteF64(center.mean_member_distance);
    writer->WriteI64(center.last_hit_ms);
  }
}

StatusOr<core::Representative> ReadRepresentative(BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  std::vector<core::WeightedCenter> centers;
  centers.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    core::WeightedCenter center;
    VZ_ASSIGN_OR_RETURN(std::vector<float> values, reader->ReadFloats());
    center.center = FeatureVector(std::move(values));
    VZ_ASSIGN_OR_RETURN(center.weight, reader->ReadF64());
    VZ_ASSIGN_OR_RETURN(center.boundary, reader->ReadF64());
    VZ_ASSIGN_OR_RETURN(center.mean_member_distance, reader->ReadF64());
    VZ_ASSIGN_OR_RETURN(center.last_hit_ms, reader->ReadI64());
    centers.push_back(std::move(center));
  }
  return core::Representative(std::move(centers));
}

}  // namespace

Status SaveSvsStore(const core::SvsStore& store, const std::string& path) {
  BinaryWriter writer;
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotVersion);
  const auto ids = store.AllIds();
  writer.WriteU64(ids.size());
  for (core::SvsId id : ids) {
    VZ_ASSIGN_OR_RETURN(const core::Svs* svs, store.Get(id));
    writer.WriteString(svs->camera());
    writer.WriteI64(svs->start_ms());
    writer.WriteI64(svs->end_ms());
    WriteFeatureMap(&writer, svs->features());
    WriteRepresentative(&writer, svs->representative());
    writer.WriteU64(svs->frame_ids().size());
    for (int64_t frame : svs->frame_ids()) writer.WriteI64(frame);
    writer.WriteU64(svs->encoded_bytes());
    writer.WriteU64(svs->access_count());
    writer.WriteI64(svs->last_access_ms());
  }
  return writer.Flush(path);
}

Status LoadSvsStore(const std::string& path, core::SvsStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("LoadSvsStore requires a store");
  }
  VZ_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  VZ_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a Video-zilla snapshot: " + path);
  }
  VZ_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  for (uint64_t i = 0; i < count; ++i) {
    VZ_ASSIGN_OR_RETURN(std::string camera, reader.ReadString());
    VZ_ASSIGN_OR_RETURN(int64_t start_ms, reader.ReadI64());
    VZ_ASSIGN_OR_RETURN(int64_t end_ms, reader.ReadI64());
    VZ_ASSIGN_OR_RETURN(FeatureMap features, ReadFeatureMap(&reader));
    VZ_ASSIGN_OR_RETURN(core::Representative rep,
                        ReadRepresentative(&reader));
    VZ_ASSIGN_OR_RETURN(uint64_t frame_count, reader.ReadU64());
    std::vector<int64_t> frames;
    frames.reserve(frame_count);
    for (uint64_t f = 0; f < frame_count; ++f) {
      VZ_ASSIGN_OR_RETURN(int64_t frame, reader.ReadI64());
      frames.push_back(frame);
    }
    VZ_ASSIGN_OR_RETURN(uint64_t bytes, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(uint64_t accesses, reader.ReadU64());
    VZ_ASSIGN_OR_RETURN(int64_t last_access, reader.ReadI64());

    const core::SvsId id =
        store->Create(std::move(camera), start_ms, end_ms, std::move(features));
    VZ_ASSIGN_OR_RETURN(core::Svs * svs, store->GetMutable(id));
    svs->set_representative(std::move(rep));
    svs->set_frame_ids(std::move(frames));
    svs->set_encoded_bytes(bytes);
    svs->RestoreAccessStats(accesses, last_access);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return Status::OK();
}

}  // namespace vz::io
