#include "io/svs_snapshot.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "io/binary_format.h"

namespace vz::io {

namespace {

void WriteFeatureMap(BinaryWriter* writer, const FeatureMap& map) {
  writer->WriteU64(map.size());
  for (size_t i = 0; i < map.size(); ++i) {
    writer->WriteFloats(map.row(i), map.dim());
    writer->WriteF64(map.weight(i));
  }
}

StatusOr<FeatureMap> ReadFeatureMap(BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  FeatureMap map;
  for (uint64_t i = 0; i < count; ++i) {
    VZ_ASSIGN_OR_RETURN(std::vector<float> values, reader->ReadFloats());
    VZ_ASSIGN_OR_RETURN(double weight, reader->ReadF64());
    VZ_RETURN_IF_ERROR(map.Add(values.data(), values.size(), weight));
  }
  return map;
}

void WriteRepresentative(BinaryWriter* writer,
                         const core::Representative& rep) {
  writer->WriteU64(rep.size());
  for (const core::WeightedCenter& center : rep.centers()) {
    writer->WriteFloats(center.center.components());
    writer->WriteF64(center.weight);
    writer->WriteF64(center.boundary);
    writer->WriteF64(center.mean_member_distance);
    writer->WriteI64(center.last_hit_ms);
  }
}

StatusOr<core::Representative> ReadRepresentative(BinaryReader* reader) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  std::vector<core::WeightedCenter> centers;
  // Each center takes at least its float-count header plus three doubles and
  // a timestamp; bounding the reservation by that floor keeps a corrupted
  // count from allocating gigabytes before the reads below fail.
  centers.reserve(static_cast<size_t>(
      std::min<uint64_t>(count, reader->remaining() / 40 + 1)));
  for (uint64_t i = 0; i < count; ++i) {
    core::WeightedCenter center;
    VZ_ASSIGN_OR_RETURN(std::vector<float> values, reader->ReadFloats());
    center.center = FeatureVector(std::move(values));
    VZ_ASSIGN_OR_RETURN(center.weight, reader->ReadF64());
    VZ_ASSIGN_OR_RETURN(center.boundary, reader->ReadF64());
    VZ_ASSIGN_OR_RETURN(center.mean_member_distance, reader->ReadF64());
    VZ_ASSIGN_OR_RETURN(center.last_hit_ms, reader->ReadI64());
    centers.push_back(std::move(center));
  }
  return core::Representative(std::move(centers));
}

// One SVS's fields, identical in v1 (inline) and v2 (inside a checksummed
// record payload).
void WriteSvsRecord(BinaryWriter* writer, const core::Svs& svs) {
  writer->WriteString(svs.camera());
  writer->WriteI64(svs.start_ms());
  writer->WriteI64(svs.end_ms());
  WriteFeatureMap(writer, svs.features());
  WriteRepresentative(writer, svs.representative());
  writer->WriteU64(svs.frame_ids().size());
  for (int64_t frame : svs.frame_ids()) writer->WriteI64(frame);
  writer->WriteU64(svs.encoded_bytes());
  writer->WriteU64(svs.access_count());
  writer->WriteI64(svs.last_access_ms());
}

// Decodes one SVS record and appends it to `store`.
Status ReadSvsRecord(BinaryReader* reader, core::SvsStore* store) {
  VZ_ASSIGN_OR_RETURN(std::string camera, reader->ReadString());
  VZ_ASSIGN_OR_RETURN(int64_t start_ms, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(int64_t end_ms, reader->ReadI64());
  VZ_ASSIGN_OR_RETURN(FeatureMap features, ReadFeatureMap(reader));
  VZ_ASSIGN_OR_RETURN(core::Representative rep, ReadRepresentative(reader));
  VZ_ASSIGN_OR_RETURN(uint64_t frame_count, reader->ReadU64());
  std::vector<int64_t> frames;
  // Bound the reservation by what the buffer could possibly hold; a
  // corrupted count must not trigger a giant allocation before the reads
  // below fail.
  frames.reserve(static_cast<size_t>(
      std::min<uint64_t>(frame_count, reader->remaining() / sizeof(int64_t))));
  for (uint64_t f = 0; f < frame_count; ++f) {
    VZ_ASSIGN_OR_RETURN(int64_t frame, reader->ReadI64());
    frames.push_back(frame);
  }
  VZ_ASSIGN_OR_RETURN(uint64_t bytes, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(uint64_t accesses, reader->ReadU64());
  VZ_ASSIGN_OR_RETURN(int64_t last_access, reader->ReadI64());

  const core::SvsId id =
      store->Create(std::move(camera), start_ms, end_ms, std::move(features));
  VZ_ASSIGN_OR_RETURN(core::Svs * svs, store->GetMutable(id));
  svs->set_representative(std::move(rep));
  svs->set_frame_ids(std::move(frames));
  svs->set_encoded_bytes(bytes);
  svs->RestoreAccessStats(accesses, last_access);
  return Status::OK();
}

// Copies every SVS of `src` onto the end of `dst` (ids re-assigned densely).
Status AppendStore(const core::SvsStore& src, core::SvsStore* dst) {
  for (core::SvsId id : src.AllIds()) {
    VZ_ASSIGN_OR_RETURN(const core::Svs* svs, src.Get(id));
    const core::SvsId new_id = dst->Create(svs->camera(), svs->start_ms(),
                                           svs->end_ms(), svs->features());
    VZ_ASSIGN_OR_RETURN(core::Svs * copy, dst->GetMutable(new_id));
    copy->set_representative(svs->representative());
    copy->set_frame_ids(svs->frame_ids());
    copy->set_encoded_bytes(svs->encoded_bytes());
    copy->RestoreAccessStats(svs->access_count(), svs->last_access_ms());
  }
  return Status::OK();
}

// Decodes a v1 body (records inline after the header) into `store`.
// In salvage mode the first failing record ends the load successfully.
Status LoadBodyV1(BinaryReader* reader, core::SvsStore* store,
                  const SnapshotLoadOptions& options,
                  SnapshotLoadReport* report) {
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  report->records_expected = count;
  for (uint64_t i = 0; i < count; ++i) {
    const Status record = ReadSvsRecord(reader, store);
    if (!record.ok()) {
      if (!options.salvage) return record;
      report->salvaged = true;
      return Status::OK();
    }
    ++report->records_loaded;
  }
  if (!reader->AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return Status::OK();
}

// Decodes a v2 body (length-prefixed, CRC-framed records + file checksum).
Status LoadBodyV2(BinaryReader* reader, core::SvsStore* store,
                  const SnapshotLoadOptions& options,
                  SnapshotLoadReport* report) {
  const std::string& data = reader->data();
  // File-level checksum first: the final u32 covers every preceding byte, so
  // any bit flip — in a payload, a length field or the header — is caught
  // before records are trusted. A torn file (missing or short footer) fails
  // here too; salvage mode skips straight to per-record recovery instead.
  bool file_intact = false;
  if (data.size() >= sizeof(uint32_t)) {
    const size_t body = data.size() - sizeof(uint32_t);
    uint32_t stored = 0;
    std::memcpy(&stored, data.data() + body, sizeof(stored));
    file_intact = Crc32(data.data(), body) == stored;
  }
  if (!file_intact && !options.salvage) {
    return Status::InvalidArgument("snapshot file checksum mismatch");
  }
  VZ_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  report->records_expected = count;
  for (uint64_t i = 0; i < count; ++i) {
    const auto record = [&]() -> Status {
      VZ_ASSIGN_OR_RETURN(uint64_t length, reader->ReadU64());
      if (length > reader->remaining()) {
        return Status::OutOfRange("truncated record");
      }
      const size_t payload_start = reader->position();
      std::string payload = data.substr(payload_start, length);
      // Advance past the payload, then check its frame CRC.
      BinaryReader payload_reader(std::move(payload));
      VZ_RETURN_IF_ERROR(reader->Skip(length));
      VZ_ASSIGN_OR_RETURN(uint32_t stored_crc, reader->ReadU32());
      if (Crc32(payload_reader.data()) != stored_crc) {
        return Status::InvalidArgument("record checksum mismatch");
      }
      VZ_RETURN_IF_ERROR(ReadSvsRecord(&payload_reader, store));
      if (!payload_reader.AtEnd()) {
        return Status::InvalidArgument("trailing bytes in record");
      }
      return Status::OK();
    }();
    if (!record.ok()) {
      if (!options.salvage) return record;
      report->salvaged = true;
      return Status::OK();
    }
    ++report->records_loaded;
  }
  if (options.salvage && !file_intact) report->salvaged = true;
  if (!options.salvage) {
    VZ_RETURN_IF_ERROR(reader->Skip(sizeof(uint32_t)));  // footer
    if (!reader->AtEnd()) {
      return Status::InvalidArgument("trailing bytes after snapshot");
    }
  }
  return Status::OK();
}

}  // namespace

Status SaveSvsStore(const core::SvsStore& store, const std::string& path) {
  BinaryWriter writer;
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotVersion);
  const auto ids = store.AllIds();
  writer.WriteU64(ids.size());
  for (core::SvsId id : ids) {
    VZ_ASSIGN_OR_RETURN(const core::Svs* svs, store.Get(id));
    BinaryWriter record;
    WriteSvsRecord(&record, *svs);
    writer.WriteU64(record.buffer().size());
    writer.WriteBytes(record.buffer());
    writer.WriteU32(Crc32(record.buffer()));
  }
  writer.WriteU32(Crc32(writer.buffer()));
  return writer.Flush(path);
}

Status SaveSvsStoreV1(const core::SvsStore& store, const std::string& path) {
  BinaryWriter writer;
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotVersionV1);
  const auto ids = store.AllIds();
  writer.WriteU64(ids.size());
  for (core::SvsId id : ids) {
    VZ_ASSIGN_OR_RETURN(const core::Svs* svs, store.Get(id));
    WriteSvsRecord(&writer, *svs);
  }
  return writer.Flush(path);
}

Status LoadSvsStore(const std::string& path, core::SvsStore* store,
                    const SnapshotLoadOptions& options,
                    SnapshotLoadReport* report) {
  if (store == nullptr) {
    return Status::InvalidArgument("LoadSvsStore requires a store");
  }
  SnapshotLoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = SnapshotLoadReport();

  VZ_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  VZ_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a Video-zilla snapshot: " + path);
  }
  VZ_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  report->version = version;

  // Decode into a scratch store so a failure at any point — truncation,
  // checksum mismatch, malformed record — leaves the caller's store exactly
  // as it was. Only a fully successful (or deliberately salvaged) decode is
  // appended.
  core::SvsStore scratch;
  Status body;
  switch (version) {
    case kSnapshotVersionV1:
      body = LoadBodyV1(&reader, &scratch, options, report);
      break;
    case kSnapshotVersion:
      body = LoadBodyV2(&reader, &scratch, options, report);
      break;
    default:
      return Status::InvalidArgument("unsupported snapshot version " +
                                     std::to_string(version));
  }
  if (!body.ok()) return body;
  return AppendStore(scratch, store);
}

}  // namespace vz::io
