#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace vz {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<UniqueFd> TcpListen(const std::string& bind_address, uint16_t port,
                             int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal(ErrnoMessage("socket"));
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + bind_address);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal(ErrnoMessage("bind " + bind_address + ":" +
                                         std::to_string(port)));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::Internal(ErrnoMessage("listen"));
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Internal(ErrnoMessage("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

StatusOr<UniqueFd> TcpAccept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return UniqueFd(fd);
    if (errno == EINTR) continue;
    // EBADF / EINVAL is what a concurrent close()/shutdown() of the
    // listening socket produces — the server's normal stop signal.
    if (errno == EBADF || errno == EINVAL) {
      return Status::Cancelled("listener closed");
    }
    return Status::Internal(ErrnoMessage("accept"));
  }
}

StatusOr<UniqueFd> TcpConnect(const std::string& host, uint16_t port,
                              int64_t timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0 ||
      result == nullptr) {
    return Status::NotFound("cannot resolve host: " + host);
  }
  UniqueFd fd(::socket(result->ai_family, result->ai_socktype,
                       result->ai_protocol));
  if (!fd.valid()) {
    ::freeaddrinfo(result);
    return Status::Internal(ErrnoMessage("socket"));
  }
  // Non-blocking connect + poll gives the timeout; the socket is restored to
  // blocking mode afterwards (the framing layer reads synchronously).
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  (void)::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd.get(), result->ai_addr, result->ai_addrlen);
  ::freeaddrinfo(result);
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Internal(ErrnoMessage("connect " + host + ":" + service));
  }
  if (rc != 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int timeout = timeout_ms <= 0 ? -1 : static_cast<int>(timeout_ms);
    do {
      rc = ::poll(&pfd, 1, timeout);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      // A transport-level failure, NOT a shed: the server never answered, so
      // it must not be conflated with an explicit kResourceExhausted
      // backpressure signal.
      return Status::Unavailable("connect timed out: " + host + ":" +
                                 service);
    }
    if (rc < 0) return Status::Internal(ErrnoMessage("poll"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      errno = err;
      return Status::Internal(ErrnoMessage("connect " + host + ":" + service));
    }
  }
  (void)::fcntl(fd.get(), F_SETFL, flags);
  (void)SetTcpNoDelay(fd.get());
  return fd;
}

StatusOr<bool> WaitReadable(int fd, int64_t timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int timeout = timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms);
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Status::Internal(ErrnoMessage("poll"));
  if (rc == 0) return false;
  // POLLHUP/POLLERR still count as readable: the next recv() observes the
  // close/reset and reports it precisely.
  return true;
}

namespace {

/// Polls `fd` for `events` until readiness or the caller's deadline.
/// `deadline_ms < 0` waits forever. Readiness -> OK; expiry -> kUnavailable.
Status PollUntil(int fd, short events, int64_t deadline_ms,
                 const std::chrono::steady_clock::time_point& start,
                 const char* what) {
  int timeout = -1;
  if (deadline_ms >= 0) {
    const int64_t elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    const int64_t left = deadline_ms - elapsed_ms;
    if (left <= 0) {
      return Status::Unavailable(std::string(what) + " deadline expired");
    }
    timeout = static_cast<int>(left);
  }
  pollfd pfd{fd, events, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Status::Internal(ErrnoMessage("poll"));
  if (rc == 0) {
    return Status::Unavailable(std::string(what) + " deadline expired");
  }
  // POLLHUP/POLLERR count as ready: the next send/recv reports the precise
  // error.
  return Status::OK();
}

}  // namespace

Status SendAll(int fd, const void* data, size_t size, int64_t timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    if (timeout_ms >= 0) {
      VZ_RETURN_IF_ERROR(PollUntil(fd, POLLOUT, timeout_ms, start, "send"));
    }
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::DataLoss(ErrnoMessage("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SendAllV(int fd, const ConstBuffer* buffers, size_t count,
                int64_t timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  // A local iovec copy: sendmsg may accept a partial byte count, after which
  // the consumed prefix must be advanced without mutating the caller's view.
  constexpr size_t kMaxIov = 64;
  iovec iov[kMaxIov];
  size_t next = 0;  // first caller buffer not yet loaded into iov
  size_t live = 0;  // iov entries still carrying unsent bytes
  while (next < count || live > 0) {
    // Top up the iovec window from the caller's buffer list.
    while (live < kMaxIov && next < count) {
      if (buffers[next].size > 0) {
        iov[live].iov_base =
            const_cast<void*>(buffers[next].data);
        iov[live].iov_len = buffers[next].size;
        ++live;
      }
      ++next;
    }
    if (live == 0) break;  // remaining buffers were all empty
    if (timeout_ms >= 0) {
      VZ_RETURN_IF_ERROR(PollUntil(fd, POLLOUT, timeout_ms, start, "send"));
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = live;
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::DataLoss(ErrnoMessage("sendmsg"));
    }
    // Advance past the accepted prefix, compacting the iovec window.
    size_t accepted = static_cast<size_t>(n);
    size_t drop = 0;
    while (drop < live && accepted >= iov[drop].iov_len) {
      accepted -= iov[drop].iov_len;
      ++drop;
    }
    if (drop < live && accepted > 0) {
      iov[drop].iov_base = static_cast<char*>(iov[drop].iov_base) + accepted;
      iov[drop].iov_len -= accepted;
    }
    if (drop > 0) {
      for (size_t i = drop; i < live; ++i) iov[i - drop] = iov[i];
      live -= drop;
    }
  }
  return Status::OK();
}

StatusOr<bool> WaitWritable(int fd, int64_t timeout_ms) {
  pollfd pfd{fd, POLLOUT, 0};
  const int timeout = timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms);
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Status::Internal(ErrnoMessage("poll"));
  if (rc == 0) return false;
  // POLLHUP/POLLERR count as writable: the next send() observes the
  // close/reset and reports it precisely.
  return true;
}

Status RecvExact(int fd, void* data, size_t size, int64_t timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    if (timeout_ms >= 0) {
      VZ_RETURN_IF_ERROR(PollUntil(fd, POLLIN, timeout_ms, start, "recv"));
    }
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::DataLoss(ErrnoMessage("recv"));
    }
    if (n == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::DataLoss("connection closed mid-message");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SetTcpNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::Internal(ErrnoMessage("setsockopt TCP_NODELAY"));
  }
  return Status::OK();
}

}  // namespace vz
