#ifndef VZ_COMMON_SOCKET_H_
#define VZ_COMMON_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/statusor.h"

namespace vz {

/// Owning wrapper over a POSIX file descriptor. Move-only; the descriptor is
/// closed exactly once, on destruction or reassignment. The networking layer
/// passes these around so no error path can leak a socket.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the descriptor (if any) now.
  void Reset();

 private:
  int fd_ = -1;
};

/// Blocking TCP helpers used by the serving layer. All functions translate
/// errno into a `Status` and never throw. Connections are loopback/LAN
/// oriented: IPv4, Nagle disabled, SIGPIPE suppressed per call.

/// Opens a listening socket bound to `bind_address:port` (port 0 lets the
/// kernel pick a free port — read it back with `LocalPort`). SO_REUSEADDR is
/// set so restarts do not trip over TIME_WAIT.
StatusOr<UniqueFd> TcpListen(const std::string& bind_address, uint16_t port,
                             int backlog = 64);

/// The port a listening socket is actually bound to.
StatusOr<uint16_t> LocalPort(int fd);

/// Accepts one connection from `listen_fd` (blocking). `kCancelled` when the
/// listening socket was shut down or closed by another thread.
StatusOr<UniqueFd> TcpAccept(int listen_fd);

/// Connects to `host:port`, failing after `timeout_ms` (<= 0 blocks
/// indefinitely). Numeric IPv4 addresses and host names both resolve.
StatusOr<UniqueFd> TcpConnect(const std::string& host, uint16_t port,
                              int64_t timeout_ms);

/// Waits until `fd` is readable. Returns true when readable, false on
/// timeout (`timeout_ms < 0` waits forever), and an error status when the
/// descriptor fails (connection reset).
StatusOr<bool> WaitReadable(int fd, int64_t timeout_ms);

/// Writes the whole buffer, looping over partial sends and EINTR. A peer
/// that closed the connection yields `kDataLoss`. With `timeout_ms >= 0` the
/// WHOLE buffer must be accepted by the kernel within the deadline
/// (measured from entry); expiry yields `kUnavailable` — a stuck reader on
/// the other end, the serving layer's slow-client signal.
Status SendAll(int fd, const void* data, size_t size, int64_t timeout_ms = -1);

/// One buffer of a gathered send.
struct ConstBuffer {
  const void* data = nullptr;
  size_t size = 0;
};

/// Gathered (writev-style) send: writes every buffer, in order, as one
/// kernel-visible byte stream, looping over partial sends and EINTR. One
/// sendmsg syscall per kernel acceptance instead of one per buffer — the
/// framing layer uses this to push a batch of frames without concatenating
/// them first. Timeout and error semantics match `SendAll`.
Status SendAllV(int fd, const ConstBuffer* buffers, size_t count,
                int64_t timeout_ms = -1);

/// Waits until `fd` is writable (or `timeout_ms` expires; 0 polls without
/// blocking). True when writable. The push-delivery path uses a zero-timeout
/// probe so a subscriber with a full receive window is skipped, never
/// waited on.
StatusOr<bool> WaitWritable(int fd, int64_t timeout_ms);

/// Reads exactly `size` bytes into `data`, looping over partial receives.
/// A clean close before the first byte is `kNotFound` (end of stream between
/// messages — the caller decides whether that is an error); a close after a
/// partial read is `kDataLoss` (torn message). With `timeout_ms >= 0` all
/// `size` bytes must arrive within the deadline (measured from entry);
/// expiry yields `kUnavailable` — a stalled or blackholed peer.
Status RecvExact(int fd, void* data, size_t size, int64_t timeout_ms = -1);

/// Disables Nagle's algorithm for request/response latency.
Status SetTcpNoDelay(int fd);

}  // namespace vz

#endif  // VZ_COMMON_SOCKET_H_
