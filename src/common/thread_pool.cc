#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace vz {

namespace {

// Shared state of one ParallelFor call. Iterations are claimed through the
// atomic `next` cursor; a helper that only gets scheduled after the range is
// drained simply no-ops. The state (including the copied closure) is kept
// alive by shared_ptr until the last helper releases it, so late no-op
// helpers never touch freed caller memory.
struct ForState {
  ForState(size_t n, std::function<void(size_t)> fn, const CancelToken* cancel)
      : n(n), fn(std::move(fn)), cancel(cancel) {}

  // Claims and runs iterations until the range is drained, a sibling failed,
  // or the cancel token fired. Called by the ParallelFor caller and by every
  // helper. The cursor MUST be checked before the token: `cancel` may point
  // at the caller's stack, which is only guaranteed alive while undrained
  // work remains — a late helper that finds the range drained must no-op
  // without touching it. Once the token fires, the claiming lane parks the
  // cursor at `n`, so every other lane (including late helpers) stops at the
  // cursor check and the loop drains promptly.
  void Drain() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      if (Cancelled(cancel)) {
        next.store(n, std::memory_order_relaxed);  // abandon the rest
        break;
      }
      try {
        fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // abandon the rest
        break;
      }
    }
  }

  const size_t n;
  const std::function<void(size_t)> fn;
  const CancelToken* const cancel;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t active_helpers = 0;
  std::exception_ptr error;
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  if (workers_.empty()) {
    (*packaged)();  // single-lane pool: run inline
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  ParallelFor(n, fn, nullptr);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const CancelToken* cancel) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (Cancelled(cancel)) return;
      fn(i);
    }
    return;
  }
  auto state = std::make_shared<ForState>(n, fn, cancel);
  const size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([state] {
        {
          std::lock_guard<std::mutex> state_lock(state->mu);
          ++state->active_helpers;
        }
        state->Drain();
        {
          std::lock_guard<std::mutex> state_lock(state->mu);
          --state->active_helpers;
        }
        state->cv.notify_all();
      });
    }
  }
  cv_.notify_all();
  state->Drain();
  // The caller's own Drain() returned, so the cursor is past the end: any
  // helper that has claimed a real iteration incremented `active_helpers`
  // first, and any helper yet to start will find the range drained and
  // no-op. Waiting for active helpers is therefore sufficient.
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->active_helpers == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const CancelToken* cancel) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < n; ++i) {
      if (Cancelled(cancel)) return;
      fn(i);
    }
    return;
  }
  pool->ParallelFor(n, fn, cancel);
}

}  // namespace vz
