#ifndef VZ_COMMON_LOGGING_H_
#define VZ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace vz {

/// Severity of a log record. Records below the global threshold are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted (default: kWarning, so
/// library internals stay quiet in tests and benchmarks).
void SetLogLevel(LogLevel level);

/// Current global minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log record; formats to stderr on destruction when its
/// severity clears the global threshold, otherwise discards everything.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace vz

/// Usage: VZ_LOG(Info) << "ingested " << n << " frames";
#define VZ_LOG(level)                                 \
  ::vz::internal_logging::LogMessage(                 \
      ::vz::LogLevel::k##level, __FILE__, __LINE__)

#endif  // VZ_COMMON_LOGGING_H_
