#ifndef VZ_COMMON_DEADLINE_H_
#define VZ_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/sim_clock.h"

namespace vz {

/// Monotonic millisecond time source consulted by `Deadline`.
///
/// Two implementations cover the two deployment contexts: `SimClockTimeSource`
/// binds deadlines to the simulated clock so tests are fully deterministic
/// (a deadline either is expired before a query starts or never fires during
/// it — simulated time does not advance while a query runs), and
/// `WallClockTimeSource` binds them to the host's steady clock for
/// `vz_cli` / benchmark use.
///
/// `NowMs` must be safe to call concurrently from cancellation checkpoints on
/// worker threads. For `SimClockTimeSource` that means the underlying
/// `SimClock` must not be advanced while queries are in flight.
class TimeSource {
 public:
  virtual ~TimeSource() = default;

  /// Current time in milliseconds. The epoch is implementation-defined; only
  /// differences are meaningful.
  virtual int64_t NowMs() const = 0;
};

/// Wall-clock adapter over `std::chrono::steady_clock`.
class WallClockTimeSource : public TimeSource {
 public:
  int64_t NowMs() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Deterministic adapter over a `SimClock` (not owned, must outlive this).
class SimClockTimeSource : public TimeSource {
 public:
  explicit SimClockTimeSource(const SimClock* clock) : clock_(clock) {}
  int64_t NowMs() const override { return clock_->NowMs(); }

 private:
  const SimClock* clock_;
};

/// A point in time after which work should stop. Default-constructed
/// deadlines are infinite (never expire). Cheap to copy; the time source is
/// borrowed and must outlive the deadline.
class Deadline {
 public:
  /// Infinite: `expired()` is always false.
  Deadline() = default;

  /// Expires once `clock->NowMs() >= clock->NowMs() + budget_ms` (evaluated
  /// now). A zero or negative budget is already expired.
  static Deadline AfterMs(const TimeSource* clock, int64_t budget_ms) {
    return Deadline(clock, clock->NowMs() + budget_ms);
  }

  /// Expires once `clock->NowMs() >= deadline_ms`.
  static Deadline AtMs(const TimeSource* clock, int64_t deadline_ms) {
    return Deadline(clock, deadline_ms);
  }

  bool infinite() const { return clock_ == nullptr; }

  bool expired() const {
    return clock_ != nullptr && clock_->NowMs() >= deadline_ms_;
  }

  /// Milliseconds until expiry (<= 0 when expired); INT64_MAX when infinite.
  int64_t remaining_ms() const {
    if (clock_ == nullptr) return std::numeric_limits<int64_t>::max();
    return deadline_ms_ - clock_->NowMs();
  }

  /// How far past the deadline the clock is; 0 when not yet expired.
  int64_t overshoot_ms() const {
    if (!expired()) return 0;
    return clock_->NowMs() - deadline_ms_;
  }

 private:
  Deadline(const TimeSource* clock, int64_t deadline_ms)
      : clock_(clock), deadline_ms_(deadline_ms) {}

  const TimeSource* clock_ = nullptr;
  int64_t deadline_ms_ = 0;
};

/// Shared cooperative-cancellation handle checked at the long-running
/// kernels' checkpoints (`ParallelFor`'s iteration cursor, OMD ground-matrix
/// rows, the min-cost-flow pivot loop, per-camera index scans).
///
/// A token fires when any of three things happens: `Cancel()` is called, its
/// deadline expires, or its parent token (if any) fires. Once observed
/// cancelled the state latches, so every later checkpoint is a single relaxed
/// atomic load. `cancelled()` is safe to call concurrently from any thread;
/// the token itself is neither copyable nor movable — share it by pointer.
class CancelToken {
 public:
  /// A token that only fires on explicit `Cancel()`.
  CancelToken() = default;

  /// A token that also fires when `deadline` expires or `parent` (borrowed,
  /// may be null) fires.
  explicit CancelToken(Deadline deadline, const CancelToken* parent = nullptr)
      : deadline_(deadline), parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Thread-safe, idempotent.
  void Cancel() const { cancelled_.store(true, std::memory_order_release); }

  /// True once cancellation was requested, the deadline expired, or the
  /// parent fired. Latches: never returns to false.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if ((parent_ != nullptr && parent_->cancelled()) || deadline_.expired()) {
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  const CancelToken* parent_ = nullptr;
  mutable std::atomic<bool> cancelled_{false};
};

/// Checkpoint helper: true when `token` is non-null and has fired. The
/// null-token fast path keeps legacy call sites zero-cost.
inline bool Cancelled(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

}  // namespace vz

#endif  // VZ_COMMON_DEADLINE_H_
