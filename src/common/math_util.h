#ifndef VZ_COMMON_MATH_UTIL_H_
#define VZ_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace vz {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Population variance; 0 for fewer than two values.
double Variance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile, `p` in [0, 100]; 0 for empty input.
double Percentile(std::vector<double> values, double p);

/// Empirical CDF of `values` evaluated at `points.size()` equally spaced
/// thresholds between min and max; returns (threshold, fraction<=threshold)
/// pairs. Used by the Fig. 11b style CDF benches.
std::vector<std::pair<double, double>> EmpiricalCdf(
    std::vector<double> values, size_t num_points);

/// Clamps `v` to [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

/// True if |a - b| <= tol * max(1, |a|, |b|).
inline bool AlmostEqual(double a, double b, double tol = 1e-9) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace vz

#endif  // VZ_COMMON_MATH_UTIL_H_
