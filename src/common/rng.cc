#include "common/rng.h"

#include <cmath>

namespace vz {

namespace {

// splitmix64, used to expand the single seed into xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 > 0 guaranteed by adding the smallest step.
  double u1 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace vz
