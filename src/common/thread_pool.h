#ifndef VZ_COMMON_THREAD_POOL_H_
#define VZ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"

namespace vz {

/// Fixed-size pool of worker threads shared by the parallel execution paths
/// (OMD ground-distance matrix fill, query candidate verification).
///
/// Tasks are plain closures executed FIFO. `ParallelFor` is the primary entry
/// point: the calling thread always participates in the iteration work, so
/// nested calls (a parallel query task evaluating a parallel OMD on the same
/// pool) cannot deadlock even when every worker is busy — the caller alone
/// can drain its own range.
class ThreadPool {
 public:
  /// A pool of `num_threads` execution lanes: the caller of `ParallelFor`
  /// plus `num_threads - 1` spawned workers. `num_threads == 0` means one
  /// lane per hardware thread; values are clamped to at least 1 (no workers,
  /// everything runs inline on the caller).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (spawned workers + the participating caller).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Enqueues one task. The future reports completion or rethrows the task's
  /// exception. With a single-lane pool the task runs inline. Tasks must not
  /// block on other submitted tasks (use `ParallelFor` for fork/join work).
  std::future<void> Submit(std::function<void()> task);

  /// Runs `fn(i)` for every `i` in `[0, n)` and blocks until all started
  /// iterations finished. Iterations are claimed dynamically by the caller
  /// and by helper tasks on the workers. The first exception thrown by `fn`
  /// is rethrown here and abandons the remaining iterations.
  ///
  /// Determinism is the caller's contract: have `fn` write only to slot `i`
  /// of a preallocated result array and aggregate in index order afterwards —
  /// then the outcome is identical to the serial loop regardless of thread
  /// count or schedule.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Cancellation-aware `ParallelFor`: `cancel` (may be null) is checked at
  /// the iteration cursor — once it fires, no further iteration is claimed by
  /// any lane, so all workers drain promptly; iterations already started run
  /// to completion. Slots whose iteration never ran are left untouched, which
  /// is how callers distinguish best-effort partial results. Under a
  /// simulated clock the token's state is constant for the whole call, so
  /// partial results stay bit-identical across thread counts.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const CancelToken* cancel);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// Convenience wrapper used by all call sites: runs on `pool` when it offers
/// real parallelism, otherwise (including `pool == nullptr`) executes the
/// plain serial loop in index order — the exact legacy semantics that the
/// `num_threads = 1` configuration guarantees.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Cancellation-aware wrapper: the serial fallback checks `cancel` before
/// every iteration (so a loop cancelled at iteration k executes exactly
/// `k + 1` iterations), the pooled path at the shared iteration cursor.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const CancelToken* cancel);

}  // namespace vz

#endif  // VZ_COMMON_THREAD_POOL_H_
