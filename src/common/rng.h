#ifndef VZ_COMMON_RNG_H_
#define VZ_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vz {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in Video-zilla takes an explicit `Rng` (or a
/// seed) so that datasets, indices and benchmarks are reproducible
/// bit-for-bit across platforms. The distribution samplers are implemented
/// here directly because the C++ standard does not pin down
/// `std::normal_distribution` etc. across library vendors.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via the Box-Muller transform.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to `weights[i]`. Weights must be non-negative with a positive sum;
  /// otherwise returns 0.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each camera
  /// or worker its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace vz

#endif  // VZ_COMMON_RNG_H_
