#include "common/math_util.h"

namespace vz {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = Clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf(
    std::vector<double> values, size_t num_points) {
  std::vector<std::pair<double, double>> cdf;
  if (values.empty() || num_points == 0) return cdf;
  std::sort(values.begin(), values.end());
  const double lo = values.front();
  const double hi = values.back();
  cdf.reserve(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    const double t =
        num_points == 1
            ? hi
            : lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(num_points - 1);
    const auto it = std::upper_bound(values.begin(), values.end(), t);
    const double frac = static_cast<double>(it - values.begin()) /
                        static_cast<double>(values.size());
    cdf.emplace_back(t, frac);
  }
  return cdf;
}

}  // namespace vz
