#ifndef VZ_COMMON_CRC32_H_
#define VZ_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vz {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used by the
/// snapshot format to detect torn writes and bit rot. Table-driven, one pass
/// over the input; matches zlib's `crc32()` for the same bytes.
///
/// `Crc32Update` lets callers fold a buffer into a running checksum
/// (`crc = Crc32Update(crc, ...)`), so a file-level checksum can be computed
/// incrementally over independently checksummed records.
uint32_t Crc32(const void* data, size_t size);
uint32_t Crc32(std::string_view data);
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace vz

#endif  // VZ_COMMON_CRC32_H_
