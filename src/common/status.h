#ifndef VZ_COMMON_STATUS_H_
#define VZ_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace vz {

/// Error category carried by a `Status`.
///
/// Video-zilla does not use exceptions across API boundaries (RocksDB /
/// Arrow idiom); fallible operations return `Status` or `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kCancelled,
  /// Unrecoverable loss or corruption of stored/transmitted bytes: a torn
  /// snapshot tail, a checksum mismatch on a wire frame, a connection closed
  /// mid-message. Distinct from `kInvalidArgument` (the bytes were
  /// well-formed but wrong) and `kOutOfRange` (a reader ran off a buffer
  /// that may simply be shorter than requested).
  kDataLoss,
  /// A transport-level failure that says nothing about the request itself:
  /// a connect or I/O deadline expired, the peer went away mid-exchange.
  /// Retrying against the same (or a recovered) endpoint is reasonable —
  /// unlike `kResourceExhausted`, which is the peer explicitly shedding
  /// load, and `kDataLoss`, which reports bytes known to be corrupt.
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus an optional message.
///
/// The default-constructed `Status` is OK. `Status` is cheap to copy for the
/// OK case (no message allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers for the common codes.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace vz

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning `Status`.
#define VZ_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::vz::Status vz_status_ = (expr);       \
    if (!vz_status_.ok()) return vz_status_; \
  } while (0)

#endif  // VZ_COMMON_STATUS_H_
