#ifndef VZ_COMMON_SIM_CLOCK_H_
#define VZ_COMMON_SIM_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace vz {

/// Simulated wall clock for video time.
///
/// Video-zilla's ingestion pipeline is driven by *video time* (frame
/// timestamps), not by the host's wall clock, so that a 30-hour dataset can
/// be ingested in seconds while segmentation timeouts (`t_max`, `t_split`)
/// and SVS metadata still behave as in a live deployment. All timestamps are
/// milliseconds since the simulation epoch.
class SimClock {
 public:
  SimClock() = default;

  /// Current simulated time in milliseconds.
  int64_t NowMs() const { return now_ms_; }

  /// Advances the clock; negative deltas are ignored.
  void AdvanceMs(int64_t delta_ms) {
    if (delta_ms > 0) now_ms_ += delta_ms;
  }

  /// Jumps to an absolute timestamp if it is in the future.
  void AdvanceTo(int64_t timestamp_ms) {
    if (timestamp_ms > now_ms_) now_ms_ = timestamp_ms;
  }

 private:
  int64_t now_ms_ = 0;
};

/// Measures real (host) elapsed time; used by benchmarks for algorithmic
/// overhead that the paper reports in wall-clock terms (e.g. FastOMD
/// computation time, index build time).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last `Reset()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last `Reset()`.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vz

#endif  // VZ_COMMON_SIM_CLOCK_H_
