#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace vz {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << BaseName(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string text = stream_.str();
    std::fprintf(stderr, "%s\n", text.c_str());
  }
}

}  // namespace internal_logging
}  // namespace vz
