#ifndef VZ_COMMON_STATUSOR_H_
#define VZ_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace vz {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent.
///
/// Mirrors `absl::StatusOr` / `arrow::Result`. Accessing the value of an
/// errored `StatusOr` is a programming error and asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` is a programming error.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

}  // namespace vz

/// Evaluates `rexpr` (a StatusOr<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs`. Usable in functions returning Status or
/// StatusOr.
#define VZ_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  VZ_ASSIGN_OR_RETURN_IMPL_(                            \
      VZ_STATUS_MACRO_CONCAT_(vz_statusor_, __LINE__), lhs, rexpr)

#define VZ_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define VZ_STATUS_MACRO_CONCAT_(x, y) VZ_STATUS_MACRO_CONCAT_INNER_(x, y)
#define VZ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // VZ_COMMON_STATUSOR_H_
