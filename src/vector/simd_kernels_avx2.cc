// AVX2 kernel table. This translation unit is compiled with -mavx2 (see
// src/vector/CMakeLists.txt) and is only linked when VZ_ENABLE_AVX2 is ON;
// the dispatcher in simd_kernels.cc never calls into it unless cpuid reports
// AVX2 at runtime.
//
// Bit-exactness with the scalar reference is the hard requirement here, and
// it shapes every kernel:
//
//  - No FMA anywhere in the float paths. The scalar spec rounds the multiply
//    and the add separately; a fused multiply-add would skip the
//    intermediate rounding and drift by ulps.
//  - Reductions keep the scalar's ascending-index, one-term-at-a-time
//    summation per output. Single-output kernels (squared_distance, dot,
//    sum_squares) vectorize only the element-wise term computation — IEEE
//    sub/mul are deterministic per lane — then drain the four lane terms
//    into the accumulator in index order with scalar adds.
//  - The batched kernel gets its parallelism across *outputs* instead:
//    euclidean_cols reads a column-major tile so one register holds the same
//    dimension i of eight different targets, and each lane's running sum
//    still sees dimensions in ascending order. That is where the 2x+ win on
//    the ground-matrix fill comes from.
//  - Integer math (dot_i8) is exact in any order, so it uses the classic
//    unsigned*signed maddubs reduction freely.

#ifdef VZ_HAVE_AVX2_TU

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "vector/simd_kernels.h"

namespace vz::simd {
namespace {

// Converts the low/high float quads of one 8-float load into two double
// quads: out_lo = (double)v[0..3], out_hi = (double)v[4..7].
inline void CvtPsPd8(__m256 v, __m256d* lo, __m256d* hi) {
  *lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  *hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

// Drains a 4-lane double vector of per-element terms into `sum` with scalar
// adds in lane (= index) order, preserving the reference summation order.
inline void DrainTerms(__m256d terms, double* sum) {
  alignas(32) double t[4];
  _mm256_store_pd(t, terms);
  *sum += t[0];
  *sum += t[1];
  *sum += t[2];
  *sum += t[3];
}

double Avx2SquaredDistance(const float* a, const float* b, size_t dim) {
  double sum = 0.0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const __m256d da = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d db = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    const __m256d d = _mm256_sub_pd(da, db);
    DrainTerms(_mm256_mul_pd(d, d), &sum);
  }
  for (; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

double Avx2Dot(const float* a, const float* b, size_t dim) {
  double sum = 0.0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const __m256d da = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d db = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    DrainTerms(_mm256_mul_pd(da, db), &sum);
  }
  for (; i < dim; ++i) sum += static_cast<double>(a[i]) * b[i];
  return sum;
}

double Avx2SumSquares(const float* v, size_t dim) {
  double sum = 0.0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(v + i));
    DrainTerms(_mm256_mul_pd(d, d), &sum);
  }
  for (; i < dim; ++i) sum += static_cast<double>(v[i]) * v[i];
  return sum;
}

void Avx2EuclideanRows(const float* a, const float* const* rows, size_t count,
                       size_t dim, double* out) {
  for (size_t j = 0; j < count; ++j) {
    out[j] = std::sqrt(Avx2SquaredDistance(a, rows[j], dim));
  }
}

// The workhorse: 8 outputs per tile, accumulated in registers across the
// whole dimension loop. Lane j's sum is built one dimension at a time in
// ascending order — the same order as the scalar per-pair loop — with
// separate sub/mul/add (no FMA), so each output is bit-identical to
// ScalarSquaredDistance on (a, column j).
void Avx2EuclideanCols(const float* a, const float* bt, size_t count,
                       size_t dim, double* out) {
  size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (size_t i = 0; i < dim; ++i) {
      const __m256d ai = _mm256_set1_pd(static_cast<double>(a[i]));
      __m256d b_lo, b_hi;
      CvtPsPd8(_mm256_loadu_ps(bt + i * count + j), &b_lo, &b_hi);
      const __m256d d_lo = _mm256_sub_pd(ai, b_lo);
      const __m256d d_hi = _mm256_sub_pd(ai, b_hi);
      acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
      acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
    }
    alignas(32) double sums[8];
    _mm256_store_pd(sums, acc_lo);
    _mm256_store_pd(sums + 4, acc_hi);
    for (size_t k = 0; k < 8; ++k) out[j + k] = std::sqrt(sums[k]);
  }
  // Tail columns: plain scalar loop per output, same order as above.
  for (; j < count; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double d = static_cast<double>(a[i]) - bt[i * count + j];
      sum += d * d;
    }
    out[j] = std::sqrt(sum);
  }
}

void Avx2Axpy(float* acc, float scale, const float* v, size_t dim) {
  const __m256 s = _mm256_set1_ps(scale);
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 cur = _mm256_loadu_ps(acc + i);
    const __m256 term = _mm256_mul_ps(s, _mm256_loadu_ps(v + i));
    _mm256_storeu_ps(acc + i, _mm256_add_ps(cur, term));
  }
  for (; i < dim; ++i) acc[i] += scale * v[i];
}

void Avx2AddInPlace(float* acc, const float* v, size_t dim) {
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    _mm256_storeu_ps(
        acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i),
                               _mm256_loadu_ps(v + i)));
  }
  for (; i < dim; ++i) acc[i] += v[i];
}

void Avx2ScaleInPlace(float* v, float scale, size_t dim) {
  const __m256 s = _mm256_set1_ps(scale);
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    _mm256_storeu_ps(v + i, _mm256_mul_ps(_mm256_loadu_ps(v + i), s));
  }
  for (; i < dim; ++i) v[i] *= scale;
}

int64_t Avx2DotI8(const int8_t* a, const int8_t* b, size_t dim) {
  // maddubs multiplies unsigned |a| lanes by signed sign(b, a) lanes and adds
  // adjacent pairs into int16: with inputs in [-127, 127] each pair is at
  // most 2 * 127 * 127 = 32258 < 32767, so no saturation. madd_epi16 against
  // ones widens to int32. Lane accumulators are drained to the int64 total
  // every kBlock elements, far before any int32 overflow.
  constexpr size_t kBlock = 8192;
  const __m256i ones = _mm256_set1_epi16(1);
  int64_t total = 0;
  size_t i = 0;
  while (i + 32 <= dim) {
    const size_t block_end = std::min(i + ((dim - i) / 32) * 32, i + kBlock);
    __m256i acc = _mm256_setzero_si256();
    for (; i + 32 <= block_end; i += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i abs_a = _mm256_sign_epi8(va, va);
      const __m256i signed_b = _mm256_sign_epi8(vb, va);
      const __m256i p16 = _mm256_maddubs_epi16(abs_a, signed_b);
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(p16, ones));
    }
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (int32_t lane : lanes) total += lane;
  }
  for (; i < dim; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

constexpr KernelTable kAvx2Table = {
    "avx2",          Avx2SquaredDistance, Avx2Dot,
    Avx2SumSquares,  Avx2EuclideanRows,   Avx2EuclideanCols,
    Avx2Axpy,        Avx2AddInPlace,      Avx2ScaleInPlace,
    Avx2DotI8,
};

}  // namespace

namespace internal {
const KernelTable& Avx2Table() { return kAvx2Table; }
}  // namespace internal

}  // namespace vz::simd

#endif  // VZ_HAVE_AVX2_TU
