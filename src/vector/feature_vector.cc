#include "vector/feature_vector.h"

#include <cassert>
#include <cmath>

#include "vector/simd_kernels.h"

namespace vz {

// All arithmetic routes through the runtime-dispatched kernel table; every
// table is bit-identical to the scalar reference (see simd_kernels.h), so
// results do not depend on which CPU features are present.

double FeatureVector::Norm() const {
  return std::sqrt(simd::Active().sum_squares(data_.data(), data_.size()));
}

void FeatureVector::Add(const FeatureVector& other) {
  assert(dim() == other.dim());
  simd::Active().add_in_place(data_.data(), other.data_.data(), data_.size());
}

void FeatureVector::Axpy(double scale, const FeatureVector& other) {
  assert(dim() == other.dim());
  simd::Active().axpy(data_.data(), static_cast<float>(scale),
                      other.data_.data(), data_.size());
}

void FeatureVector::Scale(double scale) {
  simd::Active().scale_in_place(data_.data(), static_cast<float>(scale),
                                data_.size());
}

void FeatureVector::Normalize() {
  const double norm = Norm();
  if (norm > 0.0) Scale(1.0 / norm);
}

double SquaredDistance(const FeatureVector& a, const FeatureVector& b) {
  assert(a.dim() == b.dim());
  return simd::Active().squared_distance(a.data(), b.data(), a.dim());
}

double EuclideanDistance(const FeatureVector& a, const FeatureVector& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const float* a, const float* b, size_t dim) {
  return simd::Active().squared_distance(a, b, dim);
}

double EuclideanDistance(const float* a, const float* b, size_t dim) {
  return std::sqrt(simd::Active().squared_distance(a, b, dim));
}

void EuclideanDistancesTo(const FeatureVector& a,
                          const FeatureVector* const* bs, size_t count,
                          double* out) {
  const float* pa = a.data();
  const size_t dim = a.dim();
  const simd::KernelTable& kernels = simd::Active();
  for (size_t j = 0; j < count; ++j) {
    assert(bs[j]->dim() == dim);
    out[j] = std::sqrt(kernels.squared_distance(pa, bs[j]->data(), dim));
  }
}

void EuclideanDistancesTo(const FeatureVector& a,
                          const std::vector<FeatureVector>& bs, double* out) {
  const float* pa = a.data();
  const size_t dim = a.dim();
  const simd::KernelTable& kernels = simd::Active();
  for (size_t j = 0; j < bs.size(); ++j) {
    assert(bs[j].dim() == dim);
    out[j] = std::sqrt(kernels.squared_distance(pa, bs[j].data(), dim));
  }
}

void EuclideanDistancesTo(const float* a, const float* const* rows,
                          size_t count, size_t dim, double* out) {
  simd::Active().euclidean_rows(a, rows, count, dim, out);
}

double Dot(const FeatureVector& a, const FeatureVector& b) {
  assert(a.dim() == b.dim());
  return simd::Active().dot(a.data(), b.data(), a.dim());
}

double CosineDistance(const FeatureVector& a, const FeatureVector& b) {
  const double na = a.Norm();
  const double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - Dot(a, b) / (na * nb);
}

}  // namespace vz
