#include "vector/feature_vector.h"

#include <cassert>
#include <cmath>

namespace vz {

double FeatureVector::Norm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return std::sqrt(sum);
}

void FeatureVector::Add(const FeatureVector& other) {
  assert(dim() == other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void FeatureVector::Axpy(double scale, const FeatureVector& other) {
  assert(dim() == other.dim());
  const float s = static_cast<float>(scale);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

void FeatureVector::Scale(double scale) {
  const float s = static_cast<float>(scale);
  for (float& v : data_) v *= s;
}

void FeatureVector::Normalize() {
  const double norm = Norm();
  if (norm > 0.0) Scale(1.0 / norm);
}

double SquaredDistance(const FeatureVector& a, const FeatureVector& b) {
  assert(a.dim() == b.dim());
  double sum = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < a.dim(); ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistance(const FeatureVector& a, const FeatureVector& b) {
  return std::sqrt(SquaredDistance(a, b));
}

namespace {

// Shared inner loop of the batched kernel; same floating-point evaluation
// order as SquaredDistance so batched and per-pair results agree bitwise.
inline double SquaredDistanceRaw(const float* pa, const float* pb,
                                 size_t dim) {
  double sum = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

void EuclideanDistancesTo(const FeatureVector& a,
                          const FeatureVector* const* bs, size_t count,
                          double* out) {
  const float* pa = a.data();
  const size_t dim = a.dim();
  for (size_t j = 0; j < count; ++j) {
    assert(bs[j]->dim() == dim);
    out[j] = std::sqrt(SquaredDistanceRaw(pa, bs[j]->data(), dim));
  }
}

void EuclideanDistancesTo(const FeatureVector& a,
                          const std::vector<FeatureVector>& bs, double* out) {
  const float* pa = a.data();
  const size_t dim = a.dim();
  for (size_t j = 0; j < bs.size(); ++j) {
    assert(bs[j].dim() == dim);
    out[j] = std::sqrt(SquaredDistanceRaw(pa, bs[j].data(), dim));
  }
}

double Dot(const FeatureVector& a, const FeatureVector& b) {
  assert(a.dim() == b.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

double CosineDistance(const FeatureVector& a, const FeatureVector& b) {
  const double na = a.Norm();
  const double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - Dot(a, b) / (na * nb);
}

}  // namespace vz
