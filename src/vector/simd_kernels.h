#ifndef VZ_VECTOR_SIMD_KERNELS_H_
#define VZ_VECTOR_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <new>

namespace vz::simd {

/// Low-level distance/accumulation kernels over raw contiguous buffers.
///
/// Two kernel tables exist: the portable scalar reference and, when the build
/// enables it (`VZ_ENABLE_AVX2`) and the CPU supports it, an AVX2 table.
/// Every table is required to produce *bit-identical* results to the scalar
/// reference for all inputs whose result is not NaN (including +-Inf
/// results and Inf payloads in the inputs). When the reference produces
/// NaN, every table produces NaN, but the payload/sign bits may differ:
/// x86 propagates the *first* operand's NaN through an add, and compilers
/// may commute `sum + term` differently per translation unit, so NaN
/// payload identity is not promisable even between two scalar builds. The
/// scalar table pins the numeric spec:
///
///  - Floating-point reductions (`squared_distance`, `dot`, `sum_squares`,
///    and the per-output sums of the batched Euclidean kernels) accumulate in
///    double, strictly in ascending index order, as `sum += term` with the
///    term computed from the float inputs exactly as the scalar loop writes
///    it. The AVX2 table may vectorize the element-wise term computation
///    (IEEE sub/mul are deterministic per lane) but must keep the adds
///    sequential per output — and must not contract them into FMAs, which
///    would change rounding.
///  - Element-wise float updates (`axpy`, `add_in_place`, `scale_in_place`)
///    round per element exactly like the scalar loop; lanes are independent,
///    so any vector width is bit-identical by construction.
///  - Integer kernels (`dot_i8`) are exact in any summation order.
///
/// The batched Euclidean kernels exist in two layouts: `euclidean_rows`
/// walks `count` row pointers (the layout `FeatureMap` hands out), while
/// `euclidean_cols` reads a column-major transpose tile (`bt[i * count + j]`
/// holds element `i` of target `j`) so one vector register spans *outputs*
/// instead of dimensions. The column layout is what makes AVX2 profitable
/// without reordering any per-output sum: lane `j` still accumulates
/// dimensions in ascending order.
struct KernelTable {
  /// Human-readable table name ("scalar", "avx2") for logs and tests.
  const char* name;

  /// sum_i ((double)a[i] - (double)b[i])^2.
  double (*squared_distance)(const float* a, const float* b, size_t dim);

  /// sum_i (double)a[i] * (double)b[i].
  double (*dot)(const float* a, const float* b, size_t dim);

  /// sum_i (double)v[i] * (double)v[i].
  double (*sum_squares)(const float* v, size_t dim);

  /// out[j] = sqrt(squared_distance(a, rows[j], dim)) for j < count.
  void (*euclidean_rows)(const float* a, const float* const* rows,
                         size_t count, size_t dim, double* out);

  /// As euclidean_rows over a transposed tile: element i of target j lives
  /// at bt[i * count + j] (see TransposeRows).
  void (*euclidean_cols)(const float* a, const float* bt, size_t count,
                         size_t dim, double* out);

  /// acc[i] += (float)scale * v[i].
  void (*axpy)(float* acc, float scale, const float* v, size_t dim);

  /// acc[i] += v[i].
  void (*add_in_place)(float* acc, const float* v, size_t dim);

  /// v[i] *= scale.
  void (*scale_in_place)(float* v, float scale, size_t dim);

  /// sum_i a[i] * b[i] over int8 codes, exact. Inputs must lie in
  /// [-127, 127] (the symmetric-quantizer range); -128 is outside the
  /// contract (the AVX2 unsigned*signed trick saturates on it).
  int64_t (*dot_i8)(const int8_t* a, const int8_t* b, size_t dim);
};

/// The portable reference table. Always available.
const KernelTable& Scalar();

/// The fastest table valid on this machine: AVX2 when compiled in and
/// reported by cpuid, otherwise the scalar reference. Selected once on first
/// use; setting the environment variable `VZ_SIMD=scalar` before that forces
/// the scalar table (useful for A/B timing on AVX2 hardware).
const KernelTable& Active();

/// True iff Active() is the AVX2 table.
bool Avx2Active();

/// Test hook: force Active() to the scalar table (true) or restore the
/// dispatched choice (false). Not safe to race against kernel callers; call
/// only from single-threaded test setup.
void ForceScalar(bool force);

/// Scatters row-major rows into the column-major tile `euclidean_cols`
/// expects: out[i * count + j] = rows[j][i]. `out` must hold count * dim
/// floats.
void TransposeRows(const float* const* rows, size_t count, size_t dim,
                   float* out);

/// Alignment of the SoA feature buffer; one AVX2 register row.
inline constexpr size_t kSoAAlignment = 32;

/// Minimal aligned allocator so flat feature buffers start on a 32-byte
/// boundary (the kernels use unaligned loads, so alignment is a perf hint,
/// not a correctness requirement).
template <typename T, size_t Alignment = kSoAAlignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace vz::simd

#endif  // VZ_VECTOR_SIMD_KERNELS_H_
