#ifndef VZ_VECTOR_FEATURE_VECTOR_H_
#define VZ_VECTOR_FEATURE_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace vz {

/// Dense real-valued feature vector for one detected object.
///
/// In the paper these are penultimate-layer CNN activations (512-4096
/// dimensions, Sec. 3.1); in this reproduction they come from
/// `vz::sim::FeatureExtractor`. The class is a thin wrapper over a
/// contiguous float buffer with the vector-space operations the index needs.
class FeatureVector {
 public:
  /// An empty (0-dimensional) vector.
  FeatureVector() = default;

  /// A zero vector of the given dimension.
  explicit FeatureVector(size_t dim) : data_(dim, 0.0f) {}

  /// Adopts the given components.
  explicit FeatureVector(std::vector<float> data) : data_(std::move(data)) {}

  /// Brace-list construction: FeatureVector({1.0f, 2.0f}).
  FeatureVector(std::initializer_list<float> data) : data_(data) {}

  FeatureVector(const FeatureVector&) = default;
  FeatureVector& operator=(const FeatureVector&) = default;
  FeatureVector(FeatureVector&&) = default;
  FeatureVector& operator=(FeatureVector&&) = default;

  /// Number of dimensions.
  size_t dim() const { return data_.size(); }

  /// True iff the vector has no components.
  bool empty() const { return data_.empty(); }

  float operator[](size_t i) const { return data_[i]; }
  float& operator[](size_t i) { return data_[i]; }

  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }

  const std::vector<float>& components() const { return data_; }

  /// Euclidean (L2) norm.
  double Norm() const;

  /// In-place `this += other`. Dimensions must match.
  void Add(const FeatureVector& other);

  /// In-place `this += scale * other`. Dimensions must match.
  void Axpy(double scale, const FeatureVector& other);

  /// In-place `this *= scale`.
  void Scale(double scale);

  /// Scales to unit L2 norm; a zero vector is left unchanged.
  void Normalize();

  friend bool operator==(const FeatureVector& a, const FeatureVector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<float> data_;
};

/// Squared Euclidean distance. Dimensions must match (checked by assert).
double SquaredDistance(const FeatureVector& a, const FeatureVector& b);

/// Euclidean distance `||a - b||_2` — the per-object ground distance d(i, j)
/// of Sec. 3.2.
double EuclideanDistance(const FeatureVector& a, const FeatureVector& b);

/// Raw-buffer variants for callers holding SoA rows (`FeatureMap::row`).
/// Same numeric spec as the FeatureVector overloads — results are
/// bit-identical.
double SquaredDistance(const float* a, const float* b, size_t dim);
double EuclideanDistance(const float* a, const float* b, size_t dim);

/// Batched one-vs-many Euclidean distances: writes
/// `EuclideanDistance(a, *bs[j])` into `out[j]` for every `j < count`.
///
/// This is the ground-distance-matrix row kernel of the OMD path: one tight
/// pass per pair with `a`'s buffer hoisted out of the loop and no per-pair
/// function-call overhead, leaving the inner dimension loop free for the
/// compiler to vectorize. The summation order matches `SquaredDistance`
/// exactly, so results are bit-identical to `count` individual calls.
void EuclideanDistancesTo(const FeatureVector& a,
                          const FeatureVector* const* bs, size_t count,
                          double* out);

/// As above over a contiguous array of vectors.
void EuclideanDistancesTo(const FeatureVector& a,
                          const std::vector<FeatureVector>& bs, double* out);

/// Raw-row variant: `rows[j]` points at `dim` contiguous floats (an SoA row
/// from `FeatureMap`). This is the form `FillGroundMatrix` feeds the
/// runtime-dispatched kernels.
void EuclideanDistancesTo(const float* a, const float* const* rows,
                          size_t count, size_t dim, double* out);

/// Inner product.
double Dot(const FeatureVector& a, const FeatureVector& b);

/// Cosine distance `1 - cos(a, b)`; 1 when either vector is zero.
double CosineDistance(const FeatureVector& a, const FeatureVector& b);

}  // namespace vz

#endif  // VZ_VECTOR_FEATURE_VECTOR_H_
