#include "vector/simd_kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace vz::simd {

#ifdef VZ_HAVE_AVX2_TU
namespace internal {
// Defined in simd_kernels_avx2.cc (compiled with -mavx2).
const KernelTable& Avx2Table();
}  // namespace internal
#endif

namespace {

// ---------------------------------------------------------------------------
// Scalar reference table. These loops ARE the numeric spec: every other table
// must match them bit for bit (see the KernelTable contract in the header).
// ---------------------------------------------------------------------------

double ScalarSquaredDistance(const float* a, const float* b, size_t dim) {
  double sum = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

double ScalarDot(const float* a, const float* b, size_t dim) {
  double sum = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

double ScalarSumSquares(const float* v, size_t dim) {
  double sum = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    sum += static_cast<double>(v[i]) * v[i];
  }
  return sum;
}

void ScalarEuclideanRows(const float* a, const float* const* rows,
                         size_t count, size_t dim, double* out) {
  for (size_t j = 0; j < count; ++j) {
    out[j] = std::sqrt(ScalarSquaredDistance(a, rows[j], dim));
  }
}

void ScalarEuclideanCols(const float* a, const float* bt, size_t count,
                         size_t dim, double* out) {
  for (size_t j = 0; j < count; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double d = static_cast<double>(a[i]) - bt[i * count + j];
      sum += d * d;
    }
    out[j] = std::sqrt(sum);
  }
}

void ScalarAxpy(float* acc, float scale, const float* v, size_t dim) {
  for (size_t i = 0; i < dim; ++i) acc[i] += scale * v[i];
}

void ScalarAddInPlace(float* acc, const float* v, size_t dim) {
  for (size_t i = 0; i < dim; ++i) acc[i] += v[i];
}

void ScalarScaleInPlace(float* v, float scale, size_t dim) {
  for (size_t i = 0; i < dim; ++i) v[i] *= scale;
}

int64_t ScalarDotI8(const int8_t* a, const int8_t* b, size_t dim) {
  int64_t sum = 0;
  for (size_t i = 0; i < dim; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

constexpr KernelTable kScalarTable = {
    "scalar",          ScalarSquaredDistance, ScalarDot,
    ScalarSumSquares,  ScalarEuclideanRows,   ScalarEuclideanCols,
    ScalarAxpy,        ScalarAddInPlace,      ScalarScaleInPlace,
    ScalarDotI8,
};

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<bool> g_force_scalar{false};

const KernelTable* Dispatch() {
  if (g_force_scalar.load(std::memory_order_relaxed)) return &kScalarTable;
  const char* env = std::getenv("VZ_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) return &kScalarTable;
#ifdef VZ_HAVE_AVX2_TU
  if (__builtin_cpu_supports("avx2")) return &internal::Avx2Table();
#endif
  return &kScalarTable;
}

}  // namespace

const KernelTable& Scalar() { return kScalarTable; }

const KernelTable& Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Dispatch();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

bool Avx2Active() { return &Active() != &kScalarTable; }

void ForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
  g_active.store(force ? &kScalarTable : Dispatch(),
                 std::memory_order_release);
}

void TransposeRows(const float* const* rows, size_t count, size_t dim,
                   float* out) {
  for (size_t j = 0; j < count; ++j) {
    const float* row = rows[j];
    for (size_t i = 0; i < dim; ++i) out[i * count + j] = row[i];
  }
}

}  // namespace vz::simd
