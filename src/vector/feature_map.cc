#include "vector/feature_map.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vz {

namespace {

// Largest dimension for which per-row code norms provably fit int32:
// dim * 127^2 <= 32768 * 16129 < 2^31.
constexpr size_t kQuantMaxDim = 32768;

// Growth factor for the quantizer cap: when a new row's max |value| exceeds
// the current cap, the cap jumps geometrically so an adversarially creeping
// max re-encodes the map O(log range) times, not O(n) times.
constexpr float kQuantCapGrowth = 1.5f;

}  // namespace

Status FeatureMap::Add(FeatureVector vector, double weight) {
  return Add(vector.data(), vector.dim(), weight);
}

Status FeatureMap::Add(const float* values, size_t dim, double weight) {
  if (weight < 0.0) {
    return Status::InvalidArgument("feature weight must be non-negative");
  }
  if (!empty() && dim != dim_) {
    return Status::InvalidArgument("feature vector dimension mismatch");
  }
  if (empty()) dim_ = dim;
  data_.insert(data_.end(), values, values + dim);
  weights_.push_back(weight);
  UpdateShadowForAppendedRow();
  return Status::OK();
}

void FeatureMap::QuantizeRow(size_t i) {
  const float* src = row(i);
  int8_t* dst = qcodes_.data() + i * dim_;
  int32_t norm = 0;
  if (qscale_ == 0.0f) {
    // Cap 0 means every value seen so far is exactly zero.
    std::fill(dst, dst + dim_, static_cast<int8_t>(0));
  } else {
    for (size_t k = 0; k < dim_; ++k) {
      long code = std::lround(src[k] / qscale_);
      code = std::clamp<long>(code, -127, 127);
      dst[k] = static_cast<int8_t>(code);
      norm += static_cast<int32_t>(code) * static_cast<int32_t>(code);
    }
  }
  qnorms_[i] = norm;
}

void FeatureMap::UpdateShadowForAppendedRow() {
  if (!qvalid_) return;
  if (dim_ > kQuantMaxDim) {
    qvalid_ = false;
    qcodes_.clear();
    qnorms_.clear();
    return;
  }
  const size_t i = size() - 1;
  const float* src = row(i);
  float mx = 0.0f;
  for (size_t k = 0; k < dim_; ++k) {
    if (!std::isfinite(src[k])) {
      qvalid_ = false;
      qcodes_.clear();
      qnorms_.clear();
      return;
    }
    mx = std::max(mx, std::fabs(src[k]));
  }
  qcodes_.resize(size() * dim_);
  qnorms_.resize(size());
  if (mx > qcap_) {
    qcap_ = std::max(mx, qcap_ * kQuantCapGrowth);
    qscale_ = qcap_ / 127.0f;
    for (size_t r = 0; r < size(); ++r) QuantizeRow(r);
  } else {
    QuantizeRow(i);
  }
}

std::optional<FeatureMap::QuantizedShadow> FeatureMap::quantized() const {
  if (!qvalid_ || empty()) return std::nullopt;
  return QuantizedShadow{qcodes_.data(), qnorms_.data(), qscale_};
}

double FeatureMap::TotalWeight() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  return total;
}

std::vector<double> FeatureMap::NormalizedWeights() const {
  std::vector<double> normalized;
  const double total = TotalWeight();
  if (total <= 0.0) return normalized;
  normalized.reserve(weights_.size());
  for (double w : weights_) normalized.push_back(w / total);
  return normalized;
}

FeatureVector FeatureMap::Centroid() const {
  if (empty()) return FeatureVector();
  FeatureVector centroid(dim_);
  float* acc = centroid.data();
  const simd::KernelTable& kernels = simd::Active();
  const std::vector<double> normalized = NormalizedWeights();
  if (normalized.empty()) {
    // All weights zero: fall back to the unweighted mean.
    for (size_t i = 0; i < size(); ++i) {
      kernels.add_in_place(acc, row(i), dim_);
    }
    kernels.scale_in_place(
        acc, static_cast<float>(1.0 / static_cast<double>(size())), dim_);
    return centroid;
  }
  for (size_t i = 0; i < size(); ++i) {
    kernels.axpy(acc, static_cast<float>(normalized[i]), row(i), dim_);
  }
  return centroid;
}

void FeatureMap::Clear() {
  dim_ = 0;
  data_.clear();
  weights_.clear();
  qvalid_ = true;
  qscale_ = 0.0f;
  qcap_ = 0.0f;
  qcodes_.clear();
  qnorms_.clear();
}

double ObjectCentroidDistance(const FeatureMap& a, const FeatureMap& b) {
  if (a.empty() || b.empty()) return 0.0;
  return EuclideanDistance(a.Centroid(), b.Centroid());
}

}  // namespace vz
