#include "vector/feature_map.h"

#include <utility>

namespace vz {

Status FeatureMap::Add(FeatureVector vector, double weight) {
  if (weight < 0.0) {
    return Status::InvalidArgument("feature weight must be non-negative");
  }
  if (!vectors_.empty() && vector.dim() != vectors_[0].dim()) {
    return Status::InvalidArgument("feature vector dimension mismatch");
  }
  vectors_.push_back(std::move(vector));
  weights_.push_back(weight);
  return Status::OK();
}

double FeatureMap::TotalWeight() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  return total;
}

std::vector<double> FeatureMap::NormalizedWeights() const {
  std::vector<double> normalized;
  const double total = TotalWeight();
  if (total <= 0.0) return normalized;
  normalized.reserve(weights_.size());
  for (double w : weights_) normalized.push_back(w / total);
  return normalized;
}

FeatureVector FeatureMap::Centroid() const {
  if (vectors_.empty()) return FeatureVector();
  FeatureVector centroid(dim());
  const std::vector<double> normalized = NormalizedWeights();
  if (normalized.empty()) {
    // All weights zero: fall back to the unweighted mean.
    for (const FeatureVector& v : vectors_) centroid.Add(v);
    centroid.Scale(1.0 / static_cast<double>(vectors_.size()));
    return centroid;
  }
  for (size_t i = 0; i < vectors_.size(); ++i) {
    centroid.Axpy(normalized[i], vectors_[i]);
  }
  return centroid;
}

void FeatureMap::Clear() {
  vectors_.clear();
  weights_.clear();
}

double ObjectCentroidDistance(const FeatureMap& a, const FeatureMap& b) {
  if (a.empty() || b.empty()) return 0.0;
  return EuclideanDistance(a.Centroid(), b.Centroid());
}

}  // namespace vz
