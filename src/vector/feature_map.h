#ifndef VZ_VECTOR_FEATURE_MAP_H_
#define VZ_VECTOR_FEATURE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "vector/feature_vector.h"
#include "vector/simd_kernels.h"

namespace vz {

/// A weighted multiset of feature vectors — the payload of a semantic video
/// stream (Sec. 3.1: "A semantic video stream (SVS) then is the collection of
/// these feature vectors (i.e., the feature map)").
///
/// Raw SVSs carry uniform weights (1/n per vector, Eq. 1); representative
/// SVSs built by k-clustering (Sec. 3.3) carry weights proportional to
/// member-cluster sizes. All vectors in a map share one dimension.
///
/// Storage is structure-of-arrays: one contiguous, 32-byte-aligned
/// `size() * dim()` float buffer (row i at `row(i)`) plus a parallel weight
/// array, so the OMD ground-matrix kernels stream rows without per-vector
/// pointer chasing. The dimension is fixed by the first `Add` and cached.
///
/// Alongside the float rows the map maintains an 8-bit symmetric-quantized
/// shadow (one shared scale, int8 codes, per-row code norms), kept up to
/// date incrementally by `Add`. The shadow feeds the quantized OCD pruning
/// tier in `SvsMetric::LowerBound`: every code satisfies
/// `|value - code * scale| <= scale / 2`, which certifies a distance lower
/// bound (see `QuantizedOmdLowerBound`). Maps containing non-finite values
/// have no shadow (`quantized()` is nullopt) and simply skip that tier.
class FeatureMap {
 public:
  FeatureMap() = default;

  FeatureMap(const FeatureMap&) = default;
  FeatureMap& operator=(const FeatureMap&) = default;
  FeatureMap(FeatureMap&&) = default;
  FeatureMap& operator=(FeatureMap&&) = default;

  /// Appends a vector with the given (non-negative) weight. The first vector
  /// fixes the map's dimension; later mismatching vectors are rejected.
  Status Add(FeatureVector vector, double weight = 1.0);

  /// As above from a raw buffer of `dim` floats (no FeatureVector needed).
  Status Add(const float* values, size_t dim, double weight = 1.0);

  /// Number of vectors.
  size_t size() const { return weights_.size(); }

  /// True iff the map holds no vectors.
  bool empty() const { return weights_.empty(); }

  /// Dimension of the vectors; 0 for an empty map. Cached at the first Add —
  /// never derived from a stored vector on the hot path.
  size_t dim() const { return dim_; }

  /// Row i of the SoA buffer: `dim()` contiguous floats.
  const float* row(size_t i) const { return data_.data() + i * dim_; }

  /// The whole `size() * dim()` buffer, row-major, 32-byte aligned.
  const float* data() const { return data_.data(); }

  /// Copy of vector i. Returned by value: the map stores a flat buffer, not
  /// FeatureVector objects. Use `row(i)` on hot paths.
  FeatureVector vector(size_t i) const {
    return FeatureVector(std::vector<float>(row(i), row(i) + dim_));
  }

  double weight(size_t i) const { return weights_[i]; }
  const std::vector<double>& weights() const { return weights_; }

  /// Sum of raw weights.
  double TotalWeight() const;

  /// Weights scaled to sum to 1 (Eq. 1 treats each map as a distribution).
  /// Returns an empty vector for an empty map or zero total weight.
  std::vector<double> NormalizedWeights() const;

  /// Weighted mean vector — the basis of the Object Centroid Distance lower
  /// bound (Sec. 4.3). Returns a zero-dim vector for an empty map.
  FeatureVector Centroid() const;

  /// Removes all vectors (and resets the dimension and quantized shadow).
  void Clear();

  /// View of the quantized shadow. `codes` is row-major `size() * dim()`
  /// int8; `norms[i]` is the exact int32 sum of squared codes of row i;
  /// `scale` maps codes back to floats (`value ~ code * scale`, absolute
  /// error at most `scale / 2` per component). nullopt when the map is
  /// empty, contains non-finite values, or the dimension is too large for
  /// exact int32 norms.
  struct QuantizedShadow {
    const int8_t* codes;
    const int32_t* norms;
    float scale;
  };
  std::optional<QuantizedShadow> quantized() const;

 private:
  // Re-encodes row i (row(i)) into qcodes_/qnorms_[i] with qscale_.
  void QuantizeRow(size_t i);
  // Folds the freshly appended row into the shadow, rescaling if needed.
  void UpdateShadowForAppendedRow();

  size_t dim_ = 0;
  std::vector<float, simd::AlignedAllocator<float>> data_;  // size() * dim_
  std::vector<double> weights_;

  // Quantized shadow. Codes live in [-127, 127]; qscale_ == qcap_ / 127
  // where qcap_ >= max |value| seen so far (grown geometrically so a slowly
  // increasing max does not trigger quadratic re-encoding). qvalid_ drops to
  // false — until Clear — on the first non-finite input.
  bool qvalid_ = true;
  float qscale_ = 0.0f;
  float qcap_ = 0.0f;
  std::vector<int8_t> qcodes_;   // size() * dim_, row-major
  std::vector<int32_t> qnorms_;  // per-row sum of squared codes
};

/// Euclidean distance between the two maps' centroids — the Object Centroid
/// Distance (OCD), a lower bound on OMD (Sec. 4.3, following Rubner et al.).
/// Returns 0 if either map is empty.
double ObjectCentroidDistance(const FeatureMap& a, const FeatureMap& b);

}  // namespace vz

#endif  // VZ_VECTOR_FEATURE_MAP_H_
