#ifndef VZ_VECTOR_FEATURE_MAP_H_
#define VZ_VECTOR_FEATURE_MAP_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "vector/feature_vector.h"

namespace vz {

/// A weighted multiset of feature vectors — the payload of a semantic video
/// stream (Sec. 3.1: "A semantic video stream (SVS) then is the collection of
/// these feature vectors (i.e., the feature map)").
///
/// Raw SVSs carry uniform weights (1/n per vector, Eq. 1); representative
/// SVSs built by k-clustering (Sec. 3.3) carry weights proportional to
/// member-cluster sizes. All vectors in a map share one dimension.
class FeatureMap {
 public:
  FeatureMap() = default;

  FeatureMap(const FeatureMap&) = default;
  FeatureMap& operator=(const FeatureMap&) = default;
  FeatureMap(FeatureMap&&) = default;
  FeatureMap& operator=(FeatureMap&&) = default;

  /// Appends a vector with the given (non-negative) weight. The first vector
  /// fixes the map's dimension; later mismatching vectors are rejected.
  Status Add(FeatureVector vector, double weight = 1.0);

  /// Number of vectors.
  size_t size() const { return vectors_.size(); }

  /// True iff the map holds no vectors.
  bool empty() const { return vectors_.empty(); }

  /// Dimension of the vectors; 0 for an empty map.
  size_t dim() const { return vectors_.empty() ? 0 : vectors_[0].dim(); }

  const FeatureVector& vector(size_t i) const { return vectors_[i]; }
  double weight(size_t i) const { return weights_[i]; }

  const std::vector<FeatureVector>& vectors() const { return vectors_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Sum of raw weights.
  double TotalWeight() const;

  /// Weights scaled to sum to 1 (Eq. 1 treats each map as a distribution).
  /// Returns an empty vector for an empty map or zero total weight.
  std::vector<double> NormalizedWeights() const;

  /// Weighted mean vector — the basis of the Object Centroid Distance lower
  /// bound (Sec. 4.3). Returns a zero-dim vector for an empty map.
  FeatureVector Centroid() const;

  /// Removes all vectors.
  void Clear();

 private:
  std::vector<FeatureVector> vectors_;
  std::vector<double> weights_;
};

/// Euclidean distance between the two maps' centroids — the Object Centroid
/// Distance (OCD), a lower bound on OMD (Sec. 4.3, following Rubner et al.).
/// Returns 0 if either map is empty.
double ObjectCentroidDistance(const FeatureMap& a, const FeatureMap& b);

}  // namespace vz

#endif  // VZ_VECTOR_FEATURE_MAP_H_
