#include "solver/emd.h"

#include <cmath>

#include "solver/min_cost_flow.h"

namespace vz::solver {

namespace {

// Normalizes `weights` to sum to 1. Errors on negative entries or zero mass.
Status Normalize(std::vector<double>* weights) {
  double total = 0.0;
  for (double w : *weights) {
    if (w < 0.0) return Status::InvalidArgument("negative weight");
    total += w;
  }
  if (total <= 0.0) return Status::InvalidArgument("zero total weight");
  for (double& w : *weights) w /= total;
  return Status::OK();
}

Status ValidateInputs(const std::vector<double>& supplies,
                      const std::vector<double>& demands) {
  if (supplies.empty() || demands.empty()) {
    return Status::InvalidArgument("EMD inputs must be non-empty");
  }
  return Status::OK();
}

}  // namespace

StatusOr<EmdResult> ExactEmd(const std::vector<double>& supplies,
                             const std::vector<double>& demands,
                             const GroundDistanceFn& distance,
                             const CancelToken* cancel) {
  VZ_RETURN_IF_ERROR(ValidateInputs(supplies, demands));
  std::vector<double> s = supplies;
  std::vector<double> d = demands;
  VZ_RETURN_IF_ERROR(Normalize(&s));
  VZ_RETURN_IF_ERROR(Normalize(&d));

  const size_t n = s.size();
  const size_t m = d.size();
  MinCostFlow flow;
  const int source = flow.AddNode();
  const int sink = flow.AddNode();
  const int supply_base = flow.AddNodes(static_cast<int>(n));
  const int demand_base = flow.AddNodes(static_cast<int>(m));

  for (size_t i = 0; i < n; ++i) {
    VZ_RETURN_IF_ERROR(
        flow.AddArc(source, supply_base + static_cast<int>(i), s[i], 0.0)
            .status());
  }
  for (size_t j = 0; j < m; ++j) {
    VZ_RETURN_IF_ERROR(
        flow.AddArc(demand_base + static_cast<int>(j), sink, d[j], 0.0)
            .status());
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double cost = distance(i, j);
      if (cost < 0.0 || !std::isfinite(cost)) {
        return Status::InvalidArgument("ground distance must be finite and >= 0");
      }
      VZ_RETURN_IF_ERROR(flow.AddArc(supply_base + static_cast<int>(i),
                                     demand_base + static_cast<int>(j),
                                     /*capacity=*/1.0, cost)
                             .status());
    }
  }

  EmdResult result;
  result.num_arcs = flow.num_arcs();
  VZ_ASSIGN_OR_RETURN(MinCostFlow::Result solved,
                      flow.Solve(source, sink, cancel));
  if (solved.max_flow < 1.0 - 1e-6) {
    return Status::Internal("EMD transportation did not ship full mass");
  }
  result.distance = solved.min_cost;
  return result;
}

StatusOr<EmdFlowResult> ExactEmdWithFlow(const std::vector<double>& supplies,
                                         const std::vector<double>& demands,
                                         const GroundDistanceFn& distance) {
  VZ_RETURN_IF_ERROR(ValidateInputs(supplies, demands));
  std::vector<double> s = supplies;
  std::vector<double> d = demands;
  VZ_RETURN_IF_ERROR(Normalize(&s));
  VZ_RETURN_IF_ERROR(Normalize(&d));

  const size_t n = s.size();
  const size_t m = d.size();
  MinCostFlow flow;
  const int source = flow.AddNode();
  const int sink = flow.AddNode();
  const int supply_base = flow.AddNodes(static_cast<int>(n));
  const int demand_base = flow.AddNodes(static_cast<int>(m));
  for (size_t i = 0; i < n; ++i) {
    VZ_RETURN_IF_ERROR(
        flow.AddArc(source, supply_base + static_cast<int>(i), s[i], 0.0)
            .status());
  }
  for (size_t j = 0; j < m; ++j) {
    VZ_RETURN_IF_ERROR(
        flow.AddArc(demand_base + static_cast<int>(j), sink, d[j], 0.0)
            .status());
  }
  // Remember each transport arc's id so its flow can be read back.
  std::vector<int> arc_ids(n * m, -1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double cost = distance(i, j);
      if (cost < 0.0 || !std::isfinite(cost)) {
        return Status::InvalidArgument("ground distance must be finite and >= 0");
      }
      VZ_ASSIGN_OR_RETURN(int arc,
                          flow.AddArc(supply_base + static_cast<int>(i),
                                      demand_base + static_cast<int>(j),
                                      /*capacity=*/1.0, cost));
      arc_ids[i * m + j] = arc;
    }
  }
  VZ_ASSIGN_OR_RETURN(MinCostFlow::Result solved, flow.Solve(source, sink));
  if (solved.max_flow < 1.0 - 1e-6) {
    return Status::Internal("EMD transportation did not ship full mass");
  }
  EmdFlowResult result;
  result.distance = solved.min_cost;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double amount = flow.FlowOnArc(arc_ids[i * m + j]);
      if (amount > 1e-12) result.flows.push_back({i, j, amount});
    }
  }
  return result;
}

StatusOr<EmdResult> ThresholdedEmd(const std::vector<double>& supplies,
                                   const std::vector<double>& demands,
                                   const GroundDistanceFn& distance,
                                   double threshold,
                                   const CancelToken* cancel) {
  VZ_RETURN_IF_ERROR(ValidateInputs(supplies, demands));
  if (!std::isfinite(threshold) || threshold < 0.0) {
    return Status::InvalidArgument("threshold must be finite and >= 0");
  }
  std::vector<double> s = supplies;
  std::vector<double> d = demands;
  VZ_RETURN_IF_ERROR(Normalize(&s));
  VZ_RETURN_IF_ERROR(Normalize(&d));

  const size_t n = s.size();
  const size_t m = d.size();
  MinCostFlow flow;
  const int source = flow.AddNode();
  const int sink = flow.AddNode();
  const int transship = flow.AddNode();  // the red vertex of Fig. 6b
  const int supply_base = flow.AddNodes(static_cast<int>(n));
  const int demand_base = flow.AddNodes(static_cast<int>(m));

  for (size_t i = 0; i < n; ++i) {
    VZ_RETURN_IF_ERROR(
        flow.AddArc(source, supply_base + static_cast<int>(i), s[i], 0.0)
            .status());
    // Any supply may route through the transshipment vertex at cost
    // `threshold` (incoming) + 0 (outgoing).
    VZ_RETURN_IF_ERROR(flow.AddArc(supply_base + static_cast<int>(i),
                                   transship, /*capacity=*/1.0, threshold)
                           .status());
  }
  for (size_t j = 0; j < m; ++j) {
    VZ_RETURN_IF_ERROR(
        flow.AddArc(demand_base + static_cast<int>(j), sink, d[j], 0.0)
            .status());
    VZ_RETURN_IF_ERROR(
        flow.AddArc(transship, demand_base + static_cast<int>(j),
                    /*capacity=*/1.0, 0.0)
            .status());
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double cost = distance(i, j);
      if (cost < 0.0 || !std::isfinite(cost)) {
        return Status::InvalidArgument("ground distance must be finite and >= 0");
      }
      if (cost < threshold) {
        VZ_RETURN_IF_ERROR(flow.AddArc(supply_base + static_cast<int>(i),
                                       demand_base + static_cast<int>(j),
                                       /*capacity=*/1.0, cost)
                               .status());
      }
    }
  }

  EmdResult result;
  result.num_arcs = flow.num_arcs();
  VZ_ASSIGN_OR_RETURN(MinCostFlow::Result solved,
                      flow.Solve(source, sink, cancel));
  if (solved.max_flow < 1.0 - 1e-6) {
    return Status::Internal("thresholded EMD did not ship full mass");
  }
  result.distance = solved.min_cost;
  return result;
}

}  // namespace vz::solver
