#ifndef VZ_SOLVER_EMD_H_
#define VZ_SOLVER_EMD_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/deadline.h"
#include "common/statusor.h"

namespace vz::solver {

/// Ground distance between supply item `i` and demand item `j`.
using GroundDistanceFn = std::function<double(size_t i, size_t j)>;

/// Outcome of an earth-mover's-distance computation.
struct EmdResult {
  /// The distance: minimum cumulative transport cost with both sides
  /// normalized to total mass 1 (Eq. 1 of the paper).
  double distance = 0.0;
  /// Number of arcs in the flow network that was solved — the quantity the
  /// thresholded approximation reduces (Sec. 3.2, Fig. 6).
  int num_arcs = 0;
};

/// Exact earth mover's distance between the discrete distributions
/// (`supplies`, `demands`) under `distance`.
///
/// Weights need not be pre-normalized; they are scaled to sum to 1 on each
/// side, matching the uniform 1/n weighting of Eq. 1 when callers pass all
/// ones. Errors on empty inputs, negative weights, zero-mass sides, or
/// negative ground distances. `cancel` (may be null) is forwarded to the
/// min-cost-flow pivot loop; a fired token aborts with `kCancelled`.
StatusOr<EmdResult> ExactEmd(const std::vector<double>& supplies,
                             const std::vector<double>& demands,
                             const GroundDistanceFn& distance,
                             const CancelToken* cancel = nullptr);

/// One arc of an optimal transport plan.
struct EmdFlow {
  size_t from = 0;    // supply index
  size_t to = 0;      // demand index
  double amount = 0;  // mass shipped (normalized units)
};

/// Result of `ExactEmdWithFlow`: the distance plus the optimal plan.
struct EmdFlowResult {
  double distance = 0.0;
  /// Arcs carrying positive flow. Row sums equal the normalized supplies,
  /// column sums the normalized demands (Eq. 1's constraints).
  std::vector<EmdFlow> flows;
};

/// Like `ExactEmd`, but also returns the optimal transport plan — the
/// object-to-object correspondences drawn as arrows in the paper's Fig. 5.
StatusOr<EmdFlowResult> ExactEmdWithFlow(const std::vector<double>& supplies,
                                         const std::vector<double>& demands,
                                         const GroundDistanceFn& distance);

/// Thresholded-ground-distance EMD (FastEMD, Pele & Werman 2009; adopted by
/// the paper in Sec. 3.2).
///
/// The ground distance is replaced by `min(d(i, j), threshold)`: pairs closer
/// than the threshold keep direct arcs, while all farther pairs are routed
/// through one transshipment vertex whose incoming arcs cost `threshold` and
/// outgoing arcs cost 0 (Fig. 6b). The value is a lower bound on `ExactEmd`
/// and matches it when `threshold` is at least the maximum pairwise distance.
StatusOr<EmdResult> ThresholdedEmd(const std::vector<double>& supplies,
                                   const std::vector<double>& demands,
                                   const GroundDistanceFn& distance,
                                   double threshold,
                                   const CancelToken* cancel = nullptr);

}  // namespace vz::solver

#endif  // VZ_SOLVER_EMD_H_
