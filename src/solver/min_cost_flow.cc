#include "solver/min_cost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace vz::solver {

namespace {
// Residual amounts below this are treated as zero. Supplies in Video-zilla
// are normalized weights (>= 1/n with n at most a few thousand), so this is
// many orders of magnitude below any meaningful flow.
constexpr double kFlowEps = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

int MinCostFlow::AddNode() {
  first_out_.emplace_back();
  return static_cast<int>(first_out_.size()) - 1;
}

int MinCostFlow::AddNodes(int count) {
  const int first = num_nodes();
  for (int i = 0; i < count; ++i) first_out_.emplace_back();
  return first;
}

StatusOr<int> MinCostFlow::AddArc(int from, int to, double capacity,
                                  double cost) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    return Status::InvalidArgument("arc endpoint out of range");
  }
  if (capacity < 0.0) {
    return Status::InvalidArgument("arc capacity must be non-negative");
  }
  if (cost < 0.0) {
    return Status::InvalidArgument("arc cost must be non-negative");
  }
  const int arc = static_cast<int>(head_.size());
  // Forward arc.
  head_.push_back(to);
  residual_.push_back(capacity);
  cost_.push_back(cost);
  // Residual twin.
  head_.push_back(from);
  residual_.push_back(0.0);
  cost_.push_back(-cost);
  capacity_.push_back(capacity);
  first_out_[from].push_back(arc);
  first_out_[to].push_back(arc + 1);
  return arc / 2;
}

StatusOr<MinCostFlow::Result> MinCostFlow::Solve(int source, int sink,
                                                 const CancelToken* cancel) {
  if (solved_) {
    return Status::FailedPrecondition("Solve may be called once per instance");
  }
  if (source < 0 || source >= num_nodes() || sink < 0 || sink >= num_nodes() ||
      source == sink) {
    return Status::InvalidArgument("invalid source/sink");
  }
  solved_ = true;

  const int n = num_nodes();
  std::vector<double> potential(n, 0.0);  // valid: all costs non-negative
  std::vector<double> dist(n);
  std::vector<int> parent_arc(n);

  Result result;
  for (;;) {
    if (Cancelled(cancel)) {
      return Status::Cancelled("min-cost-flow solve cancelled mid-pivot");
    }
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent_arc.begin(), parent_arc.end(), -1);
    dist[source] = 0.0;
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u] + kFlowEps) continue;
      for (int arc : first_out_[u]) {
        if (residual_[arc] <= kFlowEps) continue;
        const int v = head_[arc];
        const double reduced = cost_[arc] + potential[u] - potential[v];
        // Reduced costs are >= 0 up to floating-point error; clamp.
        const double step = reduced > 0.0 ? reduced : 0.0;
        if (dist[u] + step + kFlowEps < dist[v]) {
          dist[v] = dist[u] + step;
          parent_arc[v] = arc;
          heap.emplace(dist[v], v);
        }
      }
    }
    if (dist[sink] == kInf) break;  // no augmenting path remains

    for (int v = 0; v < n; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }

    // Bottleneck along the path.
    double bottleneck = kInf;
    for (int v = sink; v != source;) {
      const int arc = parent_arc[v];
      bottleneck = std::min(bottleneck, residual_[arc]);
      v = head_[arc ^ 1];
    }
    if (bottleneck <= kFlowEps) break;

    // Apply augmentation and accumulate true (non-reduced) cost.
    for (int v = sink; v != source;) {
      const int arc = parent_arc[v];
      residual_[arc] -= bottleneck;
      residual_[arc ^ 1] += bottleneck;
      result.min_cost += bottleneck * cost_[arc];
      v = head_[arc ^ 1];
    }
    result.max_flow += bottleneck;
  }
  return result;
}

double MinCostFlow::FlowOnArc(int arc_id) const {
  const size_t arc = static_cast<size_t>(arc_id) * 2;
  if (arc + 1 >= head_.size()) return 0.0;
  // Flow equals capacity minus remaining forward residual.
  return capacity_[arc_id] - residual_[arc];
}

}  // namespace vz::solver
