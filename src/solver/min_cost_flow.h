#ifndef VZ_SOLVER_MIN_COST_FLOW_H_
#define VZ_SOLVER_MIN_COST_FLOW_H_

#include <cstddef>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/statusor.h"

namespace vz::solver {

/// Minimum-cost maximum-flow solver over a directed graph with real-valued
/// capacities and non-negative real-valued costs.
///
/// Implements successive shortest path augmentation with Johnson potentials
/// (Dijkstra on the reduced costs). For transportation-shaped instances —
/// the only shape Video-zilla produces (Sec. 3.2) — every augmentation
/// saturates a super-source or super-sink arc, so the number of augmenting
/// iterations is bounded by the number of supply plus demand nodes even with
/// real-valued capacities.
class MinCostFlow {
 public:
  /// Result of a solve: total flow shipped and its total cost.
  struct Result {
    double max_flow = 0.0;
    double min_cost = 0.0;
  };

  MinCostFlow() = default;

  MinCostFlow(const MinCostFlow&) = delete;
  MinCostFlow& operator=(const MinCostFlow&) = delete;

  /// Adds a node and returns its id (0-based, dense).
  int AddNode();

  /// Adds `count` nodes and returns the id of the first.
  int AddNodes(int count);

  /// Adds a directed arc. Returns the arc id usable with `FlowOnArc`, or an
  /// error for out-of-range endpoints, negative capacity, or negative cost.
  StatusOr<int> AddArc(int from, int to, double capacity, double cost);

  /// Number of nodes added so far.
  int num_nodes() const { return static_cast<int>(first_out_.size()); }

  /// Number of arcs added so far (residual arcs are not counted).
  int num_arcs() const { return static_cast<int>(head_.size()) / 2; }

  /// Computes the maximum flow from `source` to `sink` at minimum cost.
  /// May be called once per instance.
  ///
  /// `cancel` (may be null) is checked at the top of every augmentation
  /// pivot — the unit of work that bounds checkpoint latency to one Dijkstra
  /// pass. A fired token aborts the solve with `kCancelled`; partial flow is
  /// never reported as a result, so a cancelled solve cannot leak a wrong
  /// distance into callers or caches.
  StatusOr<Result> Solve(int source, int sink,
                         const CancelToken* cancel = nullptr);

  /// Flow shipped on arc `arc_id` after `Solve`.
  double FlowOnArc(int arc_id) const;

 private:
  // Arcs are stored as interleaved forward/reverse pairs: arc 2k is the k-th
  // user arc, arc 2k+1 its residual twin. `head_[a]` is the target node of
  // arc a, residual_[a] the remaining capacity, cost_[a] the unit cost.
  std::vector<int> head_;
  std::vector<double> residual_;
  std::vector<double> cost_;
  std::vector<double> capacity_;              // original capacity, forward arcs
  std::vector<std::vector<int>> first_out_;   // node -> outgoing arc indices
  bool solved_ = false;
};

}  // namespace vz::solver

#endif  // VZ_SOLVER_MIN_COST_FLOW_H_
