#include "core/svs.h"

#include <string>

namespace vz::core {

SvsMetadata Svs::Metadata(int64_t now_ms) const {
  SvsMetadata meta;
  meta.id = id_;
  meta.camera = camera_;
  meta.start_ms = start_ms_;
  meta.end_ms = end_ms_;
  meta.num_frames = frame_ids_.size();
  meta.encoded_bytes = encoded_bytes_;
  meta.access_count = access_count_;
  meta.last_access_ms = last_access_ms_;
  const double hours =
      static_cast<double>(now_ms - start_ms_) / (1000.0 * 3600.0);
  meta.access_frequency =
      hours > 0.0 ? static_cast<double>(access_count_) / hours : 0.0;
  return meta;
}

SvsId SvsStore::Create(CameraId camera, int64_t start_ms, int64_t end_ms,
                       FeatureMap features) {
  const SvsId id = static_cast<SvsId>(svss_.size());
  by_camera_[camera].push_back(id);
  svss_.emplace_back(id, std::move(camera), start_ms, end_ms,
                     std::move(features));
  return id;
}

StatusOr<const Svs*> SvsStore::Get(SvsId id) const {
  if (id < 0 || static_cast<size_t>(id) >= svss_.size()) {
    return Status::NotFound("unknown SVS id " + std::to_string(id));
  }
  return &svss_[static_cast<size_t>(id)];
}

StatusOr<Svs*> SvsStore::GetMutable(SvsId id) {
  if (id < 0 || static_cast<size_t>(id) >= svss_.size()) {
    return Status::NotFound("unknown SVS id " + std::to_string(id));
  }
  return &svss_[static_cast<size_t>(id)];
}

std::vector<SvsId> SvsStore::AllIds() const {
  std::vector<SvsId> ids(svss_.size());
  for (size_t i = 0; i < svss_.size(); ++i) ids[i] = static_cast<SvsId>(i);
  return ids;
}

std::vector<SvsId> SvsStore::IdsForCamera(const CameraId& camera) const {
  auto it = by_camera_.find(camera);
  if (it == by_camera_.end()) return {};
  return it->second;
}

}  // namespace vz::core
