#include "core/inter_camera_index.h"

#include <algorithm>
#include <utility>

#include "clustering/silhouette.h"

namespace vz::core {

namespace {

// Wire size of a representative feature map: floats per vector plus one
// double weight each (the Sec. 7.3 traffic accounting).
size_t WireBytes(const FeatureMap& map) {
  return map.size() * (map.dim() * sizeof(float) + sizeof(double));
}

}  // namespace

InterCameraIndex::InterCameraIndex(OmdCalculator* calculator,
                                   const InterIndexOptions& options, Rng rng)
    : calculator_(calculator), options_(options), rng_(rng) {}

Status InterCameraIndex::UpdateCamera(const IntraCameraIndex& intra) {
  // Drop the camera's previous representatives.
  std::vector<RepEntry> kept;
  kept.reserve(entries_.size());
  for (RepEntry& e : entries_) {
    if (e.camera != intra.camera()) kept.push_back(std::move(e));
  }
  entries_ = std::move(kept);
  // Import the fresh ones.
  const auto& clusters = intra.clusters();
  for (size_t c = 0; c < clusters.size(); ++c) {
    if (clusters[c].representative.empty()) continue;
    RepEntry entry;
    entry.camera = intra.camera();
    entry.intra_cluster_index = c;
    entry.map = clusters[c].representative.AsFeatureMap();
    entry.rep = clusters[c].representative;
    rep_bytes_received_ += WireBytes(entry.map);
    entries_.push_back(std::move(entry));
  }
  return Rebuild();
}

Status InterCameraIndex::SetEntries(std::vector<RepEntry> entries) {
  entries_ = std::move(entries);
  return Rebuild();
}

Status InterCameraIndex::Reset(Rng rng) {
  rng_ = std::move(rng);
  entries_.clear();
  rep_bytes_received_ = 0;
  return Rebuild();
}

Status InterCameraIndex::RemoveCamera(const CameraId& camera) {
  std::vector<RepEntry> kept;
  kept.reserve(entries_.size());
  for (RepEntry& e : entries_) {
    if (e.camera != camera) kept.push_back(std::move(e));
  }
  entries_ = std::move(kept);
  return Rebuild();
}

Status InterCameraIndex::Rebuild() {
  entry_maps_.clear();
  entry_maps_.reserve(entries_.size() + 1);
  for (const RepEntry& e : entries_) entry_maps_.push_back(e.map);
  if (metric_ != nullptr) {
    failed_distances_accum_ += metric_->failed_distances();
  }
  metric_ = std::make_unique<FeatureMapListMetric>(
      &entry_maps_, calculator_, /*memoize=*/false, options_.quantized_prune);
  tree_ = std::make_unique<index::PerchTree>(metric_.get(), options_.perch);
  tree_->Reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    VZ_RETURN_IF_ERROR(tree_->Insert(static_cast<int>(i)));
  }
  return Regroup();
}

size_t InterCameraIndex::ChooseGroupCount() {
  if (options_.forced_num_groups.has_value()) {
    return std::max<size_t>(1, *options_.forced_num_groups);
  }
  const size_t n = entries_.size();
  if (n < 3) return std::max<size_t>(1, n);
  std::vector<FeatureVector> centroids;
  centroids.reserve(n);
  for (const RepEntry& e : entries_) centroids.push_back(e.map.Centroid());
  auto sweep = clustering::ChooseKBySilhouette(
      centroids, options_.min_groups,
      std::min(options_.max_groups, centroids.size() - 1), &rng_);
  if (!sweep.ok()) return std::max<size_t>(1, options_.min_groups);
  return sweep->best_k;
}

Status InterCameraIndex::Regroup() {
  groups_.clear();
  if (entries_.empty() || tree_ == nullptr || tree_->size() == 0) {
    return Status::OK();
  }
  const size_t k = ChooseGroupCount();
  const std::vector<std::vector<int>> raw = tree_->ExtractClusters(k);
  groups_.reserve(raw.size());
  for (const std::vector<int>& members : raw) {
    Group group;
    std::vector<const Representative*> reps;
    for (int m : members) {
      group.entry_indices.push_back(static_cast<size_t>(m));
      reps.push_back(&entries_[static_cast<size_t>(m)].rep);
    }
    if (!reps.empty()) {
      // Covering summaries keep group-level pruning lossless: whatever hits
      // a member representative also hits the group.
      VZ_ASSIGN_OR_RETURN(
          group.representative,
          BuildCoveringRepresentative(reps, options_.representative, &rng_));
    }
    groups_.push_back(std::move(group));
  }
  return Status::OK();
}

std::vector<const InterCameraIndex::RepEntry*> InterCameraIndex::FeatureSearch(
    const FeatureVector& feature, double boundary_scale) const {
  // Sec. 5.2: "The candidate representative SVSs will be first identified in
  // the inter-camera index". The representative population is tiny (cameras
  // x clusters), so each representative's decision boundary is tested
  // directly; the group structure serves clustering queries, where the OMD
  // tree does the narrowing.
  std::vector<const RepEntry*> result;
  for (const RepEntry& entry : entries_) {
    if (entry.rep.Hit(feature, boundary_scale)) {
      result.push_back(&entry);
    }
  }
  return result;
}

StatusOr<const InterCameraIndex::Group*> InterCameraIndex::GroupOfNearest(
    const FeatureMap& query) {
  if (entries_.empty() || tree_ == nullptr || tree_->size() == 0) {
    return Status::NotFound("inter-camera index is empty");
  }
  // Append the query as a scratch slot, search, then remove it again.
  entry_maps_.push_back(query);
  const int scratch = static_cast<int>(entry_maps_.size()) - 1;
  metric_->InvalidateCentroid(static_cast<size_t>(scratch));
  auto nearest = tree_->NearestNeighbor(scratch);
  entry_maps_.pop_back();
  metric_->InvalidateCentroid(static_cast<size_t>(scratch));
  VZ_ASSIGN_OR_RETURN(int item, std::move(nearest));
  for (const Group& group : groups_) {
    for (size_t idx : group.entry_indices) {
      if (static_cast<int>(idx) == item) return &group;
    }
  }
  return Status::Internal("nearest representative not in any group");
}

Status InterCameraIndex::SetForcedGroupCount(std::optional<size_t> k) {
  options_.forced_num_groups = k;
  return Regroup();
}

}  // namespace vz::core
