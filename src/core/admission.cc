#include "core/admission.h"

#include <string>

namespace vz::core {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

Status AdmissionController::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_in_flight == 0) {
    // Gating disabled: the gauge and counter still track load for the
    // monitor, but nothing ever waits or sheds.
    ++in_flight_;
    ++admitted_;
    return Status::OK();
  }
  if (in_flight_ < options_.max_in_flight) {
    ++in_flight_;
    ++admitted_;
    return Status::OK();
  }
  if (waiting_ >= options_.max_queue) {
    ++shed_;
    return Status::ResourceExhausted(
        "query shed: " + std::to_string(in_flight_) + " in flight and " +
        std::to_string(waiting_) + " queued at capacity; retry after " +
        std::to_string(options_.retry_after_hint_ms) + "ms");
  }
  ++waiting_;
  cv_.wait(lock, [this] { return in_flight_ < options_.max_in_flight; });
  --waiting_;
  ++in_flight_;
  ++admitted_;
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ > 0) --in_flight_;
  }
  cv_.notify_one();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.in_flight = in_flight_;
  stats.waiting = waiting_;
  stats.admitted = admitted_;
  stats.shed = shed_;
  stats.max_in_flight = options_.max_in_flight;
  stats.max_queue = options_.max_queue;
  return stats;
}

}  // namespace vz::core
