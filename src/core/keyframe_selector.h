#ifndef VZ_CORE_KEYFRAME_SELECTOR_H_
#define VZ_CORE_KEYFRAME_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "core/frame.h"

namespace vz::core {

/// One ingestion configuration: how aggressively frames are dropped before
/// feature extraction. Heavier configurations keep more frames.
struct KeyframeConfig {
  /// Keep at most every `stride`-th frame.
  size_t frame_stride = 1;
  /// Additionally require the inter-frame deviation to exceed this.
  double deviation_threshold = 0.0;
};

/// Parameters of the adaptive key-frame selector (Sec. 5.1).
struct KeyframeOptions {
  /// Configuration ladder ordered heavyweight -> lightweight; the selector
  /// downgrades under load and upgrades when the queue drains.
  std::vector<KeyframeConfig> ladder = {
      {1, 0.00}, {1, 0.05}, {2, 0.10}, {4, 0.20}, {8, 0.35}};
  /// Simulated feature-extraction service rate in frames per second of
  /// video time (the edge server's compute capacity).
  double processing_capacity_fps = 20.0;
  /// Queue thresholds (in frames) for downgrading / upgrading.
  size_t queue_high_watermark = 32;
  size_t queue_low_watermark = 4;
};

/// Ingestion statistics of one selector.
struct KeyframeStats {
  uint64_t frames_seen = 0;
  uint64_t frames_selected = 0;
  uint64_t downgrades = 0;
  uint64_t upgrades = 0;
};

/// Adaptive key-frame selection: filters frames by stride and inter-frame
/// deviation, and moves along the configuration ladder based on a simulated
/// feature-extraction input queue ("Once a queue starts building up, we will
/// downgrade it to a more lightweight configuration. Conversely, we will
/// upgrade it", Sec. 5.1).
class KeyframeSelector {
 public:
  explicit KeyframeSelector(const KeyframeOptions& options);

  /// Decides whether `frame` becomes a key frame. Advances the simulated
  /// queue using the frame's timestamp.
  bool ShouldProcess(const FrameObservation& frame);

  /// Current position on the ladder (0 = heaviest).
  size_t current_level() const { return level_; }

  /// Simulated queue depth in frames.
  double queue_depth() const { return queue_depth_; }

  const KeyframeStats& stats() const { return stats_; }

 private:
  KeyframeOptions options_;
  size_t level_ = 0;
  double queue_depth_ = 0.0;
  int64_t last_timestamp_ms_ = -1;
  uint64_t frames_since_selected_ = 0;
  KeyframeStats stats_;
};

}  // namespace vz::core

#endif  // VZ_CORE_KEYFRAME_SELECTOR_H_
