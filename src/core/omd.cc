#include "core/omd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/omd_cache.h"
#include "solver/emd.h"
#include "vector/simd_kernels.h"

namespace vz::core {

namespace {

// Deterministic, evenly spaced subsample of a map's vectors, as raw SoA row
// pointers into the map's contiguous buffer.
void Subsample(const FeatureMap& in, size_t cap,
               std::vector<const float*>* rows, std::vector<double>* weights) {
  const size_t n = in.size();
  if (n <= cap) {
    for (size_t i = 0; i < n; ++i) {
      rows->push_back(in.row(i));
      weights->push_back(in.weight(i));
    }
    return;
  }
  for (size_t k = 0; k < cap; ++k) {
    const size_t i = k * n / cap;
    rows->push_back(in.row(i));
    weights->push_back(in.weight(i));
  }
}

// Fills the dense row-major ground-distance matrix, one batched kernel call
// per row, rows distributed over the pool. Each task writes only its own row
// and max slot, so the result is bit-identical for any thread count (max is
// order-independent). A fired cancel token stops row claims at the iteration
// cursor; callers must re-check the token before trusting the matrix — rows
// skipped after cancellation are left zeroed.
//
// When the AVX2 table is active the B side is transposed once into a
// column-major tile so the kernel vectorizes across output columns; every
// per-pair sum keeps the scalar accumulation order, so the filled matrix is
// bit-identical to the row-kernel (and to the seed's per-pair) fill.
double FillGroundMatrix(ThreadPool* pool, const std::vector<const float*>& av,
                        const std::vector<const float*>& bv, size_t dim,
                        std::vector<double>* cost, const CancelToken* cancel) {
  const size_t n = av.size();
  const size_t m = bv.size();
  cost->assign(n * m, 0.0);
  std::vector<double> row_max(n, 0.0);
  const simd::KernelTable& kernels = simd::Active();
  std::vector<float, simd::AlignedAllocator<float>> tile;
  const bool use_cols = simd::Avx2Active() && m >= 8 && dim > 0;
  if (use_cols) {
    tile.resize(m * dim);
    simd::TransposeRows(bv.data(), m, dim, tile.data());
  }
  ParallelFor(pool, n, [&](size_t i) {
    double* row = cost->data() + i * m;
    if (use_cols) {
      kernels.euclidean_cols(av[i], tile.data(), m, dim, row);
    } else {
      kernels.euclidean_rows(av[i], bv.data(), m, dim, row);
    }
    double mx = 0.0;
    for (size_t j = 0; j < m; ++j) mx = std::max(mx, row[j]);
    row_max[i] = mx;
  }, cancel);
  double max_cost = 0.0;
  for (double mx : row_max) max_cost = std::max(max_cost, mx);
  return max_cost;
}

}  // namespace

OmdCalculator::OmdCalculator(const OmdOptions& options) : options_(options) {
  set_threshold_alpha(options_.threshold_alpha);
  if (options_.max_vectors < 1) options_.max_vectors = 1;
}

void OmdCalculator::set_threshold_alpha(double alpha) {
  options_.threshold_alpha = std::min(1.0, std::max(1e-3, alpha));
}

StatusOr<double> OmdCalculator::Distance(const FeatureMap& a,
                                         const FeatureMap& b) {
  return DistanceWithOptions(a, b, options_, nullptr);
}

StatusOr<double> OmdCalculator::Distance(const FeatureMap& a,
                                         const FeatureMap& b,
                                         const CancelToken* cancel) {
  return DistanceWithOptions(a, b, options_, cancel);
}

StatusOr<double> OmdCalculator::DistanceWithOptions(const FeatureMap& a,
                                                    const FeatureMap& b,
                                                    const OmdOptions& options,
                                                    const CancelToken* cancel) {
  if (Cancelled(cancel)) {
    return Status::Cancelled("OMD cancelled before ground-matrix fill");
  }
  num_computations_.fetch_add(1, std::memory_order_relaxed);
  if (a.empty() && b.empty()) return 0.0;
  // An empty side behaves as one zero vector of the other side's dimension.
  // The stand-in map is only materialized when a side actually is empty.
  const FeatureMap* left = &a;
  const FeatureMap* right = &b;
  FeatureMap zero_map;
  if (a.empty() || b.empty()) {
    const FeatureVector zero(a.empty() ? b.dim() : a.dim());
    (void)zero_map.Add(zero, 1.0);
    if (a.empty()) left = &zero_map;
    if (b.empty()) right = &zero_map;
  }
  if (left->dim() != right->dim()) {
    return Status::InvalidArgument("feature map dimension mismatch");
  }

  std::vector<const float*> av;
  std::vector<double> aw;
  std::vector<const float*> bv;
  std::vector<double> bw;
  const size_t cap = std::max<size_t>(1, options.max_vectors);
  Subsample(*left, cap, &av, &aw);
  Subsample(*right, cap, &bv, &bw);

  // Dense ground-distance matrix, shared by both solver modes.
  const size_t m = bv.size();
  std::vector<double> cost;
  const double max_cost =
      FillGroundMatrix(pool_, av, bv, left->dim(), &cost, cancel);
  // A token that fired during the fill leaves unclaimed rows zeroed (and
  // `max_cost` understated); solving that matrix would produce a plausible
  // but wrong distance, so bail out before the solver ever sees it.
  if (Cancelled(cancel)) {
    return Status::Cancelled("OMD cancelled during ground-matrix fill");
  }
  const auto ground = [&cost, m](size_t i, size_t j) {
    return cost[i * m + j];
  };

  if (options.mode == OmdMode::kExact || max_cost == 0.0) {
    VZ_ASSIGN_OR_RETURN(solver::EmdResult result,
                        solver::ExactEmd(aw, bw, ground, cancel));
    return result.distance;
  }
  const double threshold =
      std::min(1.0, std::max(1e-3, options.threshold_alpha)) * max_cost;
  VZ_ASSIGN_OR_RETURN(
      solver::EmdResult result,
      solver::ThresholdedEmd(aw, bw, ground, threshold, cancel));
  return result.distance;
}

StatusOr<OmdCalculator::GroundMatrix> OmdCalculator::ComputeGroundMatrix(
    const FeatureMap& a, const FeatureMap& b) const {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("ground matrix requires non-empty maps");
  }
  if (a.dim() != b.dim()) {
    return Status::InvalidArgument("feature map dimension mismatch");
  }
  std::vector<const float*> av;
  std::vector<double> aw;
  std::vector<const float*> bv;
  std::vector<double> bw;
  Subsample(a, options_.max_vectors, &av, &aw);
  Subsample(b, options_.max_vectors, &bv, &bw);
  GroundMatrix matrix;
  matrix.rows = av.size();
  matrix.cols = bv.size();
  matrix.max_cost =
      FillGroundMatrix(pool_, av, bv, a.dim(), &matrix.cost, nullptr);
  return matrix;
}

double QuantizedOmdLowerBound(const FeatureMap& a, const FeatureMap& b,
                              const OmdOptions& options) {
  if (a.empty() || b.empty() || a.dim() == 0 || a.dim() != b.dim()) {
    return 0.0;
  }
  // The solver subsamples oversized maps; a bound over the full vector set
  // would take the min over *more* candidates than the solver sees, which is
  // not a lower bound on the subsampled distance. Only certify when the
  // quantized set equals the solver's set.
  if (a.size() > options.max_vectors || b.size() > options.max_vectors) {
    return 0.0;
  }
  const auto qa = a.quantized();
  const auto qb = b.quantized();
  if (!qa.has_value() || !qb.has_value()) return 0.0;
  const double total_a = a.TotalWeight();
  const double total_b = b.TotalWeight();
  if (total_a <= 0.0 || total_b <= 0.0) return 0.0;

  const size_t n = a.size();
  const size_t m = b.size();
  const size_t dim = a.dim();
  const double sa = qa->scale;
  const double sb = qb->scale;
  // Componentwise |value - code * scale| <= scale / 2, so the Euclidean
  // distance between a pair differs from its quantized reconstruction by at
  // most (sa + sb) / 2 * sqrt(dim).
  const double margin =
      0.5 * (sa + sb) * std::sqrt(static_cast<double>(dim));
  const double kInf = std::numeric_limits<double>::infinity();
  const simd::KernelTable& kernels = simd::Active();

  std::vector<double> row_min(n, kInf);
  std::vector<double> col_min(m, kInf);
  double qmax = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const int8_t* ca = qa->codes + i * dim;
    const double na = sa * sa * qa->norms[i];
    for (size_t j = 0; j < m; ++j) {
      const int64_t dot = kernels.dot_i8(ca, qb->codes + j * dim, dim);
      const double d2 = na + sb * sb * qb->norms[j] -
                        2.0 * sa * sb * static_cast<double>(dot);
      const double d = std::sqrt(std::max(0.0, d2));
      row_min[i] = std::min(row_min[i], d);
      col_min[j] = std::min(col_min[j], d);
      qmax = std::max(qmax, d);
    }
  }

  // Thresholded mode clips the ground metric at t = alpha * max_cost, and
  // max_cost is only known to be >= qmax - margin; exact mode has no clip.
  double cap = kInf;
  if (options.mode == OmdMode::kThresholded) {
    const double alpha =
        std::min(1.0, std::max(1e-3, options.threshold_alpha));
    cap = alpha * std::max(0.0, qmax - margin);
  }
  double bound_a = 0.0;
  for (size_t i = 0; i < n; ++i) {
    bound_a += a.weight(i) / total_a *
               std::min(std::max(0.0, row_min[i] - margin), cap);
  }
  double bound_b = 0.0;
  for (size_t j = 0; j < m; ++j) {
    bound_b += b.weight(j) / total_b *
               std::min(std::max(0.0, col_min[j] - margin), cap);
  }
  return std::max(bound_a, bound_b);
}

SvsMetric::SvsMetric(const SvsStore* store, OmdCalculator* calculator,
                     const SvsMetricOptions& options)
    : store_(store), calculator_(calculator), options_(options) {}

const FeatureMap* SvsMetric::Resolve(int id) const {
  if (id < 0) {
    auto it = temporaries_.find(id);
    return it == temporaries_.end() ? nullptr : it->second;
  }
  auto svs = store_->Get(id);
  return svs.ok() ? &(*svs)->features() : nullptr;
}

const FeatureVector& SvsMetric::CentroidOf(int id) {
  auto it = centroids_.find(id);
  if (it != centroids_.end()) return it->second;
  const FeatureMap* map = Resolve(id);
  FeatureVector centroid = map != nullptr ? map->Centroid() : FeatureVector();
  return centroids_.emplace(id, std::move(centroid)).first->second;
}

double SvsMetric::Distance(int a, int b) {
  if (a == b) return 0.0;
  const bool cacheable = options_.memoize && a >= 0 && b >= 0;
  const OmdOptions& omd_options = calculator_->options();
  int64_t key = 0;
  if (cacheable) {
    if (shared_cache_ != nullptr) {
      auto hit = shared_cache_->Lookup(a, b, omd_options.mode,
                                       omd_options.threshold_alpha);
      if (hit.has_value()) return *hit;
    } else {
      const auto lo = static_cast<uint32_t>(std::min(a, b));
      const auto hi = static_cast<uint32_t>(std::max(a, b));
      key = static_cast<int64_t>((static_cast<uint64_t>(lo) << 32) | hi);
      auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    }
  }
  // Failures poison the pair with +inf: a broken distance must read as
  // "maximally far", never as 0.0 ("identical"), or clustering and NN
  // search silently fold unrelated items together. The counter surfaces
  // through Monitor as QueryLoadStats::omd_failures.
  const FeatureMap* ma = Resolve(a);
  const FeatureMap* mb = Resolve(b);
  if (ma == nullptr || mb == nullptr) {
    VZ_LOG(Error) << "SvsMetric: unknown item id " << (ma ? b : a);
    failed_distances_.fetch_add(1, std::memory_order_relaxed);
    return std::numeric_limits<double>::infinity();
  }
  ++num_evals_;
  auto result = calculator_->Distance(*ma, *mb);
  if (!result.ok()) {
    VZ_LOG(Error) << "OMD failed: " << result.status().ToString();
    failed_distances_.fetch_add(1, std::memory_order_relaxed);
    return std::numeric_limits<double>::infinity();
  }
  if (cacheable) {
    if (shared_cache_ != nullptr) {
      shared_cache_->Insert(a, b, omd_options.mode,
                            omd_options.threshold_alpha, *result);
    } else {
      memo_.emplace(key, *result);
    }
  }
  return *result;
}

double SvsMetric::LowerBound(int a, int b) {
  if (a == b) return 0.0;
  // OCD: distance between weighted centroids lower-bounds OMD (Sec. 4.3).
  double bound = 0.0;
  const FeatureVector& ca = CentroidOf(a);
  const FeatureVector& cb = CentroidOf(b);
  if (ca.dim() == cb.dim() && !ca.empty()) {
    bound = EuclideanDistance(ca, cb);
  }
  if (options_.quantized_prune) {
    const FeatureMap* ma = Resolve(a);
    const FeatureMap* mb = Resolve(b);
    if (ma != nullptr && mb != nullptr) {
      bound = std::max(
          bound, QuantizedOmdLowerBound(*ma, *mb, calculator_->options()));
    }
  }
  return bound;
}

int SvsMetric::RegisterTemporary(const FeatureMap* map) {
  const int id = next_temporary_--;
  temporaries_[id] = map;
  return id;
}

void SvsMetric::UnregisterTemporary(int id) {
  temporaries_.erase(id);
  centroids_.erase(id);
}

void SvsMetric::InvalidateCache() {
  memo_.clear();
  centroids_.clear();
  if (shared_cache_ != nullptr) shared_cache_->Clear();
}

}  // namespace vz::core
