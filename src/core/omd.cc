#include "core/omd.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/omd_cache.h"
#include "solver/emd.h"

namespace vz::core {

namespace {

// Deterministic, evenly spaced subsample of a map's vectors.
void Subsample(const FeatureMap& in, size_t cap,
               std::vector<const FeatureVector*>* vectors,
               std::vector<double>* weights) {
  const size_t n = in.size();
  if (n <= cap) {
    for (size_t i = 0; i < n; ++i) {
      vectors->push_back(&in.vector(i));
      weights->push_back(in.weight(i));
    }
    return;
  }
  for (size_t k = 0; k < cap; ++k) {
    const size_t i = k * n / cap;
    vectors->push_back(&in.vector(i));
    weights->push_back(in.weight(i));
  }
}

// Fills the dense row-major ground-distance matrix, one batched kernel call
// per row, rows distributed over the pool. Each task writes only its own row
// and max slot, so the result is bit-identical for any thread count (max is
// order-independent). A fired cancel token stops row claims at the iteration
// cursor; callers must re-check the token before trusting the matrix — rows
// skipped after cancellation are left zeroed.
double FillGroundMatrix(ThreadPool* pool,
                        const std::vector<const FeatureVector*>& av,
                        const std::vector<const FeatureVector*>& bv,
                        std::vector<double>* cost, const CancelToken* cancel) {
  const size_t n = av.size();
  const size_t m = bv.size();
  cost->assign(n * m, 0.0);
  std::vector<double> row_max(n, 0.0);
  ParallelFor(pool, n, [&](size_t i) {
    double* row = cost->data() + i * m;
    EuclideanDistancesTo(*av[i], bv.data(), m, row);
    double mx = 0.0;
    for (size_t j = 0; j < m; ++j) mx = std::max(mx, row[j]);
    row_max[i] = mx;
  }, cancel);
  double max_cost = 0.0;
  for (double mx : row_max) max_cost = std::max(max_cost, mx);
  return max_cost;
}

}  // namespace

OmdCalculator::OmdCalculator(const OmdOptions& options) : options_(options) {
  set_threshold_alpha(options_.threshold_alpha);
  if (options_.max_vectors < 1) options_.max_vectors = 1;
}

void OmdCalculator::set_threshold_alpha(double alpha) {
  options_.threshold_alpha = std::min(1.0, std::max(1e-3, alpha));
}

StatusOr<double> OmdCalculator::Distance(const FeatureMap& a,
                                         const FeatureMap& b) {
  return DistanceWithOptions(a, b, options_, nullptr);
}

StatusOr<double> OmdCalculator::Distance(const FeatureMap& a,
                                         const FeatureMap& b,
                                         const CancelToken* cancel) {
  return DistanceWithOptions(a, b, options_, cancel);
}

StatusOr<double> OmdCalculator::DistanceWithOptions(const FeatureMap& a,
                                                    const FeatureMap& b,
                                                    const OmdOptions& options,
                                                    const CancelToken* cancel) {
  if (Cancelled(cancel)) {
    return Status::Cancelled("OMD cancelled before ground-matrix fill");
  }
  num_computations_.fetch_add(1, std::memory_order_relaxed);
  if (a.empty() && b.empty()) return 0.0;
  // An empty side behaves as one zero vector of the other side's dimension.
  // The stand-in map is only materialized when a side actually is empty.
  const FeatureMap* left = &a;
  const FeatureMap* right = &b;
  FeatureMap zero_map;
  if (a.empty() || b.empty()) {
    const FeatureVector zero(a.empty() ? b.dim() : a.dim());
    (void)zero_map.Add(zero, 1.0);
    if (a.empty()) left = &zero_map;
    if (b.empty()) right = &zero_map;
  }
  if (left->dim() != right->dim()) {
    return Status::InvalidArgument("feature map dimension mismatch");
  }

  std::vector<const FeatureVector*> av;
  std::vector<double> aw;
  std::vector<const FeatureVector*> bv;
  std::vector<double> bw;
  const size_t cap = std::max<size_t>(1, options.max_vectors);
  Subsample(*left, cap, &av, &aw);
  Subsample(*right, cap, &bv, &bw);

  // Dense ground-distance matrix, shared by both solver modes.
  const size_t m = bv.size();
  std::vector<double> cost;
  const double max_cost = FillGroundMatrix(pool_, av, bv, &cost, cancel);
  // A token that fired during the fill leaves unclaimed rows zeroed (and
  // `max_cost` understated); solving that matrix would produce a plausible
  // but wrong distance, so bail out before the solver ever sees it.
  if (Cancelled(cancel)) {
    return Status::Cancelled("OMD cancelled during ground-matrix fill");
  }
  const auto ground = [&cost, m](size_t i, size_t j) {
    return cost[i * m + j];
  };

  if (options.mode == OmdMode::kExact || max_cost == 0.0) {
    VZ_ASSIGN_OR_RETURN(solver::EmdResult result,
                        solver::ExactEmd(aw, bw, ground, cancel));
    return result.distance;
  }
  const double threshold =
      std::min(1.0, std::max(1e-3, options.threshold_alpha)) * max_cost;
  VZ_ASSIGN_OR_RETURN(
      solver::EmdResult result,
      solver::ThresholdedEmd(aw, bw, ground, threshold, cancel));
  return result.distance;
}

StatusOr<OmdCalculator::GroundMatrix> OmdCalculator::ComputeGroundMatrix(
    const FeatureMap& a, const FeatureMap& b) const {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("ground matrix requires non-empty maps");
  }
  if (a.dim() != b.dim()) {
    return Status::InvalidArgument("feature map dimension mismatch");
  }
  std::vector<const FeatureVector*> av;
  std::vector<double> aw;
  std::vector<const FeatureVector*> bv;
  std::vector<double> bw;
  Subsample(a, options_.max_vectors, &av, &aw);
  Subsample(b, options_.max_vectors, &bv, &bw);
  GroundMatrix matrix;
  matrix.rows = av.size();
  matrix.cols = bv.size();
  matrix.max_cost = FillGroundMatrix(pool_, av, bv, &matrix.cost, nullptr);
  return matrix;
}

SvsMetric::SvsMetric(const SvsStore* store, OmdCalculator* calculator,
                     const SvsMetricOptions& options)
    : store_(store), calculator_(calculator), options_(options) {}

const FeatureMap* SvsMetric::Resolve(int id) const {
  if (id < 0) {
    auto it = temporaries_.find(id);
    return it == temporaries_.end() ? nullptr : it->second;
  }
  auto svs = store_->Get(id);
  return svs.ok() ? &(*svs)->features() : nullptr;
}

const FeatureVector& SvsMetric::CentroidOf(int id) {
  auto it = centroids_.find(id);
  if (it != centroids_.end()) return it->second;
  const FeatureMap* map = Resolve(id);
  FeatureVector centroid = map != nullptr ? map->Centroid() : FeatureVector();
  return centroids_.emplace(id, std::move(centroid)).first->second;
}

double SvsMetric::Distance(int a, int b) {
  if (a == b) return 0.0;
  const bool cacheable = options_.memoize && a >= 0 && b >= 0;
  const OmdOptions& omd_options = calculator_->options();
  int64_t key = 0;
  if (cacheable) {
    if (shared_cache_ != nullptr) {
      auto hit = shared_cache_->Lookup(a, b, omd_options.mode,
                                       omd_options.threshold_alpha);
      if (hit.has_value()) return *hit;
    } else {
      const auto lo = static_cast<uint32_t>(std::min(a, b));
      const auto hi = static_cast<uint32_t>(std::max(a, b));
      key = static_cast<int64_t>((static_cast<uint64_t>(lo) << 32) | hi);
      auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    }
  }
  const FeatureMap* ma = Resolve(a);
  const FeatureMap* mb = Resolve(b);
  if (ma == nullptr || mb == nullptr) {
    VZ_LOG(Error) << "SvsMetric: unknown item id " << (ma ? b : a);
    return 0.0;
  }
  ++num_evals_;
  auto result = calculator_->Distance(*ma, *mb);
  if (!result.ok()) {
    VZ_LOG(Error) << "OMD failed: " << result.status().ToString();
    return 0.0;
  }
  if (cacheable) {
    if (shared_cache_ != nullptr) {
      shared_cache_->Insert(a, b, omd_options.mode,
                            omd_options.threshold_alpha, *result);
    } else {
      memo_.emplace(key, *result);
    }
  }
  return *result;
}

double SvsMetric::LowerBound(int a, int b) {
  if (a == b) return 0.0;
  const FeatureVector& ca = CentroidOf(a);
  const FeatureVector& cb = CentroidOf(b);
  if (ca.dim() != cb.dim() || ca.empty()) return 0.0;
  // OCD: distance between weighted centroids lower-bounds OMD (Sec. 4.3).
  return EuclideanDistance(ca, cb);
}

int SvsMetric::RegisterTemporary(const FeatureMap* map) {
  const int id = next_temporary_--;
  temporaries_[id] = map;
  return id;
}

void SvsMetric::UnregisterTemporary(int id) {
  temporaries_.erase(id);
  centroids_.erase(id);
}

void SvsMetric::InvalidateCache() {
  memo_.clear();
  centroids_.clear();
  if (shared_cache_ != nullptr) shared_cache_->Clear();
}

}  // namespace vz::core
