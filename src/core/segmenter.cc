#include "core/segmenter.h"

#include <algorithm>
#include <utility>

#include "clustering/kmeans.h"

namespace vz::core {

VideoSegmenter::VideoSegmenter(const SegmenterOptions& options, Rng rng)
    : options_(options), rng_(rng) {}

void VideoSegmenter::SetReference(std::optional<Representative> reference) {
  reference_ = std::move(reference);
}

Segment VideoSegmenter::CutAt(size_t split_index, Segment::Reason reason) {
  split_index = std::min(split_index, buffer_.size());
  if (split_index == 0) split_index = buffer_.size();

  Segment segment;
  segment.reason = reason;
  segment.start_ms = segment_start_ms_;
  segment.end_ms =
      split_index > 0 ? buffer_[split_index - 1].timestamp_ms : segment_start_ms_;
  for (size_t i = 0; i < split_index; ++i) {
    (void)segment.features.Add(std::move(buffer_[i].feature), 1.0);
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<long>(split_index));

  // Re-base the remaining buffer as the start of the next segment.
  segment_start_ms_ =
      buffer_.empty() ? segment.end_ms : buffer_.front().timestamp_ms;
  novel_count_ = 0;
  novel_since_check_ = 0;
  first_novel_index_ = -1;
  last_hit_index_ = -1;
  for (size_t i = 0; i < buffer_.size(); ++i) {
    if (buffer_[i].novel) {
      ++novel_count_;
      if (first_novel_index_ < 0) first_novel_index_ = static_cast<int64_t>(i);
    } else {
      last_hit_index_ = static_cast<int64_t>(i);
    }
  }
  return segment;
}

double VideoSegmenter::NoveltyCoherence() {
  std::vector<FeatureVector> novel;
  novel.reserve(novel_count_);
  for (const TimedFeature& f : buffer_) {
    if (f.novel) novel.push_back(f.feature);
  }
  if (novel.size() < 2) return 0.0;
  clustering::KMeansOptions options;
  options.k = std::min(options_.novelty_kmeans_k, novel.size());
  auto km = clustering::KMeans(novel, options, &rng_);
  if (!km.ok()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < novel.size(); ++i) {
    total += EuclideanDistance(novel[i], km->centroids[km->assignments[i]]);
  }
  return total / static_cast<double>(novel.size());
}

std::optional<Segment> VideoSegmenter::MaybeSplit(int64_t now_ms) {
  if (buffer_.empty() || segment_start_ms_ < 0) return std::nullopt;

  // t_max cap applies with or without a reference (bootstrap uses it to form
  // the first SVS).
  if (now_ms - segment_start_ms_ >= options_.t_max_ms) {
    return CutAt(buffer_.size(), Segment::Reason::kTimeout);
  }
  if (!reference_.has_value()) return std::nullopt;

  // Stale-center rule: some reference center unhit for more than t_split.
  if (reference_->MaxTimeSinceHitMs(now_ms) > options_.t_split_ms &&
      last_hit_index_ >= 0) {
    // Divide at the last hit feature (Sec. 5.1: "the current feature buffer
    // is divided at the point where ... the last hit feature arrives").
    return CutAt(static_cast<size_t>(last_hit_index_) + 1,
                 Segment::Reason::kStaleCenter);
  }

  // Novelty rule: the novel features have become as mutually coherent as the
  // reference's own members (d_n <= d_r).
  if (novel_count_ >= options_.min_novel_features &&
      novel_since_check_ >= options_.novelty_check_stride) {
    novel_since_check_ = 0;
    const double d_n = NoveltyCoherence();
    const double d_r = reference_->AverageMemberDistance();
    if (d_n > 0.0 && d_n <= d_r && first_novel_index_ > 0) {
      // Divide at the first novelty feature.
      return CutAt(static_cast<size_t>(first_novel_index_),
                   Segment::Reason::kNovelty);
    }
  }
  return std::nullopt;
}

std::optional<Segment> VideoSegmenter::AddFeature(int64_t timestamp_ms,
                                                  const FeatureVector& feature) {
  if (segment_start_ms_ < 0) segment_start_ms_ = timestamp_ms;
  TimedFeature tf;
  tf.timestamp_ms = timestamp_ms;
  tf.feature = feature;
  tf.novel = true;
  if (reference_.has_value()) {
    const int hit =
        reference_->RecordHit(feature, timestamp_ms, options_.boundary_scale);
    tf.novel = hit < 0;
  } else {
    tf.novel = false;  // bootstrap: everything belongs to the first SVS
  }
  buffer_.push_back(std::move(tf));
  if (buffer_.back().novel) {
    ++novel_count_;
    ++novel_since_check_;
    if (first_novel_index_ < 0) {
      first_novel_index_ = static_cast<int64_t>(buffer_.size()) - 1;
    }
  } else {
    last_hit_index_ = static_cast<int64_t>(buffer_.size()) - 1;
  }
  return MaybeSplit(timestamp_ms);
}

std::optional<Segment> VideoSegmenter::AdvanceTime(int64_t timestamp_ms) {
  return MaybeSplit(timestamp_ms);
}

std::optional<Segment> VideoSegmenter::Flush() {
  if (buffer_.empty()) return std::nullopt;
  return CutAt(buffer_.size(), Segment::Reason::kFlush);
}

}  // namespace vz::core
