#include "core/query.h"

#include <algorithm>

namespace vz::core {

bool QueryConstraints::AllowsCamera(const CameraId& camera) const {
  if (!cameras.has_value()) return true;
  return std::find(cameras->begin(), cameras->end(), camera) !=
         cameras->end();
}

bool QueryConstraints::AllowsTime(int64_t start_ms, int64_t end_ms) const {
  if (!time_range_ms.has_value()) return true;
  return end_ms >= time_range_ms->first && start_ms <= time_range_ms->second;
}

}  // namespace vz::core
