#ifndef VZ_CORE_FRAME_H_
#define VZ_CORE_FRAME_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "vector/feature_vector.h"

namespace vz::core {

/// Identifies a camera feed. Stable for the lifetime of the deployment.
using CameraId = std::string;

/// Identifies an application that registered with Video-zilla (`appID` in
/// the paper's APIs, Sec. 6).
using AppId = std::string;

/// Identifier of a semantic video stream within the `SvsStore`.
using SvsId = int64_t;

/// Axis-aligned object box in frame pixel coordinates (Sec. 3.1: "Each
/// object is represented by its four-point 2-D coordinate").
struct BoundingBox {
  float top = 0.0f;
  float left = 0.0f;
  float bottom = 0.0f;
  float right = 0.0f;

  float Width() const { return right - left; }
  float Height() const { return bottom - top; }
  float Area() const { return Width() * Height(); }
};

/// One clipped object after detection and feature extraction.
struct DetectedObject {
  BoundingBox box;
  /// Penultimate-layer feature vector from the registered extractor.
  FeatureVector feature;
  /// Cheap-classifier class id (top-1), or -1 when unavailable. Used by the
  /// FOCUS-style top-k baseline and by diagnostics; the Video-zilla index
  /// itself never reads it.
  int class_hint = -1;
  /// Confidence of `class_hint` in [0, 1].
  double class_confidence = 0.0;
};

/// Everything the indexing layer receives for one (key) frame.
///
/// Contract enforced by `VideoZilla::IngestFrame` (see the "Failure model"
/// section of DESIGN.md): frames of one camera arrive in (strictly
/// increasing) timestamp order up to a configurable reorder-tolerance
/// window, and every object feature is finite with a consistent dimension.
/// Violations within tolerance are quarantined and counted, never fatal.
struct FrameObservation {
  CameraId camera;
  int64_t timestamp_ms = 0;
  /// Globally unique frame id assigned by the ingestion pipeline.
  int64_t frame_id = -1;
  /// Pixel-level deviation from the previous frame in [0, 1]; input to the
  /// adaptive key-frame selector (Sec. 5.1).
  double deviation_from_previous = 0.0;
  /// Encoded size, for storage/network accounting.
  size_t encoded_bytes = 0;
  std::vector<DetectedObject> objects;
};

/// True iff every component of `feature` is finite (no NaN / Inf). An
/// all-finite check is the gatekeeper for everything downstream: one NaN
/// admitted into a feature map poisons every distance, centroid and decision
/// boundary it touches.
inline bool FeatureIsFinite(const FeatureVector& feature) {
  for (size_t i = 0; i < feature.dim(); ++i) {
    if (!std::isfinite(feature[i])) return false;
  }
  return true;
}

/// True iff `object` carries an ingestible feature: non-empty, finite, and
/// matching `expected_dim` when one is known (`expected_dim == 0` accepts
/// any dimension — used before the first valid object pins the dimension).
inline bool ObjectIsIngestible(const DetectedObject& object,
                               size_t expected_dim) {
  if (object.feature.empty()) return false;
  if (expected_dim != 0 && object.feature.dim() != expected_dim) return false;
  return FeatureIsFinite(object.feature);
}

}  // namespace vz::core

#endif  // VZ_CORE_FRAME_H_
