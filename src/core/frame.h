#ifndef VZ_CORE_FRAME_H_
#define VZ_CORE_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vector/feature_vector.h"

namespace vz::core {

/// Identifies a camera feed. Stable for the lifetime of the deployment.
using CameraId = std::string;

/// Identifies an application that registered with Video-zilla (`appID` in
/// the paper's APIs, Sec. 6).
using AppId = std::string;

/// Identifier of a semantic video stream within the `SvsStore`.
using SvsId = int64_t;

/// Axis-aligned object box in frame pixel coordinates (Sec. 3.1: "Each
/// object is represented by its four-point 2-D coordinate").
struct BoundingBox {
  float top = 0.0f;
  float left = 0.0f;
  float bottom = 0.0f;
  float right = 0.0f;

  float Width() const { return right - left; }
  float Height() const { return bottom - top; }
  float Area() const { return Width() * Height(); }
};

/// One clipped object after detection and feature extraction.
struct DetectedObject {
  BoundingBox box;
  /// Penultimate-layer feature vector from the registered extractor.
  FeatureVector feature;
  /// Cheap-classifier class id (top-1), or -1 when unavailable. Used by the
  /// FOCUS-style top-k baseline and by diagnostics; the Video-zilla index
  /// itself never reads it.
  int class_hint = -1;
  /// Confidence of `class_hint` in [0, 1].
  double class_confidence = 0.0;
};

/// Everything the indexing layer receives for one (key) frame.
struct FrameObservation {
  CameraId camera;
  int64_t timestamp_ms = 0;
  /// Globally unique frame id assigned by the ingestion pipeline.
  int64_t frame_id = -1;
  /// Pixel-level deviation from the previous frame in [0, 1]; input to the
  /// adaptive key-frame selector (Sec. 5.1).
  double deviation_from_previous = 0.0;
  /// Encoded size, for storage/network accounting.
  size_t encoded_bytes = 0;
  std::vector<DetectedObject> objects;
};

}  // namespace vz::core

#endif  // VZ_CORE_FRAME_H_
