#ifndef VZ_CORE_APP_REGISTRY_H_
#define VZ_CORE_APP_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/videozilla.h"

namespace vz::core {

/// Per-application index registry, implementing the paper's per-model
/// indexing (Sec. 5.4: "Video-zilla generates an index per DNN model") and
/// the `appID`-carrying API signatures of Sec. 6.
///
/// Each registered application owns one `VideoZilla` instance, configured
/// when the app registers its feature extractor (`setFeatureExtractors`).
/// Frames fan out to every app whose camera is started — in a deployment
/// each app's edge stack extracts features with its own model, so
/// `IngestFrame` takes per-app observations.
class AppRegistry {
 public:
  /// `base_options` seeds each app's configuration.
  explicit AppRegistry(VideoZillaOptions base_options)
      : base_options_(std::move(base_options)) {}

  AppRegistry(const AppRegistry&) = delete;
  AppRegistry& operator=(const AppRegistry&) = delete;

  /// `setFeatureExtractors(Model, appID)`: registers `app` with its own
  /// index, recording the extractor model name the app uses. Errors if the
  /// app already exists.
  Status SetFeatureExtractor(const AppId& app, const std::string& model_name,
                             const VideoZillaOptions* overrides = nullptr);

  /// Drops an application and its index.
  Status RemoveApp(const AppId& app);

  /// `cameraStart(cameraID, historyDataTimeRange, appID)`. The history
  /// range is accepted for API parity; live ingestion begins immediately.
  Status CameraStart(const CameraId& camera, const AppId& app);

  /// `cameraTerminate(cameraID, appID)`.
  Status CameraTerminate(const CameraId& camera, const AppId& app);

  /// Routes one frame (already run through `app`'s extractor) to that app's
  /// index.
  Status IngestFrame(const AppId& app, const FrameObservation& frame);

  /// Flushes every app's segmenters.
  Status FlushAll();

  /// `directQuery(objectImg, appID)`.
  StatusOr<DirectQueryResult> DirectQuery(
      const FeatureVector& object_feature, const AppId& app,
      const QueryConstraints& constraints = QueryConstraints());

  /// `clusteringQuery(targetSVS, appID)`.
  StatusOr<ClusteringQueryResult> ClusteringQuery(
      const FeatureMap& target, const AppId& app,
      const QueryConstraints& constraints = QueryConstraints());

  /// `getMetaData(SVS)` within an app's index.
  StatusOr<SvsMetadata> GetMetaData(const AppId& app, SvsId id) const;

  /// Direct access to an app's index (verifier wiring, knobs, stats).
  StatusOr<VideoZilla*> Get(const AppId& app);

  /// The extractor model an app registered.
  StatusOr<std::string> ModelOf(const AppId& app) const;

  /// Registered app ids, sorted.
  std::vector<AppId> Apps() const;

  size_t size() const { return apps_.size(); }

 private:
  struct AppState {
    std::string model_name;
    std::unique_ptr<VideoZilla> index;
  };

  StatusOr<AppState*> Find(const AppId& app);
  StatusOr<const AppState*> Find(const AppId& app) const;

  VideoZillaOptions base_options_;
  std::map<AppId, AppState> apps_;
};

}  // namespace vz::core

#endif  // VZ_CORE_APP_REGISTRY_H_
