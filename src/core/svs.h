#ifndef VZ_CORE_SVS_H_
#define VZ_CORE_SVS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "core/frame.h"
#include "core/representative.h"
#include "vector/feature_map.h"

namespace vz::core {

/// Metadata returned by `getMetaData(SVS)` (Sec. 6): timestamps, source
/// camera, and access statistics for archival decisions.
struct SvsMetadata {
  SvsId id = -1;
  CameraId camera;
  int64_t start_ms = 0;
  int64_t end_ms = 0;
  size_t num_frames = 0;
  size_t encoded_bytes = 0;
  uint64_t access_count = 0;
  int64_t last_access_ms = -1;
  /// Accesses per simulated hour of existence since creation; 0 if unknown.
  double access_frequency = 0.0;
};

/// A semantic video stream: a contiguous block of frames of one camera,
/// characterized by the feature map of its objects (Sec. 3.1).
class Svs {
 public:
  Svs(SvsId id, CameraId camera, int64_t start_ms, int64_t end_ms,
      FeatureMap features)
      : id_(id),
        camera_(std::move(camera)),
        start_ms_(start_ms),
        end_ms_(end_ms),
        features_(std::move(features)) {}

  SvsId id() const { return id_; }
  const CameraId& camera() const { return camera_; }
  int64_t start_ms() const { return start_ms_; }
  int64_t end_ms() const { return end_ms_; }
  int64_t DurationMs() const { return end_ms_ - start_ms_; }

  /// The feature map (all object feature vectors with uniform weights).
  const FeatureMap& features() const { return features_; }

  /// Per-SVS representative (weighted k-means centers, Sec. 3.3), built once
  /// at creation and used for query-hit tests.
  const Representative& representative() const { return representative_; }
  void set_representative(Representative rep) {
    representative_ = std::move(rep);
  }

  /// Frames covered by this SVS, for the verification stage of queries.
  const std::vector<int64_t>& frame_ids() const { return frame_ids_; }
  void set_frame_ids(std::vector<int64_t> ids) { frame_ids_ = std::move(ids); }

  size_t encoded_bytes() const { return encoded_bytes_; }
  void set_encoded_bytes(size_t bytes) { encoded_bytes_ = bytes; }

  uint64_t access_count() const { return access_count_; }
  int64_t last_access_ms() const { return last_access_ms_; }

  /// Registers a query access at the given simulated time.
  void RecordAccess(int64_t now_ms) {
    ++access_count_;
    if (now_ms > last_access_ms_) last_access_ms_ = now_ms;
  }

  /// Restores persisted access statistics (snapshot loading only).
  void RestoreAccessStats(uint64_t count, int64_t last_access_ms) {
    access_count_ = count;
    last_access_ms_ = last_access_ms;
  }

  /// Snapshot of the metadata at simulated time `now_ms`.
  SvsMetadata Metadata(int64_t now_ms) const;

 private:
  SvsId id_;
  CameraId camera_;
  int64_t start_ms_;
  int64_t end_ms_;
  FeatureMap features_;
  Representative representative_;
  std::vector<int64_t> frame_ids_;
  size_t encoded_bytes_ = 0;
  uint64_t access_count_ = 0;
  int64_t last_access_ms_ = -1;
};

/// Owning store of all SVSs known to the indexing layer. Ids are dense and
/// monotonically increasing; SVSs are immutable apart from representatives
/// and access statistics.
class SvsStore {
 public:
  SvsStore() = default;

  SvsStore(const SvsStore&) = delete;
  SvsStore& operator=(const SvsStore&) = delete;

  /// Creates and stores a new SVS, returning its id.
  SvsId Create(CameraId camera, int64_t start_ms, int64_t end_ms,
               FeatureMap features);

  /// Lookup; errors for unknown ids.
  StatusOr<const Svs*> Get(SvsId id) const;
  StatusOr<Svs*> GetMutable(SvsId id);

  size_t size() const { return svss_.size(); }

  /// Drops every stored SVS and restarts id numbering at 0 — the standby
  /// re-seed path, which replaces the whole store with a fetched checkpoint.
  void Clear() {
    svss_.clear();
    by_camera_.clear();
  }

  /// All ids in creation order.
  std::vector<SvsId> AllIds() const;

  /// Ids belonging to `camera`, in creation order.
  std::vector<SvsId> IdsForCamera(const CameraId& camera) const;

 private:
  std::vector<Svs> svss_;  // index == id
  std::unordered_map<CameraId, std::vector<SvsId>> by_camera_;
};

}  // namespace vz::core

#endif  // VZ_CORE_SVS_H_
