#ifndef VZ_CORE_MONITOR_H_
#define VZ_CORE_MONITOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/statusor.h"
#include "core/query.h"
#include "core/videozilla.h"

namespace vz::core {

/// Parameters of the performance monitor (Sec. 5.3).
struct MonitorOptions {
  /// User-defined error preference: minimum acceptable query F1.
  double target_f1 = 0.9;
  /// Ground-truth comparison cadence ("Video-zilla only performs this
  /// operation every 50 queries").
  size_t ground_truth_interval = 50;
  /// While bailed out, probe the hierarchical index this often ("every 10
  /// queries").
  size_t bailout_probe_interval = 10;
  /// How many clusters adjustment (i) adds to the inter and intra indices.
  size_t cluster_increase_step = 2;
};

/// Degradation ladder state. Each failing ground-truth check advances one
/// step: (i) more clusters, (ii) exact OMD, (iii) flat SVS index, then
/// bailout to the frame-level scan.
enum class MonitorState {
  kNormal = 0,
  kMoreClusters = 1,
  kAccurateOmd = 2,
  kFlatSvsIndex = 3,
  kBailout = 4,
};

/// Wraps a `VideoZilla` instance and adapts its parameters to keep query
/// quality above the user's error preference (Sec. 5.3).
///
/// Queries flow through `Query()`. Periodically the monitor also evaluates
/// the caller-supplied ground truth oracle (in a deployment this is the
/// exhaustive all-frames query run in the background; in this reproduction
/// the simulation's oracle) and compares F1 against the target. Persistent
/// misses walk down the adjustment ladder and eventually trigger bailout;
/// while bailed out, the hierarchical index is probed periodically and
/// reinstated once it meets the target again.
class PerformanceMonitor {
 public:
  /// Returns the ground-truth matching SVS ids for a query feature.
  using GroundTruthFn =
      std::function<std::vector<SvsId>(const FeatureVector&)>;

  /// `system` must outlive the monitor.
  PerformanceMonitor(VideoZilla* system, const MonitorOptions& options,
                     GroundTruthFn ground_truth);

  /// Runs a direct query, interleaving the monitoring protocol.
  StatusOr<DirectQueryResult> Query(
      const FeatureVector& feature,
      const QueryConstraints& constraints = QueryConstraints());

  MonitorState state() const { return state_; }

  /// Hit/miss counters of the system's shared OMD distance cache. Exposed
  /// alongside the F1 telemetry so parameter adaptation can distinguish "the
  /// index is slow" from "the cache went cold" (e.g. after heavy ingestion
  /// churn invalidated many pairs, or after a mode/alpha switch re-keyed
  /// every entry).
  OmdCacheStats omd_cache_stats() const { return system_->omd_cache().stats(); }

  /// Load/overload gauges and counters of the system's query path (in-flight,
  /// shed, timed-out, FastOMD reroutes, checkpoint overshoot). Exposed like
  /// the OMD-cache stats so adaptation can tell "quality degraded" apart
  /// from "the system is saturated and shedding/timing out".
  QueryLoadStats query_load_stats() const {
    return system_->query_load_stats();
  }

  /// Adjusts the user error preference at runtime.
  void set_target_f1(double target) { options_.target_f1 = target; }
  uint64_t queries_run() const { return queries_run_; }
  uint64_t ground_truth_checks() const { return ground_truth_checks_; }
  /// F1 of the most recent ground-truth comparison; -1 before the first.
  double last_f1() const { return last_f1_; }

  /// F1 between a predicted and true SVS set (exposed for tests/benches).
  static double F1(const std::vector<SvsId>& predicted,
                   const std::vector<SvsId>& truth);

 private:
  void ApplyNextAdjustment();

  /// Drops truth ids whose SVS lives on a camera the query excluded for
  /// health reasons. A stalled feed lowers recall by design (the partial
  /// answer is the contract, see DESIGN.md "Failure model"); charging that
  /// recall loss to the index would walk the degradation ladder for a
  /// problem no adjustment can fix.
  std::vector<SvsId> FilterTruthForDegradation(
      std::vector<SvsId> truth, const DirectQueryResult& result) const;

  VideoZilla* system_;
  MonitorOptions options_;
  GroundTruthFn ground_truth_;
  MonitorState state_ = MonitorState::kNormal;
  uint64_t queries_run_ = 0;
  uint64_t ground_truth_checks_ = 0;
  double last_f1_ = -1.0;
  size_t base_inter_groups_ = 0;  // inter group count before adjustment (0 = auto)
};

}  // namespace vz::core

#endif  // VZ_CORE_MONITOR_H_
