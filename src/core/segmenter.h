#ifndef VZ_CORE_SEGMENTER_H_
#define VZ_CORE_SEGMENTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "core/representative.h"
#include "vector/feature_map.h"
#include "vector/feature_vector.h"

namespace vz::core {

/// Parameters of the automatic video segmentation of Sec. 5.1 / Algorithm 3.
struct SegmenterOptions {
  /// Maximum SVS length; also the bootstrap length (t_max, paper default
  /// 15 minutes).
  int64_t t_max_ms = 15LL * 60 * 1000;
  /// A representative center unhit for longer than this triggers a split
  /// (t_split = t_max / 10, Sec. 5.1).
  int64_t t_split_ms = 90LL * 1000;
  /// Minimum novel features buffered before the d_n <= d_r test runs, and
  /// the cadence (every N-th novel feature) of the k-means evaluation —
  /// clustering the novelty buffer per feature would be wasteful.
  size_t min_novel_features = 8;
  size_t novelty_check_stride = 4;
  /// k used when clustering the novelty buffer.
  size_t novelty_kmeans_k = 3;
  /// Boundary scale for the hit test against the reference representative.
  /// Representatives default to robust (quantile-capped) boundaries, so the
  /// segmentation hit test runs with extra margin to keep ordinary members
  /// from registering as novel.
  double boundary_scale = 1.25;
};

/// A finished segment produced by the segmenter.
struct Segment {
  int64_t start_ms = 0;
  int64_t end_ms = 0;
  /// Feature map of all features in [start_ms, end_ms], uniform weights.
  FeatureMap features;
  /// Why the segment was cut.
  enum class Reason { kNovelty, kStaleCenter, kTimeout, kFlush } reason =
      Reason::kTimeout;
};

/// Streaming video segmentation (Algorithm 3): tracks features that fall
/// outside the reference representative's decision boundaries and cuts a new
/// SVS when the novelty buffer becomes as coherent as the reference
/// (d_n <= d_r), when a reference center goes stale (t_hit > t_split), or at
/// the t_max cap.
///
/// The caller owns the reference: after each finished segment is inserted
/// into the intra-camera index, call `SetReference` with the representative
/// of the cluster that segment joined (Sec. 5.1, "Tracking novel features").
class VideoSegmenter {
 public:
  VideoSegmenter(const SegmenterOptions& options, Rng rng);

  /// Feeds one feature vector observed at `timestamp_ms` (timestamps must be
  /// non-decreasing). Returns a finished segment when a cut triggers.
  std::optional<Segment> AddFeature(int64_t timestamp_ms,
                                    const FeatureVector& feature);

  /// Advances time without a feature (e.g. an object-free key frame); may
  /// trigger the timeout or stale-center cuts.
  std::optional<Segment> AdvanceTime(int64_t timestamp_ms);

  /// Flushes whatever is buffered as a final segment (end of stream).
  std::optional<Segment> Flush();

  /// Installs the reference representative (copied). Pass an empty optional
  /// to return to bootstrap behavior.
  void SetReference(std::optional<Representative> reference);

  bool has_reference() const { return reference_.has_value(); }
  size_t buffered_features() const { return buffer_.size(); }

 private:
  struct TimedFeature {
    int64_t timestamp_ms;
    FeatureVector feature;
    bool novel;
  };

  // Cuts the buffer at `split_index` (features [0, split_index) leave as a
  // segment; the rest remain buffered).
  Segment CutAt(size_t split_index, Segment::Reason reason);
  // d_n of Algorithm 3: mean member-to-center distance after k-means over
  // the novelty buffer.
  double NoveltyCoherence();
  std::optional<Segment> MaybeSplit(int64_t now_ms);

  SegmenterOptions options_;
  Rng rng_;
  std::optional<Representative> reference_;
  std::vector<TimedFeature> buffer_;
  size_t novel_count_ = 0;
  size_t novel_since_check_ = 0;
  int64_t segment_start_ms_ = -1;
  int64_t last_hit_index_ = -1;  // buffer index of the last hitting feature
  int64_t first_novel_index_ = -1;
};

}  // namespace vz::core

#endif  // VZ_CORE_SEGMENTER_H_
