#ifndef VZ_CORE_ARCHIVER_H_
#define VZ_CORE_ARCHIVER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/videozilla.h"

namespace vz::core {

/// Parameters of the proactive archival service (Sec. 7.6).
struct ArchiverOptions {
  /// SVSs whose cluster-estimated access frequency (accesses per simulated
  /// hour) falls below this are archived to secondary storage.
  double access_frequency_threshold = 0.1;
};

/// What the archiver would move to secondary storage.
struct ArchivePlan {
  std::vector<SvsId> to_archive;
  size_t archived_bytes = 0;
  size_t total_bytes = 0;
  int64_t archived_duration_ms = 0;
  int64_t total_duration_ms = 0;

  /// Fraction of stored bytes freed by archiving.
  double ByteFraction() const {
    return total_bytes == 0
               ? 0.0
               : static_cast<double>(archived_bytes) / total_bytes;
  }
  /// Fraction of video time archived.
  double DurationFraction() const {
    return total_duration_ms == 0
               ? 0.0
               : static_cast<double>(archived_duration_ms) /
                     static_cast<double>(total_duration_ms);
  }
};

/// Proactive video archiving on top of the clustering query (Sec. 6's
/// `isArchived` case study and the Sec. 7.6 evaluation): an SVS's future
/// usefulness is estimated from the access frequencies of the SVSs in its
/// semantic cluster, and low-information SVSs are archived aggressively.
class Archiver {
 public:
  /// `system` must outlive the archiver.
  Archiver(VideoZilla* system, const ArchiverOptions& options);

  /// The paper's composed `isArchived(targetSVS)` API: mean access frequency
  /// of the SVSs semantically similar to `target` (code snippet in Sec. 6).
  StatusOr<double> IsArchived(const FeatureMap& target);

  /// Estimated access frequency for a stored SVS, averaged over its
  /// intra-camera cluster peers; falls back to its own frequency when the
  /// cluster is unknown.
  StatusOr<double> EstimatedAccessFrequency(SvsId id);

  /// Sweeps the store and plans which SVSs to archive.
  StatusOr<ArchivePlan> PlanArchive();

 private:
  VideoZilla* system_;
  ArchiverOptions options_;
};

}  // namespace vz::core

#endif  // VZ_CORE_ARCHIVER_H_
