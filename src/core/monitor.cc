#include "core/monitor.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace vz::core {

PerformanceMonitor::PerformanceMonitor(VideoZilla* system,
                                       const MonitorOptions& options,
                                       GroundTruthFn ground_truth)
    : system_(system),
      options_(options),
      ground_truth_(std::move(ground_truth)) {
  if (options_.ground_truth_interval == 0) options_.ground_truth_interval = 1;
  if (options_.bailout_probe_interval == 0) options_.bailout_probe_interval = 1;
}

double PerformanceMonitor::F1(const std::vector<SvsId>& predicted,
                              const std::vector<SvsId>& truth) {
  if (predicted.empty() && truth.empty()) return 1.0;
  std::unordered_set<SvsId> truth_set(truth.begin(), truth.end());
  size_t tp = 0;
  for (SvsId id : predicted) tp += truth_set.count(id);
  const double precision =
      predicted.empty() ? 0.0
                        : static_cast<double>(tp) / predicted.size();
  const double recall =
      truth.empty() ? 1.0 : static_cast<double>(tp) / truth.size();
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

std::vector<SvsId> PerformanceMonitor::FilterTruthForDegradation(
    std::vector<SvsId> truth, const DirectQueryResult& result) const {
  if (!result.degraded) return truth;
  const std::unordered_set<CameraId> excluded(result.excluded_cameras.begin(),
                                              result.excluded_cameras.end());
  std::vector<SvsId> kept;
  kept.reserve(truth.size());
  for (SvsId id : truth) {
    auto svs = system_->svs_store().Get(id);
    if (svs.ok() && excluded.count((*svs)->camera()) > 0) continue;
    kept.push_back(id);
  }
  return kept;
}

void PerformanceMonitor::ApplyNextAdjustment() {
  switch (state_) {
    case MonitorState::kNormal: {
      // (i) Increase the cluster counts of both index levels.
      const size_t groups = system_->inter_index().groups().size();
      base_inter_groups_ = groups;
      (void)system_->SetInterGroupCount(groups + options_.cluster_increase_step);
      state_ = MonitorState::kMoreClusters;
      VZ_LOG(Info) << "monitor: increasing cluster counts";
      break;
    }
    case MonitorState::kMoreClusters:
      // (ii) Exact OMD (threshold alpha -> 1).
      system_->SetOmdAlpha(1.0);
      state_ = MonitorState::kAccurateOmd;
      VZ_LOG(Info) << "monitor: switching to exact OMD";
      break;
    case MonitorState::kAccurateOmd:
      // (iii) Flat SVS index without the intra/inter distinction.
      system_->SetIndexMode(IndexMode::kFlatSvs);
      state_ = MonitorState::kFlatSvsIndex;
      VZ_LOG(Info) << "monitor: downgrading to flat SVS index";
      break;
    case MonitorState::kFlatSvsIndex:
      // Bailout: frame-level scan across all cameras.
      system_->SetIndexMode(IndexMode::kFlat);
      state_ = MonitorState::kBailout;
      VZ_LOG(Warning) << "monitor: bailout to frame-level search";
      break;
    case MonitorState::kBailout:
      break;  // nowhere further to go
  }
}

StatusOr<DirectQueryResult> PerformanceMonitor::Query(
    const FeatureVector& feature, const QueryConstraints& constraints) {
  ++queries_run_;
  VZ_ASSIGN_OR_RETURN(DirectQueryResult result,
                      system_->DirectQuery(feature, constraints));

  if (state_ == MonitorState::kBailout) {
    // Probe the hierarchical index periodically to decide when to return
    // (Sec. 5.3: "Video-zilla periodically runs a query on the hierarchical
    // index to determine when to switch back").
    if (queries_run_ % options_.bailout_probe_interval == 0 && ground_truth_) {
      const IndexMode saved = system_->index_mode();
      system_->SetIndexMode(IndexMode::kHierarchical);
      auto probe = system_->DirectQuery(feature, constraints);
      system_->SetIndexMode(saved);
      if (probe.ok()) {
        const double f1 =
            F1(probe->matched_svss,
               FilterTruthForDegradation(ground_truth_(feature), *probe));
        ++ground_truth_checks_;
        last_f1_ = f1;
        if (f1 >= options_.target_f1) {
          system_->SetIndexMode(IndexMode::kHierarchical);
          state_ = MonitorState::kNormal;
          VZ_LOG(Info) << "monitor: hierarchical index reinstated (F1=" << f1
                       << ")";
        }
      }
    }
    return result;
  }

  // Periodic ground-truth comparison (every 50 queries by default).
  if (queries_run_ % options_.ground_truth_interval == 0 && ground_truth_) {
    const double f1 =
        F1(result.matched_svss,
           FilterTruthForDegradation(ground_truth_(feature), result));
    ++ground_truth_checks_;
    last_f1_ = f1;
    if (f1 < options_.target_f1) {
      ApplyNextAdjustment();
    }
  }
  return result;
}

}  // namespace vz::core
