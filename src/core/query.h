#ifndef VZ_CORE_QUERY_H_
#define VZ_CORE_QUERY_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "core/frame.h"
#include "core/svs.h"
#include "vector/feature_vector.h"

namespace vz::core {

/// Optional qualifiers accepted by both query types (Sec. 2.3: "Additional
/// qualifiers over a subset of camera or time range can be easily
/// supported").
struct QueryConstraints {
  /// Restrict to these cameras (empty optional = all cameras).
  std::optional<std::vector<CameraId>> cameras;
  /// Restrict to SVSs overlapping [first, second] in simulated ms.
  std::optional<std::pair<int64_t, int64_t>> time_range_ms;
  /// Time budget for this query, measured against the system's configured
  /// `TimeSource` (wall clock by default, `SimClock` in tests). On expiry
  /// the query stops at the next cancellation checkpoint and returns the
  /// best-effort result accumulated so far with `timed_out = true` — never
  /// an error. Zero or negative budgets are already expired. `nullopt` (the
  /// default) runs to completion, exactly the legacy behaviour.
  std::optional<int64_t> deadline_ms;
  /// External cancellation handle (borrowed, may be null): fire it from
  /// another thread to abandon the query cooperatively. Composes with
  /// `deadline_ms` — either firing stops the query.
  const CancelToken* cancel = nullptr;

  /// True when `camera` passes the camera filter.
  bool AllowsCamera(const CameraId& camera) const;
  /// True when [start, end] passes the time filter.
  bool AllowsTime(int64_t start_ms, int64_t end_ms) const;
};

/// Verifies query candidates with the heavy ("ground truth") DNN, as in the
/// FOCUS-style pipeline the paper compares against (Sec. 7.4). Video-zilla
/// narrows the candidate set; the verifier supplies the final per-frame
/// answer and the GPU cost of producing it. Implemented by
/// `vz::sim::SimObjectVerifier` in this reproduction.
class ObjectVerifier {
 public:
  struct Verification {
    /// Does the SVS actually contain an object matching the query?
    bool contains = false;
    /// Simulated GPU milliseconds spent running the heavy model.
    double gpu_ms = 0.0;
    /// Frames pushed through the heavy model.
    size_t frames_processed = 0;
  };

  virtual ~ObjectVerifier() = default;

  /// Runs the heavy model over `svs`'s frames for the queried object.
  ///
  /// The parallel query path calls this concurrently for different
  /// candidates (one call per candidate SVS), so implementations must be
  /// thread-safe. Per-call results must not depend on call order.
  virtual Verification Verify(const Svs& svs,
                              const FeatureVector& query_feature) = 0;
};

/// Result of `directQuery` (Sec. 5.2 / 6).
struct DirectQueryResult {
  /// SVSs surviving index pruning, before verification.
  std::vector<SvsId> candidate_svss;
  /// SVSs confirmed by the verifier (== candidates when no verifier is set).
  std::vector<SvsId> matched_svss;
  /// Total simulated GPU time across all intra-camera indices (Fig. 17).
  double total_gpu_ms = 0.0;
  /// GPU time of the slowest camera — the bottleneck query time of Fig. 16.
  double bottleneck_camera_gpu_ms = 0.0;
  /// Per-camera GPU time.
  std::vector<std::pair<CameraId, double>> per_camera_gpu_ms;
  /// Frames pushed through the heavy model.
  size_t frames_processed = 0;
  /// Cameras whose intra-camera index was consulted.
  size_t cameras_searched = 0;
  /// True when unhealthy (stalled) cameras were excluded from the search —
  /// the result is a partial answer, not an error (Sec. 5.3 spirit: degrade,
  /// never poison).
  bool degraded = false;
  /// The cameras excluded for health reasons, sorted. Only cameras the
  /// constraints would otherwise have allowed are listed.
  std::vector<CameraId> excluded_cameras;
  /// True when the deadline (or external cancel) fired before the query
  /// finished. The result still holds everything verified up to that point —
  /// a ranked partial answer, never an error.
  bool timed_out = false;
  /// Fraction of the planned work (verification slots) actually attempted;
  /// 1.0 for a complete query, 0.0 when the deadline was already expired on
  /// entry.
  double completed_fraction = 1.0;
};

/// Result of `clusteringQuery` (Sec. 5.2 / 6).
struct ClusteringQueryResult {
  /// All SVSs semantically similar to the query SVS.
  std::vector<SvsId> similar_svss;
  /// Cameras contributing at least one SVS.
  size_t cameras_contributing = 0;
  /// True when unhealthy (stalled) cameras were excluded from the search.
  bool degraded = false;
  /// The cameras excluded for health reasons, sorted.
  std::vector<CameraId> excluded_cameras;
  /// True when the deadline (or external cancel) fired before the query
  /// finished; `similar_svss` holds the candidates scored so far, ranked.
  bool timed_out = false;
  /// Fraction of the planned work (pairwise OMD distances / group entries)
  /// actually attempted; 1.0 for a complete query.
  double completed_fraction = 1.0;
  /// True when the admission controller's cost estimate routed this query to
  /// thresholded (FastOMD) distances instead of the configured mode.
  bool fast_omd_routed = false;
};

}  // namespace vz::core

#endif  // VZ_CORE_QUERY_H_
