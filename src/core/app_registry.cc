#include "core/app_registry.h"

namespace vz::core {

StatusOr<AppRegistry::AppState*> AppRegistry::Find(const AppId& app) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return Status::NotFound("unknown app: " + app);
  return &it->second;
}

StatusOr<const AppRegistry::AppState*> AppRegistry::Find(
    const AppId& app) const {
  auto it = apps_.find(app);
  if (it == apps_.end()) return Status::NotFound("unknown app: " + app);
  return &it->second;
}

Status AppRegistry::SetFeatureExtractor(const AppId& app,
                                        const std::string& model_name,
                                        const VideoZillaOptions* overrides) {
  if (apps_.count(app) > 0) {
    return Status::FailedPrecondition("app already registered: " + app);
  }
  AppState state;
  state.model_name = model_name;
  state.index = std::make_unique<VideoZilla>(
      overrides != nullptr ? *overrides : base_options_);
  apps_.emplace(app, std::move(state));
  return Status::OK();
}

Status AppRegistry::RemoveApp(const AppId& app) {
  if (apps_.erase(app) == 0) {
    return Status::NotFound("unknown app: " + app);
  }
  return Status::OK();
}

Status AppRegistry::CameraStart(const CameraId& camera, const AppId& app) {
  VZ_ASSIGN_OR_RETURN(AppState * state, Find(app));
  return state->index->CameraStart(camera);
}

Status AppRegistry::CameraTerminate(const CameraId& camera, const AppId& app) {
  VZ_ASSIGN_OR_RETURN(AppState * state, Find(app));
  return state->index->CameraTerminate(camera);
}

Status AppRegistry::IngestFrame(const AppId& app,
                                const FrameObservation& frame) {
  VZ_ASSIGN_OR_RETURN(AppState * state, Find(app));
  return state->index->IngestFrame(frame);
}

Status AppRegistry::FlushAll() {
  for (auto& [app, state] : apps_) {
    VZ_RETURN_IF_ERROR(state.index->Flush());
  }
  return Status::OK();
}

StatusOr<DirectQueryResult> AppRegistry::DirectQuery(
    const FeatureVector& object_feature, const AppId& app,
    const QueryConstraints& constraints) {
  VZ_ASSIGN_OR_RETURN(AppState * state, Find(app));
  return state->index->DirectQuery(object_feature, constraints);
}

StatusOr<ClusteringQueryResult> AppRegistry::ClusteringQuery(
    const FeatureMap& target, const AppId& app,
    const QueryConstraints& constraints) {
  VZ_ASSIGN_OR_RETURN(AppState * state, Find(app));
  return state->index->ClusteringQuery(target, constraints);
}

StatusOr<SvsMetadata> AppRegistry::GetMetaData(const AppId& app,
                                               SvsId id) const {
  VZ_ASSIGN_OR_RETURN(const AppState* state, Find(app));
  return state->index->GetMetaData(id);
}

StatusOr<VideoZilla*> AppRegistry::Get(const AppId& app) {
  VZ_ASSIGN_OR_RETURN(AppState * state, Find(app));
  return state->index.get();
}

StatusOr<std::string> AppRegistry::ModelOf(const AppId& app) const {
  VZ_ASSIGN_OR_RETURN(const AppState* state, Find(app));
  return state->model_name;
}

std::vector<AppId> AppRegistry::Apps() const {
  std::vector<AppId> out;
  out.reserve(apps_.size());
  for (const auto& [app, state] : apps_) out.push_back(app);
  return out;
}

}  // namespace vz::core
