#ifndef VZ_CORE_ADMISSION_H_
#define VZ_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace vz::core {

/// Overload-protection knobs of the serving path (see DESIGN.md, "Deadlines
/// and overload"). The gate bounds how many queries execute concurrently and
/// how many may wait behind them; beyond that, callers are shed immediately
/// with `kResourceExhausted` — a fast, honest "try later" instead of an
/// unbounded convoy behind a heavy query. The FastOMD routing fields extend
/// the monitor's accuracy bailout ladder with a latency-triggered rung: a
/// query whose estimated cost is oversized is answered with the thresholded
/// OMD instead of queueing for seconds of exact solves.
struct AdmissionOptions {
  /// Queries allowed to execute at once; 0 = unlimited (the legacy
  /// single-caller behaviour, no gating).
  size_t max_in_flight = 0;
  /// Callers allowed to wait for a slot once `max_in_flight` is reached;
  /// arrivals beyond this are shed.
  size_t max_queue = 0;
  /// Retry-after hint embedded in the shed error message.
  int64_t retry_after_hint_ms = 50;
  /// Estimated query cost — candidate count x feature-map vectors — at or
  /// above which a clustering query's flat OMD scan is routed to FastOMD
  /// (thresholded mode) regardless of the configured mode; 0 disables.
  size_t fast_omd_cost_threshold = 0;
  /// Threshold alpha used for routed queries (the paper's Fig. 10 balance).
  double fast_omd_alpha = 0.6;
};

/// Counting gate in front of the query path: at most `max_in_flight`
/// concurrent executions, at most `max_queue` blocked waiters, immediate
/// load shedding beyond both. Thread-safe; waiters are woken by `Release`.
///
/// Waiting is bounded by the queue size, not by the caller's deadline — a
/// queued query whose deadline expires while waiting is admitted and then
/// returns its (empty) best-effort result through the normal timeout path.
class AdmissionController {
 public:
  /// Gauges and counters of the gate, surfaced through
  /// `VideoZilla::query_load_stats()`.
  struct Stats {
    size_t in_flight = 0;   // gauge: queries currently executing
    size_t waiting = 0;     // gauge: callers blocked for a slot
    uint64_t admitted = 0;  // queries that got a slot (including after a wait)
    uint64_t shed = 0;      // queries refused with kResourceExhausted
    size_t max_in_flight = 0;
    size_t max_queue = 0;
  };

  explicit AdmissionController(const AdmissionOptions& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Acquires an execution slot, blocking in the bounded wait queue if the
  /// gate is saturated. Returns `kResourceExhausted` (with the retry-after
  /// hint) when the queue is full. Every `OK` must be paired with one
  /// `Release`.
  Status Admit();

  /// Returns an execution slot and wakes one waiter.
  void Release();

  Stats stats() const;

 private:
  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  size_t waiting_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
};

/// RAII pairing for `Admit`/`Release`; arm only after a successful `Admit`.
class ScopedAdmission {
 public:
  explicit ScopedAdmission(AdmissionController* controller)
      : controller_(controller) {}
  ~ScopedAdmission() {
    if (controller_ != nullptr) controller_->Release();
  }

  ScopedAdmission(const ScopedAdmission&) = delete;
  ScopedAdmission& operator=(const ScopedAdmission&) = delete;

 private:
  AdmissionController* controller_;
};

}  // namespace vz::core

#endif  // VZ_CORE_ADMISSION_H_
