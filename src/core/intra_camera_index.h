#ifndef VZ_CORE_INTRA_CAMERA_INDEX_H_
#define VZ_CORE_INTRA_CAMERA_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "core/omd.h"
#include "core/representative.h"
#include "core/svs.h"
#include "index/perch_tree.h"

namespace vz::core {

/// Parameters of a per-camera SVS index.
struct IntraIndexOptions {
  /// Re-derive flat clusters and representatives every N insertions (the
  /// "representative SVS update" cadence of Sec. 5.1).
  size_t recluster_interval = 4;
  /// Silhouette sweep range for the per-camera cluster count (Sec. 4.2).
  size_t min_clusters = 2;
  size_t max_clusters = 8;
  /// When set, overrides the silhouette-selected cluster count — used by the
  /// Fig. 20 sweep and by the performance monitor's adjustments (Sec. 5.3).
  std::optional<size_t> forced_num_clusters;
  /// Build cluster representatives as covering summaries over member SVS
  /// representatives (lossless two-level pruning; the default). When false,
  /// cluster representatives are pooled k-means over member features — the
  /// paper's plain Sec. 3.3 construction, whose selectivity depends on the
  /// cluster count (the Fig. 20 trade-off).
  bool covering_cluster_representatives = true;
  /// Representative construction parameters.
  RepresentativeOptions representative;
  /// PERCH tree parameters.
  index::PerchOptions perch;
};

/// The intra-camera index: an incremental PERCH tree over one camera's SVSs
/// plus the flat clusters and per-cluster representative SVSs derived from
/// it (Sec. 5: "an intra-camera index per camera feed to index the video
/// streams captured by the same camera").
class IntraCameraIndex {
 public:
  /// A derived SVS cluster with its representative.
  struct Cluster {
    Representative representative;
    std::vector<SvsId> members;
  };

  /// `store` and `metric` must outlive the index. `metric` must be bound to
  /// the same store.
  IntraCameraIndex(CameraId camera, SvsStore* store, SvsMetric* metric,
                   const IntraIndexOptions& options, Rng rng);

  IntraCameraIndex(const IntraCameraIndex&) = delete;
  IntraCameraIndex& operator=(const IntraCameraIndex&) = delete;

  /// Inserts an SVS of this camera into the tree; periodically re-derives
  /// clusters and representatives. Builds the SVS's own representative if it
  /// does not have one yet.
  Status Insert(SvsId id);

  const CameraId& camera() const { return camera_; }
  size_t size() const { return tree_.size(); }

  /// Current flat clusters with their representatives.
  const std::vector<Cluster>& clusters() const { return clusters_; }

  /// Monotonic counter bumped whenever representatives are rebuilt; the
  /// inter-camera index uses it to know when to refresh (Sec. 5.1,
  /// "Hierarchical index update").
  uint64_t representative_version() const { return representative_version_; }

  /// Direct-query support: member SVSs of clusters whose representative's
  /// decision boundary contains `feature`, filtered by each SVS's own
  /// representative (Sec. 4.2, "feature search").
  std::vector<SvsId> FeatureSearch(const FeatureVector& feature,
                                   double boundary_scale = 1.0) const;

  /// All members of the cluster at `cluster_index`.
  StatusOr<std::vector<SvsId>> ClusterMembers(size_t cluster_index) const;

  /// Nearest stored SVS to `query` under OMD ("SVS search", Sec. 4.2).
  StatusOr<SvsId> NearestSvs(const FeatureMap& query);

  /// Representative of the cluster containing `id`, for the segmenter's
  /// reference (Sec. 5.1); NotFound if `id` is in no derived cluster yet.
  StatusOr<const Representative*> ClusterRepresentativeFor(SvsId id) const;

  /// Forces cluster/representative re-derivation now.
  Status Recluster();

  /// Overrides (or restores, with nullopt) the cluster count.
  void SetForcedClusterCount(std::optional<size_t> k);

  /// Read access to the underlying tree, for diagnostics and benches.
  const index::PerchTree& tree() const { return tree_; }

 private:
  // Chooses the cluster count: forced, else silhouette over SVS centroids.
  size_t ChooseClusterCount();

  CameraId camera_;
  SvsStore* store_;
  SvsMetric* metric_;
  IntraIndexOptions options_;
  Rng rng_;
  index::PerchTree tree_;
  std::vector<Cluster> clusters_;
  uint64_t representative_version_ = 0;
  size_t inserts_since_recluster_ = 0;
};

}  // namespace vz::core

#endif  // VZ_CORE_INTRA_CAMERA_INDEX_H_
