#include "core/feature_map_metric.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace vz::core {

double FeatureMapListMetric::Distance(int a, int b) {
  if (a == b) return 0.0;
  // Failures poison the pair with +inf instead of reading as "identical";
  // see SvsMetric::Distance for the rationale.
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= maps_->size() ||
      static_cast<size_t>(b) >= maps_->size()) {
    VZ_LOG(Error) << "FeatureMapListMetric: id out of range";
    failed_distances_.fetch_add(1, std::memory_order_relaxed);
    return std::numeric_limits<double>::infinity();
  }
  int64_t key = 0;
  if (memoize_) {
    const auto lo = static_cast<uint32_t>(std::min(a, b));
    const auto hi = static_cast<uint32_t>(std::max(a, b));
    key = static_cast<int64_t>((static_cast<uint64_t>(lo) << 32) | hi);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }
  ++num_evals_;
  auto result = calculator_->Distance((*maps_)[static_cast<size_t>(a)],
                                      (*maps_)[static_cast<size_t>(b)]);
  if (!result.ok()) {
    VZ_LOG(Error) << "OMD failed: " << result.status().ToString();
    failed_distances_.fetch_add(1, std::memory_order_relaxed);
    return std::numeric_limits<double>::infinity();
  }
  if (memoize_) memo_.emplace(key, *result);
  return *result;
}

double FeatureMapListMetric::LowerBound(int a, int b) {
  if (a == b) return 0.0;
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= maps_->size() ||
      static_cast<size_t>(b) >= maps_->size()) {
    return 0.0;
  }
  if (centroids_.size() < maps_->size()) centroids_.resize(maps_->size());
  auto centroid_of = [this](size_t i) -> const FeatureVector& {
    if (centroids_[i].empty() && !(*maps_)[i].empty()) {
      centroids_[i] = (*maps_)[i].Centroid();
    }
    return centroids_[i];
  };
  const FeatureVector& ca = centroid_of(static_cast<size_t>(a));
  const FeatureVector& cb = centroid_of(static_cast<size_t>(b));
  double bound = 0.0;
  if (ca.dim() == cb.dim() && !ca.empty()) {
    bound = EuclideanDistance(ca, cb);
  }
  if (quantized_prune_) {
    bound = std::max(
        bound, QuantizedOmdLowerBound((*maps_)[static_cast<size_t>(a)],
                                      (*maps_)[static_cast<size_t>(b)],
                                      calculator_->options()));
  }
  return bound;
}

}  // namespace vz::core
