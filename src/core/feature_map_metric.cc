#include "core/feature_map_metric.h"

#include <algorithm>

#include "common/logging.h"

namespace vz::core {

double FeatureMapListMetric::Distance(int a, int b) {
  if (a == b) return 0.0;
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= maps_->size() ||
      static_cast<size_t>(b) >= maps_->size()) {
    VZ_LOG(Error) << "FeatureMapListMetric: id out of range";
    return 0.0;
  }
  int64_t key = 0;
  if (memoize_) {
    const auto lo = static_cast<uint32_t>(std::min(a, b));
    const auto hi = static_cast<uint32_t>(std::max(a, b));
    key = static_cast<int64_t>((static_cast<uint64_t>(lo) << 32) | hi);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }
  ++num_evals_;
  auto result = calculator_->Distance((*maps_)[static_cast<size_t>(a)],
                                      (*maps_)[static_cast<size_t>(b)]);
  if (!result.ok()) {
    VZ_LOG(Error) << "OMD failed: " << result.status().ToString();
    return 0.0;
  }
  if (memoize_) memo_.emplace(key, *result);
  return *result;
}

double FeatureMapListMetric::LowerBound(int a, int b) {
  if (a == b) return 0.0;
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= maps_->size() ||
      static_cast<size_t>(b) >= maps_->size()) {
    return 0.0;
  }
  if (centroids_.size() < maps_->size()) centroids_.resize(maps_->size());
  auto centroid_of = [this](size_t i) -> const FeatureVector& {
    if (centroids_[i].empty() && !(*maps_)[i].empty()) {
      centroids_[i] = (*maps_)[i].Centroid();
    }
    return centroids_[i];
  };
  const FeatureVector& ca = centroid_of(static_cast<size_t>(a));
  const FeatureVector& cb = centroid_of(static_cast<size_t>(b));
  if (ca.dim() != cb.dim() || ca.empty()) return 0.0;
  return EuclideanDistance(ca, cb);
}

}  // namespace vz::core
