#ifndef VZ_CORE_REPRESENTATIVE_H_
#define VZ_CORE_REPRESENTATIVE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "vector/feature_map.h"
#include "vector/feature_vector.h"

namespace vz::core {

/// One weighted cluster center of a representative SVS with its decision
/// boundary (Sec. 3.3: "we record the boundary for each weighted center. The
/// boundary is defined by the distances between the farthest data points in
/// all directions and the cluster center").
struct WeightedCenter {
  FeatureVector center;
  /// Fraction of member vectors assigned to this center (sums to ~1).
  double weight = 0.0;
  /// Hit radius: max distance of a member vector to the center.
  double boundary = 0.0;
  /// Mean distance of member vectors to the center; the per-center
  /// component of d_r in Algorithm 3.
  double mean_member_distance = 0.0;
  /// Simulated timestamp of the last feature that hit this center; used by
  /// the t_split rule of Algorithm 3. -1 when never hit.
  int64_t last_hit_ms = -1;
};

/// A representative SVS: the k weighted centroids summarizing an SVS or a
/// cluster of SVSs (Sec. 3.3), plus the query-hit machinery of the paper.
class Representative {
 public:
  Representative() = default;

  explicit Representative(std::vector<WeightedCenter> centers)
      : centers_(std::move(centers)) {}

  const std::vector<WeightedCenter>& centers() const { return centers_; }
  std::vector<WeightedCenter>& mutable_centers() { return centers_; }

  bool empty() const { return centers_.empty(); }
  size_t size() const { return centers_.size(); }

  /// The representative viewed as a weighted feature map, for OMD
  /// comparisons against other SVSs/representatives.
  FeatureMap AsFeatureMap() const;

  /// Index of the first center whose boundary contains `feature`
  /// (optionally scaled by `boundary_scale`), or -1 on a miss. This is the
  /// "query hit" test of Sec. 3.3; widening the boundary trades FNR for FPR
  /// (Sec. 7.4).
  int HitCenter(const FeatureVector& feature,
                double boundary_scale = 1.0) const;

  /// Convenience wrapper over `HitCenter`.
  bool Hit(const FeatureVector& feature, double boundary_scale = 1.0) const {
    return HitCenter(feature, boundary_scale) >= 0;
  }

  /// Records that `feature` (arriving at `timestamp_ms`) hit a center, for
  /// Algorithm 3's stale-center rule. Returns the hit center or -1.
  int RecordHit(const FeatureVector& feature, int64_t timestamp_ms,
                double boundary_scale = 1.0);

  /// Weighted mean of the centers' mean member distances — d_r of
  /// Algorithm 3 ("SVSTree.avgRepDist()").
  double AverageMemberDistance() const;

  /// The largest (now - last_hit) over centers that were hit at least once;
  /// 0 if no center was ever hit ("SVSTree.maxLastHitTime()").
  int64_t MaxTimeSinceHitMs(int64_t now_ms) const;

 private:
  std::vector<WeightedCenter> centers_;
};

/// Options for representative construction.
struct RepresentativeOptions {
  /// Candidate k range for the silhouette sweep (Sec. 3.3). The upper end
  /// should exceed the number of distinct object classes a scene can carry,
  /// or k-means merges classes into one fat ball and the decision boundary
  /// loses its selectivity.
  size_t min_k = 2;
  size_t max_k = 12;
  /// Vectors are subsampled to at most this many before clustering, to keep
  /// per-SVS construction cost bounded on long streams.
  size_t max_vectors = 512;
  /// Minimum best silhouette required to accept the swept k; below this the
  /// data is treated as unimodal (k = 1).
  double min_silhouette = 0.4;
  /// Quantile of member-to-center distances used as the decision boundary.
  /// 1.0 is the paper's "farthest data point"; the default 0.95 keeps one
  /// heavy-tailed outlier (a hard example in CNN feature space) from
  /// inflating the ball until it swallows neighboring classes.
  double boundary_quantile = 0.9;
};

/// Builds a representative from the union of the given feature maps, using
/// k-means with silhouette-selected k. Weights of the inputs are respected.
/// Errors when all maps are empty.
StatusOr<Representative> BuildRepresentative(
    const std::vector<const FeatureMap*>& maps,
    const RepresentativeOptions& options, Rng* rng);

/// Single-map convenience overload.
StatusOr<Representative> BuildRepresentative(
    const FeatureMap& map, const RepresentativeOptions& options, Rng* rng);

/// Builds a second-level representative over existing representatives (the
/// inter-camera index's group summaries). Centers are clustered as points,
/// but each group boundary is a *covering radius*: the member-center
/// distance plus that member's own boundary, so that any feature hitting a
/// member representative also hits the group summary (M-tree-style
/// covering, required for hierarchy-level pruning to be lossless).
StatusOr<Representative> BuildCoveringRepresentative(
    const std::vector<const Representative*>& members,
    const RepresentativeOptions& options, Rng* rng);

}  // namespace vz::core

#endif  // VZ_CORE_REPRESENTATIVE_H_
