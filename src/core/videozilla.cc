#include "core/videozilla.h"

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"

namespace vz::core {

/// Per-camera ingestion state: key-frame selector, segmenter, intra-camera
/// index, and the frames awaiting assignment to an SVS.
struct VideoZilla::CameraPipeline {
  CameraPipeline(const CameraId& camera, SvsStore* store, SvsMetric* metric,
                 const VideoZillaOptions& options, Rng rng)
      : keyframe(options.keyframe),
        segmenter(options.segmenter, rng.Fork()),
        index(camera, store, metric, options.intra, rng.Fork()),
        expected_dim(options.ingest.expected_feature_dim) {}

  struct PendingFrame {
    int64_t frame_id;
    int64_t timestamp_ms;
    size_t bytes;
    bool keyframe;
  };

  KeyframeSelector keyframe;
  VideoSegmenter segmenter;
  IntraCameraIndex index;
  std::vector<PendingFrame> pending;
  uint64_t synced_rep_version = 0;
  // Ingestion-guard state (see IngestGuardOptions).
  CameraIngestStats stats;
  int64_t last_frame_id = -1;
  // Health baseline before the first frame: a camera started and then never
  // heard from counts as stalled once the threshold passes.
  int64_t started_ms = 0;
  // Pinned feature dimensionality; 0 until the first valid object.
  size_t expected_dim = 0;
};

std::string_view CameraHealthToString(CameraHealth health) {
  switch (health) {
    case CameraHealth::kHealthy:
      return "healthy";
    case CameraHealth::kDegraded:
      return "degraded";
    case CameraHealth::kStalled:
      return "stalled";
  }
  return "unknown";
}

VideoZilla::VideoZilla(const VideoZillaOptions& options)
    : options_(options),
      rng_(options.seed),
      admission_(options.admission),
      omd_(options.omd),
      omd_cache_(options.omd_cache_capacity),
      metric_(&store_, &omd_,
              SvsMetricOptions{.memoize = true,
                               .quantized_prune = options.quantized_prune}),
      inter_(&omd_,
             [&options] {
               InterIndexOptions inter = options.inter;
               inter.quantized_prune = options.quantized_prune;
               return inter;
             }(),
             Rng(options.seed ^ 0x1357)) {
  const size_t threads =
      options_.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : options_.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  omd_.set_thread_pool(pool_.get());
  metric_.set_shared_cache(&omd_cache_);
}

VideoZilla::~VideoZilla() = default;

Status VideoZilla::CameraStart(const CameraId& camera) {
  if (pipelines_.count(camera) > 0) {
    return Status::FailedPrecondition("camera already started: " + camera);
  }
  auto pipeline = std::make_unique<CameraPipeline>(camera, &store_, &metric_,
                                                   options_, rng_.Fork());
  pipeline->started_ms = now_ms_;
  pipelines_.emplace(camera, std::move(pipeline));
  return Status::OK();
}

Status VideoZilla::CameraTerminate(const CameraId& camera) {
  auto it = pipelines_.find(camera);
  if (it == pipelines_.end()) {
    return Status::NotFound("camera not started: " + camera);
  }
  pipelines_.erase(it);
  VZ_RETURN_IF_ERROR(inter_.RemoveCamera(camera));
  index_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status VideoZilla::Reset() {
  pipelines_.clear();
  store_.Clear();
  // Ids restart at 0 after the store clears, so every id-keyed memo entry
  // (private and shared) is stale.
  metric_.InvalidateCache();
  omd_cache_.Clear();
  ingest_stats_ = IngestStats();
  now_ms_ = 0;
  spread_cache_ = 0.0;
  spread_cache_svs_count_ = 0;
  index_mode_ = IndexMode::kHierarchical;
  // Rewind every seeded stream to its construction state: derived state
  // rebuilt after this reset must be bit-identical to a fresh instance's.
  rng_ = Rng(options_.seed);
  VZ_RETURN_IF_ERROR(inter_.Reset(Rng(options_.seed ^ 0x1357)));
  index_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status VideoZilla::IngestFrame(const FrameObservation& frame) {
  auto it = pipelines_.find(frame.camera);
  if (it == pipelines_.end()) {
    return Status::FailedPrecondition("camera not started: " + frame.camera);
  }
  CameraPipeline* pipeline = it->second.get();
  ++ingest_stats_.frames_offered;
  ++pipeline->stats.frames_offered;

  // Timestamp-order guard: frames of one camera must arrive in increasing
  // timestamp order. Exact re-deliveries and late arrivals within the
  // tolerance window are quarantined (dropped + counted, OK returned) so a
  // jittery transport cannot take down ingestion; anything older is a
  // contract violation the caller must hear about.
  // `frames_accepted`, not a timestamp sentinel, decides "first frame":
  // legitimately negative timestamps must not disable the guard.
  const int64_t last = pipeline->stats.last_frame_ms;
  if (pipeline->stats.frames_accepted > 0 && frame.timestamp_ms <= last) {
    if (frame.timestamp_ms == last &&
        frame.frame_id == pipeline->last_frame_id) {
      ++ingest_stats_.frames_rejected;
      ++ingest_stats_.duplicates_dropped;
      ++pipeline->stats.frames_rejected;
      ++pipeline->stats.duplicates_dropped;
      return Status::OK();
    }
    if (last - frame.timestamp_ms <= options_.ingest.reorder_tolerance_ms) {
      ++ingest_stats_.frames_rejected;
      ++ingest_stats_.out_of_order_dropped;
      ++pipeline->stats.frames_rejected;
      ++pipeline->stats.out_of_order_dropped;
      return Status::OK();
    }
    return Status::FailedPrecondition(
        "frame " + std::to_string(frame.frame_id) + " of camera " +
        frame.camera + " is " + std::to_string(last - frame.timestamp_ms) +
        "ms out of order (tolerance " +
        std::to_string(options_.ingest.reorder_tolerance_ms) + "ms)");
  }
  pipeline->stats.last_frame_ms = frame.timestamp_ms;
  pipeline->last_frame_id = frame.frame_id;
  ++pipeline->stats.frames_accepted;
  now_ms_ = std::max(now_ms_, frame.timestamp_ms);

  // Feature validation: quarantine objects whose vectors would poison the
  // index (NaN/Inf, empty, or a dimension the camera's feature space does
  // not have). The surviving objects are processed normally — a partially
  // bad detector output degrades one frame's coverage, not the stream.
  size_t quarantined = 0;
  for (const DetectedObject& object : frame.objects) {
    if (ObjectIsIngestible(object, pipeline->expected_dim)) {
      if (pipeline->expected_dim == 0) {
        pipeline->expected_dim = object.feature.dim();
      }
    } else {
      ++quarantined;
    }
  }
  FrameObservation sanitized;
  const FrameObservation* effective = &frame;
  if (quarantined > 0) {
    ingest_stats_.objects_quarantined += quarantined;
    pipeline->stats.objects_quarantined += quarantined;
    sanitized = frame;
    sanitized.objects.clear();
    for (const DetectedObject& object : frame.objects) {
      if (ObjectIsIngestible(object, pipeline->expected_dim)) {
        sanitized.objects.push_back(object);
      }
    }
    effective = &sanitized;
  }

  const bool selected = options_.enable_keyframe_selection
                            ? pipeline->keyframe.ShouldProcess(*effective)
                            : true;
  pipeline->pending.push_back({effective->frame_id, effective->timestamp_ms,
                               effective->encoded_bytes, selected});
  if (!selected) return Status::OK();
  ++ingest_stats_.keyframes_selected;

  if (effective->objects.empty()) {
    auto segment = pipeline->segmenter.AdvanceTime(effective->timestamp_ms);
    if (segment.has_value()) {
      VZ_RETURN_IF_ERROR(HandleSegment(pipeline, std::move(*segment)));
    }
    return Status::OK();
  }
  for (const DetectedObject& object : effective->objects) {
    ++ingest_stats_.features_extracted;
    ingest_stats_.raw_feature_bytes += object.feature.dim() * sizeof(float);
    auto segment =
        pipeline->segmenter.AddFeature(effective->timestamp_ms, object.feature);
    if (segment.has_value()) {
      VZ_RETURN_IF_ERROR(HandleSegment(pipeline, std::move(*segment)));
    }
  }
  return Status::OK();
}

Status VideoZilla::Flush() {
  for (auto& [camera, pipeline] : pipelines_) {
    auto segment = pipeline->segmenter.Flush();
    if (segment.has_value()) {
      VZ_RETURN_IF_ERROR(HandleSegment(pipeline.get(), std::move(*segment)));
    }
    // Force a recluster so every SVS — including ones inserted since the
    // last periodic recluster — is reachable through cluster membership and
    // the inter-camera index. Without this, late arrivals are invisible to
    // hierarchical queries until the next recluster.
    if (pipeline->index.size() > 0) {
      VZ_RETURN_IF_ERROR(pipeline->index.Recluster());
      pipeline->synced_rep_version = pipeline->index.representative_version();
      VZ_RETURN_IF_ERROR(inter_.UpdateCamera(pipeline->index));
      index_version_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  return Status::OK();
}

Status VideoZilla::RestoreFromSvsStore(const SvsStore& source) {
  if (store_.size() != 0) {
    return Status::FailedPrecondition(
        "RestoreFromSvsStore requires an empty instance");
  }
  for (SvsId id : source.AllIds()) {
    VZ_ASSIGN_OR_RETURN(const Svs* svs, source.Get(id));
    if (pipelines_.count(svs->camera()) == 0) {
      VZ_RETURN_IF_ERROR(CameraStart(svs->camera()));
    }
    const SvsId new_id = store_.Create(svs->camera(), svs->start_ms(),
                                       svs->end_ms(), svs->features());
    omd_cache_.InvalidateSvs(new_id);
    VZ_ASSIGN_OR_RETURN(Svs * copy, store_.GetMutable(new_id));
    copy->set_representative(svs->representative());
    copy->set_frame_ids(svs->frame_ids());
    copy->set_encoded_bytes(svs->encoded_bytes());
    copy->RestoreAccessStats(svs->access_count(), svs->last_access_ms());
    now_ms_ = std::max(now_ms_, svs->end_ms());
    auto it = pipelines_.find(svs->camera());
    VZ_RETURN_IF_ERROR(it->second->index.Insert(new_id));
    ++ingest_stats_.svs_created;
  }
  // Derive clusters and the inter-camera index once, after all insertions.
  for (auto& [camera, pipeline] : pipelines_) {
    if (pipeline->index.size() == 0) continue;
    VZ_RETURN_IF_ERROR(pipeline->index.Recluster());
    pipeline->synced_rep_version = pipeline->index.representative_version();
    VZ_RETURN_IF_ERROR(inter_.UpdateCamera(pipeline->index));
    index_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Restoring fast-forwarded `now_ms_` to the snapshot's end, but the
  // pipelines were (re)started along the way with earlier clocks. Reset the
  // stall reference to "now" so a freshly restored instance is healthy until
  // real silence accumulates — not instantly stalled by historic time.
  for (auto& [camera, pipeline] : pipelines_) {
    pipeline->started_ms = now_ms_;
  }
  return Status::OK();
}

Status VideoZilla::HandleSegment(CameraPipeline* pipeline, Segment segment) {
  // Associate pending frames up to the segment end with the new SVS.
  std::vector<int64_t> frame_ids;
  size_t bytes = 0;
  size_t consumed = 0;
  for (const CameraPipeline::PendingFrame& pf : pipeline->pending) {
    if (pf.timestamp_ms > segment.end_ms) break;
    // Every frame of the window belongs to the SVS: key-frame selection
    // bounds *ingestion* compute, but the archived segment the heavy model
    // verifies at query time contains all frames.
    frame_ids.push_back(pf.frame_id);
    bytes += pf.bytes;
    ++consumed;
  }
  pipeline->pending.erase(pipeline->pending.begin(),
                          pipeline->pending.begin() +
                              static_cast<long>(consumed));

  const SvsId id = store_.Create(pipeline->index.camera(), segment.start_ms,
                                 segment.end_ms, std::move(segment.features));
  // Ids are dense and fresh, but the invalidation contract is per store
  // insertion: any cached distance involving this id is stale by definition.
  omd_cache_.InvalidateSvs(id);
  ++ingest_stats_.svs_created;
  {
    VZ_ASSIGN_OR_RETURN(Svs * svs, store_.GetMutable(id));
    svs->set_frame_ids(std::move(frame_ids));
    svs->set_encoded_bytes(bytes);
  }
  VZ_RETURN_IF_ERROR(pipeline->index.Insert(id));

  // The reference for further segmentation is the representative of the
  // cluster the new SVS joined (Sec. 5.1); fall back to its own
  // representative when clusters are not derived yet.
  auto cluster_rep = pipeline->index.ClusterRepresentativeFor(id);
  if (cluster_rep.ok() && !(*cluster_rep)->empty()) {
    pipeline->segmenter.SetReference(**cluster_rep);
  } else {
    VZ_ASSIGN_OR_RETURN(const Svs* svs, store_.Get(id));
    if (!svs->representative().empty()) {
      pipeline->segmenter.SetReference(svs->representative());
    }
  }

  // Propagate representative updates to the inter-camera index (Sec. 5.1,
  // "Hierarchical index update").
  if (pipeline->index.representative_version() !=
      pipeline->synced_rep_version) {
    pipeline->synced_rep_version = pipeline->index.representative_version();
    VZ_RETURN_IF_ERROR(inter_.UpdateCamera(pipeline->index));
    index_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Standing queries see the segment only once it is fully stored and
  // indexed. The observer must be non-blocking (it runs on the ingest path);
  // it also fires during WAL replay, which is harmless — no subscriptions
  // exist before serving starts.
  if (segment_observer_) {
    VZ_ASSIGN_OR_RETURN(const Svs* stored, store_.Get(id));
    segment_observer_(*stored);
  }
  return Status::OK();
}

CameraHealth VideoZilla::HealthOf(const CameraPipeline& pipeline) const {
  // Silence wins over fault history: a camera that stopped sending is
  // stalled whatever its past error rate. The reference point before the
  // first frame is the start time, so a feed that never delivered anything
  // also stalls out.
  const int64_t reference = pipeline.stats.frames_accepted > 0
                                ? pipeline.stats.last_frame_ms
                                : pipeline.started_ms;
  if (now_ms_ - reference > options_.ingest.stall_threshold_ms) {
    return CameraHealth::kStalled;
  }
  if (pipeline.stats.frames_offered >= options_.ingest.degraded_min_frames) {
    const double faults =
        static_cast<double>(pipeline.stats.frames_rejected +
                            pipeline.stats.objects_quarantined);
    if (faults > options_.ingest.degraded_fault_fraction *
                     static_cast<double>(pipeline.stats.frames_offered)) {
      return CameraHealth::kDegraded;
    }
  }
  return CameraHealth::kHealthy;
}

StatusOr<CameraHealth> VideoZilla::camera_health(const CameraId& camera) const {
  auto it = pipelines_.find(camera);
  if (it == pipelines_.end()) {
    return Status::NotFound("camera not started: " + camera);
  }
  return HealthOf(*it->second);
}

StatusOr<CameraIngestStats> VideoZilla::camera_ingest_stats(
    const CameraId& camera) const {
  auto it = pipelines_.find(camera);
  if (it == pipelines_.end()) {
    return Status::NotFound("camera not started: " + camera);
  }
  return it->second->stats;
}

std::vector<std::pair<CameraId, CameraHealth>> VideoZilla::CameraHealthReport()
    const {
  std::vector<std::pair<CameraId, CameraHealth>> report;
  report.reserve(pipelines_.size());
  for (const auto& [camera, pipeline] : pipelines_) {
    report.emplace_back(camera, HealthOf(*pipeline));
  }
  std::sort(report.begin(), report.end());
  return report;
}

void VideoZilla::AdvanceTime(int64_t now_ms) {
  now_ms_ = std::max(now_ms_, now_ms);
}

StatusOr<CameraGuardState> VideoZilla::ExportCameraGuardState(
    const CameraId& camera) const {
  auto it = pipelines_.find(camera);
  if (it == pipelines_.end()) {
    return Status::NotFound("camera not started: " + camera);
  }
  CameraGuardState state;
  state.stats = it->second->stats;
  state.last_frame_id = it->second->last_frame_id;
  state.expected_dim = it->second->expected_dim;
  return state;
}

Status VideoZilla::RestoreCameraGuardState(const CameraId& camera,
                                           const CameraGuardState& state) {
  auto it = pipelines_.find(camera);
  if (it == pipelines_.end()) {
    return Status::NotFound("camera not started: " + camera);
  }
  it->second->stats = state.stats;
  it->second->last_frame_id = state.last_frame_id;
  it->second->expected_dim = static_cast<size_t>(state.expected_dim);
  it->second->started_ms = now_ms_;
  return Status::OK();
}

std::pair<std::unordered_set<CameraId>, std::vector<CameraId>>
VideoZilla::ExcludedCameras(const QueryConstraints& constraints) const {
  std::unordered_set<CameraId> excluded;
  for (const auto& [camera, pipeline] : pipelines_) {
    if (!constraints.AllowsCamera(camera)) continue;
    if (HealthOf(*pipeline) == CameraHealth::kStalled) excluded.insert(camera);
  }
  std::vector<CameraId> sorted(excluded.begin(), excluded.end());
  std::sort(sorted.begin(), sorted.end());
  return {std::move(excluded), std::move(sorted)};
}

const CancelToken* VideoZilla::MakeQueryToken(
    const QueryConstraints& constraints, std::optional<CancelToken>* storage,
    Deadline* deadline) const {
  if (!constraints.deadline_ms.has_value()) return constraints.cancel;
  const TimeSource* clock =
      options_.time_source != nullptr ? options_.time_source : &wall_clock_;
  *deadline = Deadline::AfterMs(clock, *constraints.deadline_ms);
  storage->emplace(*deadline, constraints.cancel);
  return &**storage;
}

void VideoZilla::NoteTimeout(const Deadline& deadline) {
  timed_out_queries_.fetch_add(1, std::memory_order_relaxed);
  timeout_overshoot_ms_total_.fetch_add(deadline.overshoot_ms(),
                                        std::memory_order_relaxed);
}

QueryLoadStats VideoZilla::query_load_stats() const {
  const AdmissionController::Stats gate = admission_.stats();
  QueryLoadStats stats;
  stats.in_flight = gate.in_flight;
  stats.waiting = gate.waiting;
  stats.admitted = gate.admitted;
  stats.shed = gate.shed;
  stats.timed_out = timed_out_queries_.load(std::memory_order_relaxed);
  stats.fast_omd_routed = fast_omd_routed_.load(std::memory_order_relaxed);
  stats.timeout_overshoot_ms_total =
      timeout_overshoot_ms_total_.load(std::memory_order_relaxed);
  stats.max_in_flight = gate.max_in_flight;
  stats.max_queue = gate.max_queue;
  stats.omd_failures = metric_.failed_distances() + inter_.omd_failures();
  return stats;
}

double VideoZilla::EstimateFeatureSpread() {
  // Concurrent admitted queries share the spread cache; serialize the
  // compute-and-fill.
  std::lock_guard<std::mutex> lock(query_mu_);
  if (spread_cache_svs_count_ == store_.size() && spread_cache_ > 0.0) {
    return spread_cache_;
  }
  std::vector<double> spreads;
  for (SvsId id : store_.AllIds()) {
    auto svs = store_.Get(id);
    if (!svs.ok()) continue;
    for (const WeightedCenter& center : (*svs)->representative().centers()) {
      if (center.mean_member_distance > 0.0) {
        spreads.push_back(center.mean_member_distance);
      }
      if (spreads.size() >= 2000) break;
    }
    if (spreads.size() >= 2000) break;
  }
  spread_cache_svs_count_ = store_.size();
  spread_cache_ = spreads.empty() ? 1.0 : Percentile(std::move(spreads), 50.0);
  return spread_cache_;
}

std::vector<SvsId> VideoZilla::DirectCandidates(
    const FeatureVector& feature, const QueryConstraints& constraints,
    const std::unordered_set<CameraId>& excluded, const CancelToken* cancel) {
  // One predicate for every index mode: the caller's constraints plus the
  // health exclusion set (stalled feeds serve no candidates).
  const auto allowed = [&](const CameraId& camera) {
    return constraints.AllowsCamera(camera) && excluded.count(camera) == 0;
  };
  std::vector<SvsId> candidates;
  const double scale = options_.boundary_scale;
  switch (index_mode_) {
    case IndexMode::kHierarchical: {
      std::unordered_set<SvsId> seen;
      for (const InterCameraIndex::RepEntry* entry :
           inter_.FeatureSearch(feature, scale)) {
        if (Cancelled(cancel)) break;
        if (!allowed(entry->camera)) continue;
        auto it = pipelines_.find(entry->camera);
        if (it == pipelines_.end()) continue;
        const IntraCameraIndex& intra = it->second->index;
        auto members = intra.ClusterMembers(entry->intra_cluster_index);
        if (!members.ok()) continue;
        for (SvsId id : *members) {
          auto svs = store_.Get(id);
          if (!svs.ok()) continue;
          if (!(*svs)->representative().Hit(feature, scale)) continue;
          if (seen.insert(id).second) candidates.push_back(id);
        }
      }
      break;
    }
    case IndexMode::kIntraOnly: {
      // The per-camera index scans are independent const reads, so they fan
      // out over the pool — one task per intra-camera index. Per-camera
      // results land in their own slot and are concatenated in the same
      // pipeline order the serial loop uses, keeping the output identical.
      std::vector<const IntraCameraIndex*> indices;
      for (const auto& [camera, pipeline] : pipelines_) {
        if (!allowed(camera)) continue;
        indices.push_back(&pipeline->index);
      }
      std::vector<std::vector<SvsId>> per_camera_hits(indices.size());
      ParallelFor(
          pool_.get(), indices.size(),
          [&](size_t i) {
            per_camera_hits[i] = indices[i]->FeatureSearch(feature, scale);
          },
          cancel);
      for (const std::vector<SvsId>& hits : per_camera_hits) {
        candidates.insert(candidates.end(), hits.begin(), hits.end());
      }
      break;
    }
    case IndexMode::kFlatSvs: {
      // Flat SVS index (Sec. 5.3 adjustment iii): every SVS's own
      // representative is probed directly, with no cluster-level pruning.
      for (SvsId id : store_.AllIds()) {
        if (Cancelled(cancel)) break;
        auto svs = store_.Get(id);
        if (!svs.ok()) continue;
        if (!allowed((*svs)->camera())) continue;
        if ((*svs)->representative().Hit(feature, scale)) {
          candidates.push_back(id);
        }
      }
      break;
    }
    case IndexMode::kFlat: {
      // Bailout: no pruning at all — every SVS of every allowed camera is a
      // candidate (Sec. 5.3, "downgrade to a frame-level index to search
      // through video frames across all cameras").
      for (SvsId id : store_.AllIds()) {
        if (Cancelled(cancel)) break;
        auto svs = store_.Get(id);
        if (!svs.ok()) continue;
        if (!allowed((*svs)->camera())) continue;
        candidates.push_back(id);
      }
      break;
    }
  }
  // Time-range filtering happens per intra-camera index (Sec. 5.4).
  std::vector<SvsId> filtered;
  filtered.reserve(candidates.size());
  for (SvsId id : candidates) {
    auto svs = store_.Get(id);
    if (!svs.ok()) continue;
    if (constraints.AllowsTime((*svs)->start_ms(), (*svs)->end_ms())) {
      filtered.push_back(id);
    }
  }
  // Second stage of the feature search (Sec. 4.2): "searching all SVSs in
  // candidate clusters to find the SVSs that actually meet the requirement".
  // The stored feature map is checked directly — microseconds at the edge,
  // versus heavy-DNN milliseconds per frame — which removes candidates whose
  // representative ball matched only spuriously. The frame-level bailout
  // mode scans everything by definition and skips this.
  if (index_mode_ == IndexMode::kFlat || !options_.enable_exact_stage) {
    return filtered;
  }
  // The query feature and a truly matching stored feature each carry one
  // draw of extractor noise, so their distance runs ~sqrt(2) above the
  // typical member-to-center spread. The spread estimate is global (the
  // median over all representative centers): a fat merged ball in this
  // particular SVS must not widen its own acceptance test. Computed before
  // the fan-out — it caches into mutable state.
  const double threshold = scale * 2.0 * EstimateFeatureSpread();
  std::vector<char> matched(filtered.size(), 0);
  ParallelFor(
      pool_.get(), filtered.size(),
      [&](size_t task) {
        auto svs = store_.Get(filtered[task]);
        if (!svs.ok()) return;
        const FeatureMap& map = (*svs)->features();
        if (map.dim() != feature.dim()) return;
        for (size_t i = 0; i < map.size(); ++i) {
          if (EuclideanDistance(feature.data(), map.row(i), map.dim()) <=
              threshold) {
            matched[task] = 1;
            return;
          }
        }
      },
      cancel);
  std::vector<SvsId> confirmed;
  confirmed.reserve(filtered.size());
  for (size_t task = 0; task < filtered.size(); ++task) {
    if (matched[task]) confirmed.push_back(filtered[task]);
  }
  return confirmed;
}

StatusOr<DirectQueryResult> VideoZilla::DirectQuery(
    const FeatureVector& object_feature, const QueryConstraints& constraints) {
  std::optional<CancelToken> deadline_token;
  Deadline deadline;
  const CancelToken* cancel =
      MakeQueryToken(constraints, &deadline_token, &deadline);
  VZ_RETURN_IF_ERROR(admission_.Admit());
  ScopedAdmission slot(&admission_);

  DirectQueryResult result;
  if (Cancelled(cancel)) {
    // Deadline already expired (or caller cancelled) on entry: the
    // best-effort answer is empty, returned immediately and marked — never
    // an error.
    result.timed_out = true;
    result.completed_fraction = 0.0;
    NoteTimeout(deadline);
    return result;
  }
  auto [excluded, excluded_sorted] = ExcludedCameras(constraints);
  result.degraded = !excluded_sorted.empty();
  result.excluded_cameras = std::move(excluded_sorted);
  result.candidate_svss =
      DirectCandidates(object_feature, constraints, excluded, cancel);

  // Count distinct cameras consulted.
  std::unordered_set<CameraId> cameras;
  for (SvsId id : result.candidate_svss) {
    auto svs = store_.Get(id);
    if (svs.ok()) cameras.insert((*svs)->camera());
  }
  result.cameras_searched = cameras.size();

  // Verification stage: the heavy model runs only over candidate SVSs; its
  // GPU time is what Figs. 15-17 compare. The per-candidate heavy-model
  // calls are independent, so they fan out over the pool; each task writes
  // only its own slot. Aggregation (GPU-time sums, matched list, access
  // stats) happens afterwards in candidate order — the serial order — so the
  // result is bit-identical for any thread count. On deadline expiry the
  // fan-out drains at the iteration cursor: attempted slots aggregate
  // normally, untouched slots are skipped, and the result is the ranked
  // partial answer.
  const size_t n = result.candidate_svss.size();
  std::vector<ObjectVerifier::Verification> verifications(n);
  std::vector<char> attempted(n, 0);
  std::vector<char> resolved(n, 0);
  if (verifier_ != nullptr) {
    ParallelFor(
        pool_.get(), n,
        [&](size_t i) {
          attempted[i] = 1;
          auto svs = store_.Get(result.candidate_svss[i]);
          if (!svs.ok()) return;
          resolved[i] = 1;
          verifications[i] = verifier_->Verify(**svs, object_feature);
        },
        cancel);
  }
  {
    // Access-stat updates mutate shared SVS state; serialize against other
    // admitted queries.
    std::lock_guard<std::mutex> lock(query_mu_);
    std::unordered_map<CameraId, double> per_camera;
    for (size_t i = 0; i < n; ++i) {
      const SvsId id = result.candidate_svss[i];
      auto svs = store_.GetMutable(id);
      if (!svs.ok()) continue;
      if (verifier_ == nullptr) {
        result.matched_svss.push_back(id);
        (*svs)->RecordAccess(now_ms_);
        continue;
      }
      if (!resolved[i]) continue;
      const ObjectVerifier::Verification& v = verifications[i];
      result.total_gpu_ms += v.gpu_ms;
      result.frames_processed += v.frames_processed;
      per_camera[(*svs)->camera()] += v.gpu_ms;
      if (v.contains) {
        result.matched_svss.push_back(id);
        (*svs)->RecordAccess(now_ms_);
      }
    }
    for (auto& [camera, ms] : per_camera) {
      result.per_camera_gpu_ms.emplace_back(camera, ms);
      result.bottleneck_camera_gpu_ms =
          std::max(result.bottleneck_camera_gpu_ms, ms);
    }
  }
  result.timed_out = Cancelled(cancel);
  if (verifier_ != nullptr && n > 0) {
    size_t attempted_count = 0;
    for (char a : attempted) attempted_count += a != 0;
    result.completed_fraction =
        static_cast<double>(attempted_count) / static_cast<double>(n);
  } else {
    // Without a verifier the planned work is the candidate scan itself; a
    // mid-scan expiry leaves no per-slot progress to measure, so report the
    // conservative bound.
    result.completed_fraction = result.timed_out ? 0.0 : 1.0;
  }
  if (result.timed_out) NoteTimeout(deadline);
  return result;
}

StatusOr<ClusteringQueryResult> VideoZilla::ClusteringQuery(
    const FeatureMap& target, const QueryConstraints& constraints) {
  return ClusteringQueryImpl(target, /*target_id=*/-1, constraints);
}

StatusOr<ClusteringQueryResult> VideoZilla::ClusteringQuery(
    SvsId target_id, const QueryConstraints& constraints) {
  VZ_ASSIGN_OR_RETURN(const Svs* svs, store_.Get(target_id));
  return ClusteringQueryImpl(svs->features(), target_id, constraints);
}

StatusOr<ClusteringQueryResult> VideoZilla::ClusteringQueryImpl(
    const FeatureMap& target, SvsId target_id,
    const QueryConstraints& constraints) {
  std::optional<CancelToken> deadline_token;
  Deadline deadline;
  const CancelToken* cancel =
      MakeQueryToken(constraints, &deadline_token, &deadline);
  VZ_RETURN_IF_ERROR(admission_.Admit());
  ScopedAdmission slot(&admission_);

  ClusteringQueryResult result;
  if (Cancelled(cancel)) {
    result.timed_out = true;
    result.completed_fraction = 0.0;
    NoteTimeout(deadline);
    return result;
  }
  auto [excluded, excluded_sorted] = ExcludedCameras(constraints);
  result.degraded = !excluded_sorted.empty();
  result.excluded_cameras = std::move(excluded_sorted);
  const auto allowed = [&](const CameraId& camera) {
    return constraints.AllowsCamera(camera) && excluded.count(camera) == 0;
  };
  std::unordered_set<CameraId> cameras;
  if (index_mode_ == IndexMode::kHierarchical && inter_.size() > 0) {
    VZ_ASSIGN_OR_RETURN(const InterCameraIndex::Group* group,
                        inter_.GroupOfNearest(target));
    // Cancellation checkpoint per group entry: an expired deadline keeps the
    // entries gathered so far — a valid partial answer.
    size_t entries_processed = 0;
    for (size_t entry_idx : group->entry_indices) {
      if (Cancelled(cancel)) break;
      ++entries_processed;
      const InterCameraIndex::RepEntry& entry = inter_.entries()[entry_idx];
      if (!allowed(entry.camera)) continue;
      auto it = pipelines_.find(entry.camera);
      if (it == pipelines_.end()) continue;
      auto members =
          it->second->index.ClusterMembers(entry.intra_cluster_index);
      if (!members.ok()) continue;
      for (SvsId id : *members) {
        auto svs = store_.Get(id);
        if (!svs.ok()) continue;
        if (!constraints.AllowsTime((*svs)->start_ms(), (*svs)->end_ms())) {
          continue;
        }
        result.similar_svss.push_back(id);
        cameras.insert(entry.camera);
      }
    }
    result.completed_fraction =
        group->entry_indices.empty()
            ? 1.0
            : static_cast<double>(entries_processed) /
                  static_cast<double>(group->entry_indices.size());
  } else {
    // Flat fallback: scan every SVS and keep those within 1.5x of the
    // nearest OMD — a relative similarity band standing in for the missing
    // hierarchy. Candidates are filtered serially (cheap metadata reads),
    // then the OMD evaluations — the expensive part — fan out over the
    // pool, one slot per candidate. When the target is itself a stored SVS,
    // each pairwise distance is served from / memoized into the shared
    // distance cache under the (target, candidate) pair.
    std::vector<SvsId> ids;
    for (SvsId id : store_.AllIds()) {
      auto svs = store_.Get(id);
      if (!svs.ok()) continue;
      if (!allowed((*svs)->camera())) continue;
      if (!constraints.AllowsTime((*svs)->start_ms(), (*svs)->end_ms())) {
        continue;
      }
      ids.push_back(id);
    }
    // Cost-based routing (the admission controller's latency rung): when the
    // estimated work — candidates x feature-map vectors — is oversized, the
    // whole scan runs with thresholded (FastOMD) distances instead of the
    // configured mode. A per-query options override, not a global mode
    // switch: concurrent queries must not observe each other's routing.
    OmdOptions effective = omd_.options();
    const size_t cost_threshold = options_.admission.fast_omd_cost_threshold;
    const size_t estimated_cost =
        ids.size() * std::max<size_t>(1, target.size());
    if (cost_threshold > 0 && estimated_cost >= cost_threshold) {
      effective.mode = OmdMode::kThresholded;
      effective.threshold_alpha = options_.admission.fast_omd_alpha;
      result.fast_omd_routed = true;
      fast_omd_routed_.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<double> distances(ids.size(), -1.0);  // -1 = failed solve
    std::vector<char> attempted(ids.size(), 0);
    ParallelFor(
        pool_.get(), ids.size(),
        [&](size_t i) {
          attempted[i] = 1;
          const SvsId id = ids[i];
          if (target_id >= 0) {
            auto hit = omd_cache_.Lookup(target_id, id, effective.mode,
                                         effective.threshold_alpha);
            if (hit.has_value()) {
              distances[i] = *hit;
              return;
            }
          }
          auto svs = store_.Get(id);
          if (!svs.ok()) return;
          auto d = omd_.DistanceWithOptions(target, (*svs)->features(),
                                            effective, cancel);
          if (!d.ok()) return;
          distances[i] = *d;
          if (target_id >= 0) {
            // Token-guarded: a distance computed under a fired token must
            // never be memoized (see OmdDistanceCache::Insert).
            omd_cache_.Insert(target_id, id, effective.mode,
                              effective.threshold_alpha, *d, cancel);
          }
        },
        cancel);
    size_t attempted_count = 0;
    for (char a : attempted) attempted_count += a != 0;
    result.completed_fraction =
        ids.empty() ? 1.0
                    : static_cast<double>(attempted_count) /
                          static_cast<double>(ids.size());
    std::vector<std::pair<double, SvsId>> scored;
    scored.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      if (distances[i] >= 0.0) scored.emplace_back(distances[i], ids[i]);
    }
    if (!scored.empty()) {
      std::sort(scored.begin(), scored.end());
      const double band = scored.front().first * 1.5 + 1e-12;
      for (const auto& [d, id] : scored) {
        if (d > band) break;
        result.similar_svss.push_back(id);
        auto svs = store_.Get(id);
        if (svs.ok()) cameras.insert((*svs)->camera());
      }
    }
  }
  result.cameras_contributing = cameras.size();
  result.timed_out = Cancelled(cancel);
  if (result.timed_out) NoteTimeout(deadline);
  return result;
}

StatusOr<SvsMetadata> VideoZilla::GetMetaData(SvsId id) const {
  VZ_ASSIGN_OR_RETURN(const Svs* svs, store_.Get(id));
  return svs->Metadata(now_ms_);
}

Status VideoZilla::SetInterGroupCount(std::optional<size_t> k) {
  VZ_RETURN_IF_ERROR(inter_.SetForcedGroupCount(k));
  forced_inter_groups_ = k;
  return Status::OK();
}

Status VideoZilla::SetIntraClusterCount(std::optional<size_t> k) {
  for (auto& [camera, pipeline] : pipelines_) {
    pipeline->index.SetForcedClusterCount(k);
    VZ_RETURN_IF_ERROR(pipeline->index.Recluster());
    pipeline->synced_rep_version = pipeline->index.representative_version();
    VZ_RETURN_IF_ERROR(inter_.UpdateCamera(pipeline->index));
    index_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  forced_intra_clusters_ = k;
  return Status::OK();
}

StatusOr<const IntraCameraIndex*> VideoZilla::intra_index(
    const CameraId& camera) const {
  auto it = pipelines_.find(camera);
  if (it == pipelines_.end()) {
    return Status::NotFound("camera not started: " + camera);
  }
  return &it->second->index;
}

std::vector<CameraId> VideoZilla::cameras() const {
  std::vector<CameraId> out;
  out.reserve(pipelines_.size());
  for (const auto& [camera, pipeline] : pipelines_) out.push_back(camera);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vz::core
