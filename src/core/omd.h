#ifndef VZ_CORE_OMD_H_
#define VZ_CORE_OMD_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "core/svs.h"
#include "index/item_metric.h"
#include "vector/feature_map.h"

namespace vz::core {

class OmdDistanceCache;

/// How OMD is evaluated.
enum class OmdMode {
  /// Exact transportation solve over the full bipartite cost matrix.
  kExact,
  /// FastOMD: thresholded ground distance with one transshipment vertex
  /// (Sec. 3.2); the threshold is `alpha` times the max pairwise distance.
  kThresholded,
};

/// Parameters for `OmdCalculator`.
struct OmdOptions {
  OmdMode mode = OmdMode::kThresholded;
  /// Relative threshold in (0, 1]: 1.0 reproduces the exact OMD. The paper's
  /// Fig. 10 sweeps this and settles on 0.6 as the accuracy/time balance.
  double threshold_alpha = 0.6;
  /// Each side is subsampled (deterministic, evenly spaced) to at most this
  /// many vectors before solving, bounding the O(n^3 log n) worst case.
  size_t max_vectors = 256;
};

/// Computes the Object Mover's Distance between feature maps (Sec. 3.2).
///
/// The ground distance is Euclidean between object feature vectors; weights
/// follow the maps (uniform for raw SVSs, cluster masses for
/// representatives). An empty map is treated as a single zero vector so
/// pipeline edge cases (object-free video) stay well defined.
///
/// `Distance` is safe to call concurrently (the computation counter is
/// atomic and the solver is stateless) as long as the configuration setters
/// are not raced against it. When a thread pool is attached, the dense
/// ground-distance matrix is filled row-parallel with the batched
/// `EuclideanDistancesTo` kernel; results are bit-identical to the serial
/// fill for any thread count.
class OmdCalculator {
 public:
  explicit OmdCalculator(const OmdOptions& options = OmdOptions());

  /// OMD between `a` and `b` under the configured mode.
  StatusOr<double> Distance(const FeatureMap& a, const FeatureMap& b);

  /// Cancellation-aware variant: `cancel` (may be null) is checked at entry,
  /// at every ground-matrix row (via the `ParallelFor` cursor), and at every
  /// solver pivot. A fired token returns `kCancelled`; a partially filled
  /// ground matrix is never solved, so cancellation can only abort a
  /// distance, never corrupt one.
  StatusOr<double> Distance(const FeatureMap& a, const FeatureMap& b,
                            const CancelToken* cancel);

  /// Like `Distance`, but solved under `options` instead of the calculator's
  /// configuration — the per-query override used by the admission
  /// controller's latency rung, which routes oversized queries to FastOMD
  /// without perturbing the globally configured mode (the configuration
  /// setters are not safe to race against in-flight queries).
  StatusOr<double> DistanceWithOptions(const FeatureMap& a, const FeatureMap& b,
                                       const OmdOptions& options,
                                       const CancelToken* cancel);

  /// The dense ground-distance matrix between the (subsampled) maps — the
  /// quadratic kernel `Distance` runs before solving, exposed so benchmarks
  /// can measure the matrix-fill path in isolation.
  struct GroundMatrix {
    size_t rows = 0;
    size_t cols = 0;
    /// Row-major: cost[i * cols + j] = d(a_i, b_j).
    std::vector<double> cost;
    double max_cost = 0.0;
  };
  StatusOr<GroundMatrix> ComputeGroundMatrix(const FeatureMap& a,
                                             const FeatureMap& b) const;

  /// Number of OMD solves performed (the cost metric of Figs. 13-14).
  uint64_t num_computations() const {
    return num_computations_.load(std::memory_order_relaxed);
  }
  void ResetCounter() { num_computations_.store(0, std::memory_order_relaxed); }

  const OmdOptions& options() const { return options_; }
  /// Adjusts the approximation threshold at runtime; the performance monitor
  /// raises it toward 1.0 when query quality degrades (Sec. 5.3).
  void set_threshold_alpha(double alpha);
  void set_mode(OmdMode mode) { options_.mode = mode; }

  /// Attaches the pool used to parallelize the ground-distance matrix fill;
  /// nullptr (the default) keeps the serial path.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

 private:
  OmdOptions options_;
  ThreadPool* pool_ = nullptr;
  std::atomic<uint64_t> num_computations_{0};
};

/// A certified lower bound on `OmdCalculator::DistanceWithOptions(a, b,
/// options, ...)` computed purely from the maps' 8-bit quantized shadows
/// (`FeatureMap::quantized()`), without touching the float buffers or the
/// solver.
///
/// For every pair the quantized distance q(i, j) satisfies
/// `|d(i, j) - q(i, j)| <= margin` with `margin = (scale_a + scale_b) / 2 *
/// sqrt(dim)` (each component is off by at most scale/2). Every unit of
/// supply mass from row i therefore pays at least
/// `min(max(0, min_j q(i, j) - margin), cap)` under the solver's effective
/// ground metric — `cap` accounts for the thresholded mode's `min(d, t)`
/// ground distance and is +inf in exact mode. The bound is the max of the
/// supply-side and demand-side sums.
///
/// Returns 0 (no information) whenever the tier cannot certify a bound:
/// empty or mismatched maps, a missing shadow (non-finite values), or a map
/// larger than `options.max_vectors` — the solver would subsample such a map,
/// and a bound over a superset of the solver's vectors is not a bound on the
/// subsampled distance.
double QuantizedOmdLowerBound(const FeatureMap& a, const FeatureMap& b,
                              const OmdOptions& options);

/// Options for `SvsMetric`.
struct SvsMetricOptions {
  /// Cache pairwise distances by SVS-id pair. Keep off when counting OMD
  /// computations for benchmarks that model cold queries.
  bool memoize = true;
  /// Tighten `LowerBound` with the quantized shadow tier
  /// (`QuantizedOmdLowerBound`) on top of OCD. Pruning-only: a larger valid
  /// lower bound lets the best-first search skip OMD solves but can never
  /// change which neighbors are returned or their distances.
  bool quantized_prune = true;
};

/// Binds the OMD metric and OCD lower bound over stored SVSs to the integer
/// item-id interface used by the index structures (Sec. 4).
///
/// Item ids >= 0 are SVS ids in the bound store. Negative ids (from
/// `RegisterTemporary`) denote transient query feature maps, letting the
/// nearest-neighbor machinery run on queries that are not stored.
class SvsMetric : public index::ItemMetric {
 public:
  /// `store` and `calculator` must outlive the metric.
  SvsMetric(const SvsStore* store, OmdCalculator* calculator,
            const SvsMetricOptions& options = SvsMetricOptions());

  /// OMD between the two items. A failed solve (solver error, dimension
  /// mismatch, unknown id) returns +inf — a poison value that keeps the pair
  /// maximally far apart instead of silently reading as "identical" — and
  /// bumps `failed_distances`.
  double Distance(int a, int b) override;
  double LowerBound(int a, int b) override;
  uint64_t num_distance_evals() const override { return num_evals_; }
  /// Number of Distance calls that failed and returned the +inf poison.
  /// Surfaced through Monitor as `QueryLoadStats::omd_failures`.
  uint64_t failed_distances() const {
    return failed_distances_.load(std::memory_order_relaxed);
  }
  void ResetCounters() { num_evals_ = 0; }

  /// Registers a query-time feature map and returns a temporary (negative)
  /// id. The map must stay alive until `UnregisterTemporary`.
  int RegisterTemporary(const FeatureMap* map);
  void UnregisterTemporary(int id);

  /// Routes memoization through a cache shared with other consumers (keyed
  /// by id pair *and* OMD configuration, LRU-bounded, invalidatable per
  /// SVS). nullptr restores the private unbounded memo. The cache must
  /// outlive the metric.
  void set_shared_cache(OmdDistanceCache* cache) { shared_cache_ = cache; }

  /// Clears the memoization cache (e.g. after representatives change).
  void InvalidateCache();

 private:
  const FeatureMap* Resolve(int id) const;
  const FeatureVector& CentroidOf(int id);

  const SvsStore* store_;
  OmdCalculator* calculator_;
  SvsMetricOptions options_;
  std::unordered_map<int, const FeatureMap*> temporaries_;
  int next_temporary_ = -2;
  OmdDistanceCache* shared_cache_ = nullptr;
  std::unordered_map<int64_t, double> memo_;       // packed (a, b) -> distance
  std::unordered_map<int, FeatureVector> centroids_;
  uint64_t num_evals_ = 0;
  std::atomic<uint64_t> failed_distances_{0};
};

}  // namespace vz::core

#endif  // VZ_CORE_OMD_H_
