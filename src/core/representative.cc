#include "core/representative.h"

#include <algorithm>
#include <cmath>

#include "clustering/kmeans.h"
#include "common/math_util.h"
#include "clustering/silhouette.h"

namespace vz::core {

FeatureMap Representative::AsFeatureMap() const {
  FeatureMap map;
  for (const WeightedCenter& c : centers_) {
    // Weights are already normalized fractions; Add cannot fail here because
    // all centers share the construction dimension.
    (void)map.Add(c.center, c.weight);
  }
  return map;
}

int Representative::HitCenter(const FeatureVector& feature,
                              double boundary_scale) const {
  int best = -1;
  double best_dist = 0.0;
  for (size_t i = 0; i < centers_.size(); ++i) {
    if (centers_[i].center.dim() != feature.dim()) continue;
    const double d = EuclideanDistance(feature, centers_[i].center);
    if (d <= centers_[i].boundary * boundary_scale) {
      if (best < 0 || d < best_dist) {
        best = static_cast<int>(i);
        best_dist = d;
      }
    }
  }
  return best;
}

int Representative::RecordHit(const FeatureVector& feature,
                              int64_t timestamp_ms, double boundary_scale) {
  const int center = HitCenter(feature, boundary_scale);
  if (center >= 0) {
    centers_[static_cast<size_t>(center)].last_hit_ms =
        std::max(centers_[static_cast<size_t>(center)].last_hit_ms,
                 timestamp_ms);
  }
  return center;
}

double Representative::AverageMemberDistance() const {
  double total = 0.0;
  double mass = 0.0;
  for (const WeightedCenter& c : centers_) {
    total += c.weight * c.mean_member_distance;
    mass += c.weight;
  }
  return mass > 0.0 ? total / mass : 0.0;
}

int64_t Representative::MaxTimeSinceHitMs(int64_t now_ms) const {
  int64_t max_gap = 0;
  for (const WeightedCenter& c : centers_) {
    if (c.last_hit_ms < 0) continue;
    max_gap = std::max(max_gap, now_ms - c.last_hit_ms);
  }
  return max_gap;
}

StatusOr<Representative> BuildRepresentative(
    const std::vector<const FeatureMap*>& maps,
    const RepresentativeOptions& options, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("BuildRepresentative requires an Rng");
  }
  // Pool all vectors (with weights) from the inputs.
  std::vector<FeatureVector> points;
  std::vector<double> weights;
  for (const FeatureMap* map : maps) {
    if (map == nullptr) continue;
    for (size_t i = 0; i < map->size(); ++i) {
      points.push_back(map->vector(i));
      weights.push_back(map->weight(i));
    }
  }
  if (points.empty()) {
    return Status::InvalidArgument("no vectors to summarize");
  }
  // Bound the clustering cost on very long streams.
  if (points.size() > options.max_vectors) {
    std::vector<size_t> keep(points.size());
    for (size_t i = 0; i < keep.size(); ++i) keep[i] = i;
    rng->Shuffle(&keep);
    keep.resize(options.max_vectors);
    std::sort(keep.begin(), keep.end());
    std::vector<FeatureVector> sub_points;
    std::vector<double> sub_weights;
    sub_points.reserve(keep.size());
    for (size_t idx : keep) {
      sub_points.push_back(std::move(points[idx]));
      sub_weights.push_back(weights[idx]);
    }
    points = std::move(sub_points);
    weights = std::move(sub_weights);
  }

  // Choose k by silhouette (Sec. 3.3), then run the final weighted k-means.
  size_t k = 1;
  if (points.size() >= 3 && options.max_k >= 2) {
    auto sweep =
        clustering::ChooseKBySilhouette(points, options.min_k, options.max_k,
                                        rng);
    // A weak best silhouette means the vectors are essentially unimodal;
    // means forcing k >= 2 would shatter one scene into tight sub-balls whose
    // boundaries miss ordinary members. Fall back to a single center.
    if (sweep.ok() && sweep->best_score >= options.min_silhouette) {
      // Among near-optimal k, prefer the largest: under-segmentation merges
      // object classes into one fat ball whose decision boundary matches
      // everything, while mild over-segmentation is harmless (the sub-balls
      // still sit near their class and jointly cover the members).
      k = sweep->best_k;
      for (const auto& [candidate_k, score] : sweep->scores) {
        if (candidate_k > k && score >= sweep->best_score - 0.05) {
          k = candidate_k;
        }
      }
      // Silhouette confirms multimodal structure; also enforce a floor so a
      // scene with many classes cannot be summarized by a handful of merged
      // balls (fatal for the decision-boundary query, Sec. 3.3).
      k = std::max(k, std::min(points.size() / 12, options.max_k));
    }
  }
  clustering::KMeansOptions km_options;
  km_options.k = k;
  VZ_ASSIGN_OR_RETURN(clustering::KMeansResult km,
                      clustering::KMeans(points, weights, km_options, rng));

  // Assemble centers with weights, boundaries and mean member distances.
  const size_t num_centers = km.centroids.size();
  std::vector<WeightedCenter> centers(num_centers);
  std::vector<double> mass(num_centers, 0.0);
  std::vector<double> dist_sum(num_centers, 0.0);
  std::vector<std::vector<double>> dists(num_centers);
  double total_mass = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    const size_t c = km.assignments[i];
    const double d = EuclideanDistance(points[i], km.centroids[c]);
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    dists[c].push_back(d);
    dist_sum[c] += w * d;
    mass[c] += w;
    total_mass += w;
  }
  for (size_t c = 0; c < num_centers; ++c) {
    centers[c].center = km.centroids[c];
    centers[c].weight = total_mass > 0.0 ? mass[c] / total_mass : 0.0;
    centers[c].mean_member_distance =
        mass[c] > 0.0 ? dist_sum[c] / mass[c] : 0.0;
    double boundary =
        Percentile(dists[c],
                   100.0 * Clamp(options.boundary_quantile, 0.0, 1.0));
    if (options.boundary_quantile < 1.0) {
      // Robust cap: a center is typically one object class plus a few
      // heavy-tailed outliers (hard examples); quantiles and the mean both
      // get dragged by the contamination, while median + 3*MAD tracks the
      // clean majority. Quantile 1.0 (the paper's farthest-point rule)
      // disables the cap.
      const double median = Percentile(dists[c], 50.0);
      std::vector<double> deviations;
      deviations.reserve(dists[c].size());
      for (double d : dists[c]) deviations.push_back(std::fabs(d - median));
      const double mad = Percentile(std::move(deviations), 50.0);
      boundary =
          std::min(boundary, median + 3.0 * std::max(mad, 0.05 * median));
    }
    centers[c].boundary = boundary;
  }
  // Drop empty centers (possible when k-means leaves a cluster unpopulated).
  std::vector<WeightedCenter> populated;
  for (WeightedCenter& c : centers) {
    if (c.weight > 0.0) populated.push_back(std::move(c));
  }
  return Representative(std::move(populated));
}

StatusOr<Representative> BuildRepresentative(
    const FeatureMap& map, const RepresentativeOptions& options, Rng* rng) {
  return BuildRepresentative({&map}, options, rng);
}

StatusOr<Representative> BuildCoveringRepresentative(
    const std::vector<const Representative*>& members,
    const RepresentativeOptions& options, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("BuildCoveringRepresentative needs an Rng");
  }
  // Pool the member centers with their metadata.
  std::vector<FeatureVector> points;
  std::vector<double> weights;
  std::vector<double> boundaries;
  std::vector<double> mean_dists;
  for (const Representative* member : members) {
    if (member == nullptr) continue;
    for (const WeightedCenter& c : member->centers()) {
      points.push_back(c.center);
      weights.push_back(c.weight);
      boundaries.push_back(c.boundary);
      mean_dists.push_back(c.mean_member_distance);
    }
  }
  if (points.empty()) {
    return Status::InvalidArgument("no member centers to summarize");
  }

  size_t k = 1;
  if (points.size() >= 3 && options.max_k >= 2) {
    auto sweep = clustering::ChooseKBySilhouette(
        points, options.min_k, std::min(options.max_k, points.size() - 1),
        rng);
    if (sweep.ok() && sweep->best_score >= options.min_silhouette) {
      k = sweep->best_k;
    }
  }
  clustering::KMeansOptions km_options;
  km_options.k = std::min(k, points.size());
  VZ_ASSIGN_OR_RETURN(clustering::KMeansResult km,
                      clustering::KMeans(points, weights, km_options, rng));

  const size_t num_centers = km.centroids.size();
  std::vector<WeightedCenter> centers(num_centers);
  std::vector<double> mass(num_centers, 0.0);
  std::vector<double> mean_sum(num_centers, 0.0);
  double total_mass = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    const size_t c = km.assignments[i];
    const double d = EuclideanDistance(points[i], km.centroids[c]);
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    // Covering radius: the member ball must lie inside the group ball.
    centers[c].boundary = std::max(centers[c].boundary, d + boundaries[i]);
    mean_sum[c] += w * (d + mean_dists[i]);
    mass[c] += w;
    total_mass += w;
  }
  for (size_t c = 0; c < num_centers; ++c) {
    centers[c].center = km.centroids[c];
    centers[c].weight = total_mass > 0.0 ? mass[c] / total_mass : 0.0;
    centers[c].mean_member_distance =
        mass[c] > 0.0 ? mean_sum[c] / mass[c] : 0.0;
  }
  std::vector<WeightedCenter> populated;
  for (WeightedCenter& c : centers) {
    if (c.weight > 0.0) populated.push_back(std::move(c));
  }
  return Representative(std::move(populated));
}

}  // namespace vz::core
