#ifndef VZ_CORE_INTER_CAMERA_INDEX_H_
#define VZ_CORE_INTER_CAMERA_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "core/feature_map_metric.h"
#include "core/intra_camera_index.h"
#include "core/omd.h"
#include "core/representative.h"
#include "index/perch_tree.h"

namespace vz::core {

/// Parameters of the inter-camera index.
struct InterIndexOptions {
  /// Silhouette sweep range for the representative-SVS group count.
  size_t min_groups = 2;
  size_t max_groups = 10;
  /// When set, overrides the group count — the x-axis of Fig. 20 and a knob
  /// of the performance monitor (Sec. 5.3).
  std::optional<size_t> forced_num_groups;
  RepresentativeOptions representative;
  index::PerchOptions perch;
  /// Tighten the tree's lower bounds with the representatives' quantized
  /// shadows (see `QuantizedOmdLowerBound`); pruning-only.
  bool quantized_prune = true;
};

/// The inter-camera index: indexes the representative SVSs exported by every
/// intra-camera index, grouping semantically similar representatives across
/// cameras (Sec. 5: "an inter-camera index across all cameras to index the
/// representative semantic video streams constructed by all intra-camera
/// indices").
///
/// Because only representatives — never raw SVSs — cross the camera
/// boundary, this is also the privacy/traffic boundary of Sec. 2.2/5.4.
class InterCameraIndex {
 public:
  /// One representative SVS exported by an intra-camera index.
  struct RepEntry {
    CameraId camera;
    size_t intra_cluster_index = 0;
    /// The representative as a weighted feature map (for OMD).
    FeatureMap map;
    /// The representative's centers/boundaries (for hit tests).
    Representative rep;
  };

  /// A group of semantically similar representatives with its own summary.
  struct Group {
    Representative representative;
    std::vector<size_t> entry_indices;
  };

  /// `calculator` must outlive the index.
  InterCameraIndex(OmdCalculator* calculator, const InterIndexOptions& options,
                   Rng rng);

  InterCameraIndex(const InterCameraIndex&) = delete;
  InterCameraIndex& operator=(const InterCameraIndex&) = delete;

  /// Replaces all representatives of `intra`'s camera with its current ones
  /// and rebuilds the tree and groups (Sec. 5.1: "The updated representative
  /// SVSs will then replace the outdated versions in the inter-camera
  /// index"). Tracks bytes "sent" for the traffic accounting of Sec. 7.3.
  Status UpdateCamera(const IntraCameraIndex& intra);

  /// Drops a camera's representatives (cameraTerminate support).
  Status RemoveCamera(const CameraId& camera);

  /// Replaces the whole entry set and rebuilds — how a coordinator installs
  /// the representatives its edges shipped over RepSync. Unlike
  /// `UpdateCamera` this takes entries directly (there is no local intra
  /// index behind them) and does not count traffic bytes; the caller owns
  /// that accounting.
  Status SetEntries(std::vector<RepEntry> entries);

  /// Drops every entry AND restores the random stream to `rng` — the full
  /// reset used when the owning system is re-seeded from a checkpoint, so
  /// the rebuilt index consumes the same stream as a freshly constructed
  /// instance restoring the same store (bit-identical recovery).
  Status Reset(Rng rng);

  size_t size() const { return entries_.size(); }
  const std::vector<RepEntry>& entries() const { return entries_; }
  const std::vector<Group>& groups() const { return groups_; }

  /// Direct-query pruning: representatives in groups whose summary contains
  /// `feature`, filtered by each representative's own boundaries.
  std::vector<const RepEntry*> FeatureSearch(const FeatureVector& feature,
                                             double boundary_scale = 1.0) const;

  /// Clustering-query support: the group containing the representative
  /// nearest (under OMD) to `query` (Sec. 5.2). Errors when empty.
  StatusOr<const Group*> GroupOfNearest(const FeatureMap& query);

  /// Overrides (or restores) the group count and regroups.
  Status SetForcedGroupCount(std::optional<size_t> k);

  /// Bytes of representative data received from edge indices so far — the
  /// hierarchical side of the Sec. 7.3 traffic comparison.
  size_t representative_bytes_received() const { return rep_bytes_received_; }

  /// Read access to the underlying tree.
  const index::PerchTree& tree() const { return *tree_; }

  /// Cumulative poisoned (+inf) OMD evaluations across all rebuilds of the
  /// internal metric; folded into `QueryLoadStats::omd_failures`.
  uint64_t omd_failures() const {
    return failed_distances_accum_ +
           (metric_ != nullptr ? metric_->failed_distances() : 0);
  }

 private:
  Status Rebuild();
  Status Regroup();
  size_t ChooseGroupCount();

  OmdCalculator* calculator_;
  InterIndexOptions options_;
  Rng rng_;
  std::vector<RepEntry> entries_;
  std::vector<FeatureMap> entry_maps_;  // tree items index into this
  std::unique_ptr<FeatureMapListMetric> metric_;
  std::unique_ptr<index::PerchTree> tree_;
  std::vector<Group> groups_;
  size_t rep_bytes_received_ = 0;
  uint64_t failed_distances_accum_ = 0;  // from metrics replaced by Rebuild
};

}  // namespace vz::core

#endif  // VZ_CORE_INTER_CAMERA_INDEX_H_
