#include "core/intra_camera_index.h"

#include <algorithm>
#include <utility>

#include "clustering/silhouette.h"

namespace vz::core {

IntraCameraIndex::IntraCameraIndex(CameraId camera, SvsStore* store,
                                   SvsMetric* metric,
                                   const IntraIndexOptions& options, Rng rng)
    : camera_(std::move(camera)),
      store_(store),
      metric_(metric),
      options_(options),
      rng_(rng),
      tree_(metric, options.perch) {}

Status IntraCameraIndex::Insert(SvsId id) {
  VZ_ASSIGN_OR_RETURN(Svs * svs, store_->GetMutable(id));
  if (svs->camera() != camera_) {
    return Status::InvalidArgument("SVS belongs to a different camera");
  }
  if (svs->representative().empty() && !svs->features().empty()) {
    VZ_ASSIGN_OR_RETURN(
        Representative rep,
        BuildRepresentative(svs->features(), options_.representative, &rng_));
    svs->set_representative(std::move(rep));
  }
  VZ_RETURN_IF_ERROR(tree_.Insert(static_cast<int>(id)));
  ++inserts_since_recluster_;
  if (inserts_since_recluster_ >= options_.recluster_interval ||
      clusters_.empty()) {
    VZ_RETURN_IF_ERROR(Recluster());
  }
  return Status::OK();
}

size_t IntraCameraIndex::ChooseClusterCount() {
  if (options_.forced_num_clusters.has_value()) {
    return std::max<size_t>(1, *options_.forced_num_clusters);
  }
  const size_t n = tree_.size();
  if (n < 3) return 1;
  // Silhouette sweep over SVS centroids — a cheap Euclidean proxy for the
  // OMD space (the OCD centroid stands in for each SVS, Sec. 4.3).
  std::vector<FeatureVector> centroids;
  centroids.reserve(n);
  for (int item : tree_.items()) {
    auto svs = store_->Get(item);
    if (svs.ok()) centroids.push_back((*svs)->features().Centroid());
  }
  auto sweep = clustering::ChooseKBySilhouette(
      centroids, options_.min_clusters,
      std::min(options_.max_clusters, centroids.size() - 1), &rng_);
  if (!sweep.ok()) return std::max<size_t>(1, options_.min_clusters);
  return sweep->best_k;
}

Status IntraCameraIndex::Recluster() {
  inserts_since_recluster_ = 0;
  if (tree_.size() == 0) {
    clusters_.clear();
    return Status::OK();
  }
  const size_t k = ChooseClusterCount();
  const std::vector<std::vector<int>> raw = tree_.ExtractClusters(k);
  std::vector<Cluster> next;
  next.reserve(raw.size());
  for (const std::vector<int>& members : raw) {
    Cluster cluster;
    std::vector<const Representative*> reps;
    std::vector<const FeatureMap*> maps;
    maps.reserve(members.size());
    for (int m : members) {
      cluster.members.push_back(static_cast<SvsId>(m));
      auto svs = store_->Get(m);
      if (!svs.ok()) continue;
      maps.push_back(&(*svs)->features());
      if (!(*svs)->representative().empty()) {
        reps.push_back(&(*svs)->representative());
      }
    }
    // The cluster representative must *cover* its members' representatives:
    // a query feature that hits a member SVS's decision boundary must also
    // hit the cluster's, or the hierarchy filters out reachable content
    // (rare classes dilute away under pooled re-clustering).
    if (!reps.empty() && options_.covering_cluster_representatives) {
      VZ_ASSIGN_OR_RETURN(
          cluster.representative,
          BuildCoveringRepresentative(reps, options_.representative, &rng_));
    } else if (!maps.empty()) {
      VZ_ASSIGN_OR_RETURN(
          cluster.representative,
          BuildRepresentative(maps, options_.representative, &rng_));
    }
    next.push_back(std::move(cluster));
  }
  clusters_ = std::move(next);
  ++representative_version_;
  return Status::OK();
}

std::vector<SvsId> IntraCameraIndex::FeatureSearch(
    const FeatureVector& feature, double boundary_scale) const {
  std::vector<SvsId> result;
  for (const Cluster& cluster : clusters_) {
    if (!cluster.representative.Hit(feature, boundary_scale)) continue;
    for (SvsId id : cluster.members) {
      auto svs = store_->Get(id);
      if (!svs.ok()) continue;
      if ((*svs)->representative().Hit(feature, boundary_scale)) {
        result.push_back(id);
      }
    }
  }
  return result;
}

StatusOr<std::vector<SvsId>> IntraCameraIndex::ClusterMembers(
    size_t cluster_index) const {
  if (cluster_index >= clusters_.size()) {
    return Status::OutOfRange("cluster index out of range");
  }
  return clusters_[cluster_index].members;
}

StatusOr<SvsId> IntraCameraIndex::NearestSvs(const FeatureMap& query) {
  if (tree_.size() == 0) return Status::NotFound("index is empty");
  const int temp = metric_->RegisterTemporary(&query);
  auto nearest = tree_.NearestNeighbor(temp);
  metric_->UnregisterTemporary(temp);
  VZ_ASSIGN_OR_RETURN(int item, std::move(nearest));
  return static_cast<SvsId>(item);
}

StatusOr<const Representative*> IntraCameraIndex::ClusterRepresentativeFor(
    SvsId id) const {
  for (const Cluster& cluster : clusters_) {
    for (SvsId member : cluster.members) {
      if (member == id) return &cluster.representative;
    }
  }
  return Status::NotFound("SVS is not in any derived cluster");
}

void IntraCameraIndex::SetForcedClusterCount(std::optional<size_t> k) {
  options_.forced_num_clusters = k;
}

}  // namespace vz::core
