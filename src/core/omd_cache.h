#ifndef VZ_CORE_OMD_CACHE_H_
#define VZ_CORE_OMD_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/deadline.h"
#include "core/frame.h"

namespace vz::core {

enum class OmdMode;  // core/omd.h

/// Counters of the shared OMD distance cache, surfaced through
/// `PerformanceMonitor::omd_cache_stats()` so parameter adaptation can see
/// how much of the query cost is being absorbed by memoization.
struct OmdCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  /// Entries dropped by `InvalidateSvs` / `Clear` (not by LRU eviction).
  uint64_t invalidations = 0;
  /// Inserts refused because the distance was computed under a fired cancel
  /// token (see the token-guarded `Insert` overload).
  uint64_t rejected_inserts = 0;
  size_t entries = 0;
  size_t capacity = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe LRU memo of pairwise OMD distances between *stored* SVSs.
///
/// One instance is shared through `VideoZilla` by every consumer of SVS-pair
/// distances: the per-camera intra indices (PERCH insertions and rotations
/// re-touch the same pairs), representative selection, and
/// `clusteringQuery`'s flat fallback when the query is itself a stored SVS.
///
/// The key is the unordered id pair *plus* the OMD configuration it was
/// computed under — `(min(a,b), max(a,b), mode, threshold_alpha)` — so the
/// performance monitor's switch to exact OMD (Sec. 5.3 adjustment ii) can
/// never be served a stale thresholded value. Entries involving an SVS must
/// be invalidated when that SVS is (re)ingested; `VideoZilla` does this on
/// every store insertion.
class OmdDistanceCache {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit OmdDistanceCache(size_t capacity = kDefaultCapacity);

  /// Cached distance for the pair under the given configuration, bumping it
  /// to most-recently-used; nullopt on miss. Ids must be non-negative.
  std::optional<double> Lookup(SvsId a, SvsId b, OmdMode mode, double alpha);

  /// Memoizes a computed distance (evicting the least-recently-used entry at
  /// capacity). Overwrites an existing entry for the same key.
  void Insert(SvsId a, SvsId b, OmdMode mode, double alpha, double distance);

  /// Token-guarded insert: refuses (and counts `rejected_inserts`) when
  /// `cancel` has fired. A distance produced under an expired deadline may
  /// rest on a partially filled ground matrix or an aborted solve; caching it
  /// would poison every later query for the pair, so deadline-carrying call
  /// sites must insert through this overload.
  void Insert(SvsId a, SvsId b, OmdMode mode, double alpha, double distance,
              const CancelToken* cancel);

  /// Drops every entry involving `id`. Call whenever an SVS is (re)ingested
  /// or its feature map could have changed.
  void InvalidateSvs(SvsId id);

  /// Drops everything (e.g. after a bulk restore).
  void Clear();

  OmdCacheStats stats() const;
  void ResetStats();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Key {
    uint64_t lo = 0;
    uint64_t hi = 0;
    OmdMode mode;
    double alpha = 0.0;

    bool operator==(const Key& other) const {
      return lo == other.lo && hi == other.hi && mode == other.mode &&
             alpha == other.alpha;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  static Key MakeKey(SvsId a, SvsId b, OmdMode mode, double alpha);

  using LruList = std::list<std::pair<Key, double>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t rejected_inserts_ = 0;
};

}  // namespace vz::core

#endif  // VZ_CORE_OMD_CACHE_H_
