#ifndef VZ_CORE_FEATURE_MAP_METRIC_H_
#define VZ_CORE_FEATURE_MAP_METRIC_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/omd.h"
#include "index/item_metric.h"
#include "vector/feature_map.h"

namespace vz::core {

/// OMD metric over an externally owned list of feature maps; item ids are
/// indices into the list. Used by the inter-camera index, whose items are
/// representative SVSs rather than stored SVSs, and by tests/benches that
/// operate on synthetic feature maps directly.
class FeatureMapListMetric : public index::ItemMetric {
 public:
  /// `maps` and `calculator` must outlive the metric. The list may grow
  /// (ids stay valid); it must not reorder existing entries. With `memoize`
  /// the metric caches pair distances and `num_distance_evals` counts cache
  /// misses only (actual OMD solves). With `quantized_prune`, `LowerBound`
  /// tightens OCD with the maps' quantized shadows (pruning-only — results
  /// of the search never change, only how many solves it needs).
  FeatureMapListMetric(const std::vector<FeatureMap>* maps,
                       OmdCalculator* calculator, bool memoize = false,
                       bool quantized_prune = true)
      : maps_(maps),
        calculator_(calculator),
        memoize_(memoize),
        quantized_prune_(quantized_prune) {}

  /// OMD between the two maps; +inf (poison) on out-of-range ids or solver
  /// failure, counted in `failed_distances`.
  double Distance(int a, int b) override;
  double LowerBound(int a, int b) override;
  uint64_t num_distance_evals() const override { return num_evals_; }
  /// Number of Distance calls that failed and returned the +inf poison.
  uint64_t failed_distances() const {
    return failed_distances_.load(std::memory_order_relaxed);
  }
  void ResetCounters() { num_evals_ = 0; }

  /// Drops the cached centroid for slot `i`; callers that replace a map at
  /// an existing index (e.g. a popped-then-reused scratch slot) must call
  /// this or lower bounds would read the stale centroid.
  void InvalidateCentroid(size_t i) {
    if (i < centroids_.size()) centroids_[i] = FeatureVector();
  }

 private:
  const std::vector<FeatureMap>* maps_;
  OmdCalculator* calculator_;
  bool memoize_;
  bool quantized_prune_;
  std::unordered_map<int64_t, double> memo_;
  std::vector<FeatureVector> centroids_;  // lazily filled, index-aligned
  uint64_t num_evals_ = 0;
  std::atomic<uint64_t> failed_distances_{0};
};

}  // namespace vz::core

#endif  // VZ_CORE_FEATURE_MAP_METRIC_H_
