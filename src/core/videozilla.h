#ifndef VZ_CORE_VIDEOZILLA_H_
#define VZ_CORE_VIDEOZILLA_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "core/frame.h"
#include "core/inter_camera_index.h"
#include "core/intra_camera_index.h"
#include "core/keyframe_selector.h"
#include "core/omd.h"
#include "core/omd_cache.h"
#include "core/query.h"
#include "core/segmenter.h"
#include "core/svs.h"

namespace vz::core {

/// How queries traverse the index (Sec. 5.3 / Sec. 7.4): the full hierarchy;
/// only per-camera indices ("intra only", Fig. 19); one flat index over all
/// SVSs without the intra/inter distinction (the monitor's third
/// adjustment); or the frame-level fallback the bailout degrades to
/// (no pruning at all).
enum class IndexMode { kHierarchical, kIntraOnly, kFlatSvs, kFlat };

/// Ingestion guard rails (see DESIGN.md, "Failure model"): how far out of
/// order a frame may arrive before it is a contract violation, when a silent
/// camera counts as stalled, and when a fault-ridden one counts as degraded.
struct IngestGuardOptions {
  /// Frames whose timestamp trails the camera's newest accepted frame by at
  /// most this much are quarantined (dropped + counted) instead of erroring;
  /// older frames are a hard `kFailedPrecondition`. The window absorbs the
  /// reordering real transports produce without letting a rebooted camera
  /// silently rewrite history.
  int64_t reorder_tolerance_ms = 2'000;
  /// A camera whose newest accepted frame trails `now_ms()` by more than
  /// this is `kStalled` and is excluded from queries (which then report
  /// `degraded = true`). Stalls heal automatically when frames resume.
  int64_t stall_threshold_ms = 60'000;
  /// A camera is `kDegraded` once its lifetime fault fraction — rejected
  /// frames plus quarantined objects over frames offered — exceeds this.
  /// Degraded cameras keep serving queries; the state is a health signal
  /// for operators and the performance monitor.
  double degraded_fault_fraction = 0.05;
  /// Faults are not diagnostic below this many offered frames (a single
  /// early glitch must not mark a fresh camera degraded).
  uint64_t degraded_min_frames = 20;
  /// Expected feature dimensionality; 0 learns it per camera from the first
  /// valid object. Mismatched objects are quarantined either way.
  size_t expected_feature_dim = 0;
};

/// Top-level configuration of the indexing layer.
struct VideoZillaOptions {
  OmdOptions omd;
  SegmenterOptions segmenter;
  IntraIndexOptions intra;
  InterIndexOptions inter;
  KeyframeOptions keyframe;
  /// Scales every decision boundary during query hit tests; wider boundaries
  /// trade FNR for FPR (Sec. 7.4).
  double boundary_scale = 1.0;
  /// Disable to ingest every frame (microbenchmarks).
  bool enable_keyframe_selection = true;
  /// Run the exact second stage of the feature search (Sec. 4.2): candidate
  /// SVSs are confirmed against their stored feature maps before the heavy
  /// model runs. Disable to expose the raw index selectivity (Fig. 20).
  bool enable_exact_stage = true;
  /// Master seed; every camera pipeline forks its own deterministic stream.
  uint64_t seed = 7;
  /// Execution lanes for the parallel query path (OMD ground-distance
  /// matrices, candidate verification, per-camera index scans). 1 (the
  /// default) forces the fully serial legacy behaviour; 0 means one lane per
  /// hardware thread. Parallel results are bit-identical to `num_threads=1`
  /// for any value: every parallel loop writes per-slot results and
  /// aggregates them in the serial iteration order.
  size_t num_threads = 1;
  /// Capacity of the shared SVS-pair OMD distance cache.
  size_t omd_cache_capacity = OmdDistanceCache::kDefaultCapacity;
  /// Tighten index lower bounds with the 8-bit quantized shadow tier
  /// (`QuantizedOmdLowerBound`) on top of OCD, in both the per-camera and
  /// inter-camera indexes. Pruning-only: query results are identical with
  /// the tier on or off; only the number of OMD solves changes.
  bool quantized_prune = true;
  /// Ingestion fault tolerance: reorder window, stall/degraded thresholds,
  /// feature validation.
  IngestGuardOptions ingest;
  /// Clock that query deadlines (`QueryConstraints::deadline_ms`) are
  /// measured against. Borrowed, must outlive the instance; nullptr (the
  /// default) uses the host's steady clock. Tests pass a
  /// `SimClockTimeSource` for deterministic expiry; the bound clock must not
  /// advance while a query is in flight.
  const TimeSource* time_source = nullptr;
  /// Overload protection of the query path: in-flight gate, bounded wait
  /// queue, load shedding, and cost-based FastOMD routing. Defaults disable
  /// all gating (legacy behaviour).
  AdmissionOptions admission;
};

/// Ingestion counters.
struct IngestStats {
  uint64_t frames_offered = 0;
  uint64_t keyframes_selected = 0;
  uint64_t features_extracted = 0;
  uint64_t svs_created = 0;
  /// Bytes of raw object features extracted — what a flat centralized index
  /// would have shipped to the cloud (Sec. 7.3 traffic comparison).
  size_t raw_feature_bytes = 0;
  /// Frames dropped whole by the ingestion guard (out-of-order within the
  /// tolerance window, or duplicates). Always `out_of_order_dropped +
  /// duplicates_dropped`.
  uint64_t frames_rejected = 0;
  /// Frames dropped because their timestamp trailed the camera's newest
  /// accepted frame (within the reorder-tolerance window; older is an error).
  uint64_t out_of_order_dropped = 0;
  /// Frames dropped as exact re-deliveries (same id and timestamp as the
  /// camera's newest accepted frame).
  uint64_t duplicates_dropped = 0;
  /// Objects skipped for carrying an unusable feature vector (empty,
  /// NaN/Inf, or dimension mismatch). The rest of the frame is processed.
  uint64_t objects_quarantined = 0;
};

/// Health of one camera feed, derived from its ingestion history
/// (`kHealthy` -> `kDegraded` on accumulated faults, any state -> `kStalled`
/// on silence past the stall threshold, `kStalled` -> healthy/degraded again
/// when frames resume). Stalled cameras are excluded from queries.
enum class CameraHealth { kHealthy, kDegraded, kStalled };

/// Human-readable name of a health state ("healthy" / "degraded" /
/// "stalled").
std::string_view CameraHealthToString(CameraHealth health);

/// Load and overload counters of the query path, surfaced through
/// `VideoZilla::query_load_stats()` and `PerformanceMonitor` next to the OMD
/// cache stats: the admission gate's gauges (in-flight, waiting) and
/// counters (admitted, shed), plus the deadline outcomes (timed-out count,
/// cumulative checkpoint latency past the deadline) and cost-based FastOMD
/// reroutes.
struct QueryLoadStats {
  size_t in_flight = 0;
  size_t waiting = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  /// Queries that returned `timed_out = true` (deadline or external cancel).
  uint64_t timed_out = 0;
  /// Clustering queries rerouted to thresholded OMD by the cost estimate.
  uint64_t fast_omd_routed = 0;
  /// Total ms queries ran past their deadline before the next checkpoint
  /// noticed — the observed cancellation-checkpoint latency. Always 0 under
  /// a `SimClock` (time cannot advance mid-query).
  int64_t timeout_overshoot_ms_total = 0;
  size_t max_in_flight = 0;
  size_t max_queue = 0;
  /// OMD distance evaluations that failed and were poisoned to +inf instead
  /// of silently reading as 0.0 ("identical"). Anything nonzero deserves
  /// investigation: it means clustering/search quality is degraded.
  uint64_t omd_failures = 0;
};

/// Per-camera ingestion/fault counters (introspection; also the inputs of
/// the health classification).
struct CameraIngestStats {
  uint64_t frames_offered = 0;
  uint64_t frames_accepted = 0;
  uint64_t frames_rejected = 0;
  uint64_t out_of_order_dropped = 0;
  uint64_t duplicates_dropped = 0;
  uint64_t objects_quarantined = 0;
  /// Timestamp of the newest accepted frame; -1 before the first.
  int64_t last_frame_ms = -1;
};

/// One camera's complete ingestion-guard state (counters, duplicate
/// detector, pinned feature dimensionality), as captured into a WAL
/// checkpoint. Replaying a WAL tail over a restored snapshot must resume
/// from the exact guard state at the cut, or quarantine decisions — and with
/// them the applied frame set — diverge from the original run.
struct CameraGuardState {
  CameraIngestStats stats;
  int64_t last_frame_id = -1;
  uint64_t expected_dim = 0;
};

/// The Video-zilla indexing layer (Fig. 1): per-camera ingestion (key-frame
/// selection -> segmentation -> intra-camera index) plus one inter-camera
/// index over representative SVSs, and the query APIs of Sec. 6.
class VideoZilla {
 public:
  explicit VideoZilla(const VideoZillaOptions& options);
  ~VideoZilla();

  VideoZilla(const VideoZilla&) = delete;
  VideoZilla& operator=(const VideoZilla&) = delete;

  /// `cameraStart(cameraID, ...)`: registers a feed and its pipeline.
  Status CameraStart(const CameraId& camera);

  /// `cameraTerminate(cameraID, ...)`: drops the pipeline and the camera's
  /// representatives from the inter-camera index. Stored SVSs remain
  /// queryable through the store but stop being indexed.
  Status CameraTerminate(const CameraId& camera);

  /// Feeds one frame through validation, key-frame selection, feature
  /// segmentation and index maintenance.
  ///
  /// Frames of one camera must arrive in timestamp order; arrivals that
  /// trail the newest accepted frame by at most
  /// `IngestGuardOptions::reorder_tolerance_ms` (and exact duplicates) are
  /// quarantined — dropped, counted in `IngestStats`, `OK` returned — while
  /// older arrivals return `kFailedPrecondition`. Objects with unusable
  /// features (empty, NaN/Inf, dimension mismatch) are quarantined
  /// individually; the rest of the frame is processed normally. Malformed
  /// input therefore degrades counters and health states, never the index.
  Status IngestFrame(const FrameObservation& frame);

  /// Flushes all segmenters (end of stream); emits the final SVSs.
  Status Flush();

  /// Rebuilds the indexing layer from persisted SVSs (e.g. a snapshot loaded
  /// with `vz::io::LoadSvsStore`): every SVS of `source` is copied into this
  /// instance's store, its camera pipeline is started on demand, and the
  /// intra-/inter-camera indices are re-derived. Index structures are pure
  /// derived state, so this restores query behavior exactly. Requires an
  /// empty store (call on a fresh instance, or after `Reset`).
  Status RestoreFromSvsStore(const SvsStore& source);

  /// Returns the instance to its freshly-constructed emptiness: store,
  /// pipelines, indexes, caches, ingest counters and clock are dropped, and
  /// every seeded random stream is rewound to its initial state — so a
  /// `Reset` + `RestoreFromSvsStore` regenerates bit-identical derived state
  /// to a brand-new instance restoring the same store. The standby re-seed
  /// path runs this before installing a fetched checkpoint. Must not run
  /// concurrently with ingestion or queries (the serving layer holds its
  /// state lock exclusively).
  Status Reset();

  /// Installs the heavy-model verifier used by direct queries. May be null.
  void SetVerifier(ObjectVerifier* verifier) { verifier_ = verifier; }

  /// `directQuery(objectImg, ...)`: find SVSs containing an object similar
  /// to `object_feature` (Sec. 5.2). Matched SVSs get their access stats
  /// bumped (for archival).
  StatusOr<DirectQueryResult> DirectQuery(
      const FeatureVector& object_feature,
      const QueryConstraints& constraints = QueryConstraints());

  /// `clusteringQuery(targetSVS, ...)`: all SVSs semantically similar to the
  /// query feature map (Sec. 5.2).
  StatusOr<ClusteringQueryResult> ClusteringQuery(
      const FeatureMap& target,
      const QueryConstraints& constraints = QueryConstraints());

  /// `clusteringQuery` with a *stored* SVS as the target — the paper's
  /// primary form. Pairwise OMDs computed on the flat-fallback path are
  /// memoized in the shared distance cache under the (target, candidate) id
  /// pair, so repeated queries over an unchanged corpus are served from the
  /// cache.
  StatusOr<ClusteringQueryResult> ClusteringQuery(
      SvsId target_id, const QueryConstraints& constraints = QueryConstraints());

  /// `getMetaData(SVS)` (Sec. 6).
  StatusOr<SvsMetadata> GetMetaData(SvsId id) const;

  // --- Adaptation knobs driven by the performance monitor (Sec. 5.3). ---

  void SetIndexMode(IndexMode mode) { index_mode_ = mode; }
  IndexMode index_mode() const { return index_mode_; }

  /// Forces the inter-camera group count (nullopt = silhouette-chosen).
  Status SetInterGroupCount(std::optional<size_t> k);
  std::optional<size_t> forced_inter_group_count() const {
    return forced_inter_groups_;
  }

  /// Forces every intra-camera cluster count and reclusters.
  Status SetIntraClusterCount(std::optional<size_t> k);
  std::optional<size_t> forced_intra_cluster_count() const {
    return forced_intra_clusters_;
  }

  void SetBoundaryScale(double scale) { options_.boundary_scale = scale; }
  double boundary_scale() const { return options_.boundary_scale; }

  /// Adjusts the FastOMD threshold (1.0 = exact).
  void SetOmdAlpha(double alpha) { omd_.set_threshold_alpha(alpha); }
  double omd_alpha() const { return omd_.options().threshold_alpha; }

  /// Toggles ingestion-time key-frame selection (the live-tuning face of
  /// `VideoZillaOptions::enable_keyframe_selection`). Takes effect on the
  /// next ingested frame; already-buffered frames are unaffected.
  void SetKeyframeSelection(bool enabled) {
    options_.enable_keyframe_selection = enabled;
  }
  bool keyframe_selection() const {
    return options_.enable_keyframe_selection;
  }

  /// Called with every newly finalized segment's SVS, after it is stored and
  /// indexed — the subscription engine's incremental-evaluation hook. Runs
  /// on the ingest path (under the serving layer's exclusive state lock when
  /// driven over the wire), so the observer must be fast and non-blocking:
  /// enqueue and return. Pass nullptr to clear. Not thread-safe against
  /// concurrent ingest; set before serving starts or while quiesced.
  using SegmentObserver = std::function<void(const Svs&)>;
  void SetSegmentObserver(SegmentObserver observer) {
    segment_observer_ = std::move(observer);
  }

  // --- Introspection. ---

  /// The configuration this instance was built with. The serving layer reads
  /// the admission knobs (retry-after hint) to annotate wire-level shed
  /// responses.
  const VideoZillaOptions& options() const { return options_; }

  SvsStore& svs_store() { return store_; }
  const SvsStore& svs_store() const { return store_; }
  OmdCalculator& omd() { return omd_; }
  /// The shared SVS-pair OMD distance cache (hit/miss counters included).
  OmdDistanceCache& omd_cache() { return omd_cache_; }
  const OmdDistanceCache& omd_cache() const { return omd_cache_; }
  /// The query thread pool; nullptr when running serial (`num_threads = 1`).
  ThreadPool* thread_pool() { return pool_.get(); }
  /// Effective execution lanes of the query path.
  size_t query_threads() const { return pool_ ? pool_->num_threads() : 1; }
  const InterCameraIndex& inter_index() const { return inter_; }
  /// Monotone version of the inter-camera index's entry set, bumped on every
  /// representative change (segment emission, flush, recluster, camera
  /// terminate, restore, reset). A coordinator's RepSync round compares it
  /// against the version of its last sync to skip re-shipping an unchanged
  /// index. Safe to read concurrently with queries.
  uint64_t index_version() const {
    return index_version_.load(std::memory_order_acquire);
  }
  StatusOr<const IntraCameraIndex*> intra_index(const CameraId& camera) const;
  std::vector<CameraId> cameras() const;
  const IngestStats& ingest_stats() const { return ingest_stats_; }
  /// Load/overload gauges and counters of the query path (thread-safe).
  QueryLoadStats query_load_stats() const;
  /// Largest timestamp ingested so far.
  int64_t now_ms() const { return now_ms_; }

  // --- Camera health (consumed by queries and the Sec. 5.3 monitor). ---

  /// Health of one started camera at the current `now_ms()`.
  StatusOr<CameraHealth> camera_health(const CameraId& camera) const;
  /// Per-camera fault counters of one started camera.
  StatusOr<CameraIngestStats> camera_ingest_stats(const CameraId& camera) const;
  /// Health of every started camera, sorted by camera id.
  std::vector<std::pair<CameraId, CameraHealth>> CameraHealthReport() const;
  /// Advances the health clock without ingesting (e.g. wall-clock ticks
  /// while every feed is silent); `now_ms()` only moves forward.
  void AdvanceTime(int64_t now_ms);

  // --- Durability hooks (WAL checkpoints; see DESIGN.md, "Durability and
  // --- replication"). ---

  /// Guard state of one started camera, for checkpoint capture.
  StatusOr<CameraGuardState> ExportCameraGuardState(
      const CameraId& camera) const;
  /// Restores guard state onto a started camera and resets its health
  /// baseline to the current clock (a freshly recovered feed is healthy
  /// until real silence accumulates).
  Status RestoreCameraGuardState(const CameraId& camera,
                                 const CameraGuardState& state);
  /// Overwrites the global ingest counters with the checkpoint's capture.
  /// (`RestoreFromSvsStore` re-counts restored SVSs; the checkpoint cut is
  /// the authority over every counter.)
  void RestoreIngestStats(const IngestStats& stats) { ingest_stats_ = stats; }

 private:
  struct CameraPipeline;

  // Turns a finished segment into a stored + indexed SVS.
  Status HandleSegment(CameraPipeline* pipeline, Segment segment);
  // Median per-center member spread across all SVS representatives — the
  // typical intra-class feature scatter, used by the exact second-stage
  // check of direct queries. Cached per store size.
  double EstimateFeatureSpread();
  // Candidate SVSs for a direct query under the current index mode.
  // `excluded` holds cameras removed for health reasons (stalled feeds);
  // `cancel` (may be null) truncates the scan at the next checkpoint.
  std::vector<SvsId> DirectCandidates(
      const FeatureVector& feature, const QueryConstraints& constraints,
      const std::unordered_set<CameraId>& excluded, const CancelToken* cancel);
  // Effective cancel token of a query: the caller's external token chained
  // with a deadline token when `deadline_ms` is set (kept alive in
  // `storage`). `deadline` receives the deadline for overshoot accounting.
  const CancelToken* MakeQueryToken(const QueryConstraints& constraints,
                                    std::optional<CancelToken>* storage,
                                    Deadline* deadline) const;
  // Counts a timed-out query and its checkpoint overshoot.
  void NoteTimeout(const Deadline& deadline);
  // Shared implementation of both ClusteringQuery overloads; `target_id < 0`
  // means the target is not a stored SVS (no cacheable pair key).
  StatusOr<ClusteringQueryResult> ClusteringQueryImpl(
      const FeatureMap& target, SvsId target_id,
      const QueryConstraints& constraints);
  // Health classification of one pipeline at the current now_ms().
  CameraHealth HealthOf(const CameraPipeline& pipeline) const;
  // Stalled cameras the constraints would otherwise allow, as (set, sorted
  // list) — the query-time exclusion set and the `excluded_cameras` field.
  std::pair<std::unordered_set<CameraId>, std::vector<CameraId>>
  ExcludedCameras(const QueryConstraints& constraints) const;

  VideoZillaOptions options_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;  // before users; null when serial
  WallClockTimeSource wall_clock_;    // default deadline clock
  AdmissionController admission_;
  std::atomic<uint64_t> timed_out_queries_{0};
  std::atomic<uint64_t> fast_omd_routed_{0};
  std::atomic<int64_t> timeout_overshoot_ms_total_{0};
  // Serializes the mutable shared state the query path touches (the feature
  // spread cache and per-SVS access stats) across concurrently admitted
  // queries. Ingestion stays single-caller (documented contract); queries
  // may overlap once `admission.max_in_flight > 1`.
  mutable std::mutex query_mu_;
  SvsStore store_;
  OmdCalculator omd_;
  OmdDistanceCache omd_cache_;
  SvsMetric metric_;
  InterCameraIndex inter_;
  std::unordered_map<CameraId, std::unique_ptr<CameraPipeline>> pipelines_;
  ObjectVerifier* verifier_ = nullptr;
  IndexMode index_mode_ = IndexMode::kHierarchical;
  IngestStats ingest_stats_;
  int64_t now_ms_ = 0;
  double spread_cache_ = 0.0;
  size_t spread_cache_svs_count_ = 0;
  std::atomic<uint64_t> index_version_{0};
  SegmentObserver segment_observer_;
  /// Last forced counts applied through the Set*Count knobs (nullopt =
  /// auto), echoed by the AdminTune RPC.
  std::optional<size_t> forced_inter_groups_;
  std::optional<size_t> forced_intra_clusters_;
};

}  // namespace vz::core

#endif  // VZ_CORE_VIDEOZILLA_H_
