#include "core/keyframe_selector.h"

#include <algorithm>

namespace vz::core {

KeyframeSelector::KeyframeSelector(const KeyframeOptions& options)
    : options_(options) {
  if (options_.ladder.empty()) {
    options_.ladder.push_back(KeyframeConfig{});
  }
  for (KeyframeConfig& config : options_.ladder) {
    if (config.frame_stride == 0) config.frame_stride = 1;
  }
}

bool KeyframeSelector::ShouldProcess(const FrameObservation& frame) {
  ++stats_.frames_seen;

  // Drain the simulated queue by the elapsed video time.
  if (last_timestamp_ms_ >= 0 && frame.timestamp_ms > last_timestamp_ms_) {
    const double elapsed_s =
        static_cast<double>(frame.timestamp_ms - last_timestamp_ms_) / 1000.0;
    queue_depth_ = std::max(
        0.0, queue_depth_ - elapsed_s * options_.processing_capacity_fps);
  }
  last_timestamp_ms_ = frame.timestamp_ms;

  // Adapt the configuration to the queue.
  if (queue_depth_ > static_cast<double>(options_.queue_high_watermark) &&
      level_ + 1 < options_.ladder.size()) {
    ++level_;
    ++stats_.downgrades;
  } else if (queue_depth_ < static_cast<double>(options_.queue_low_watermark) &&
             level_ > 0) {
    --level_;
    ++stats_.upgrades;
  }

  const KeyframeConfig& config = options_.ladder[level_];
  ++frames_since_selected_;
  const bool stride_ok = frames_since_selected_ >= config.frame_stride;
  const bool deviation_ok =
      frame.deviation_from_previous >= config.deviation_threshold;
  if (!(stride_ok && deviation_ok)) return false;

  frames_since_selected_ = 0;
  ++stats_.frames_selected;
  queue_depth_ += 1.0;  // the selected frame enters the extraction queue
  return true;
}

}  // namespace vz::core
