#include "core/archiver.h"

namespace vz::core {

Archiver::Archiver(VideoZilla* system, const ArchiverOptions& options)
    : system_(system), options_(options) {}

StatusOr<double> Archiver::IsArchived(const FeatureMap& target) {
  // isArchived = mean access frequency over clusteringQuery results (Sec. 6).
  VZ_ASSIGN_OR_RETURN(ClusteringQueryResult similar,
                      system_->ClusteringQuery(target));
  if (similar.similar_svss.empty()) return 0.0;
  double sum = 0.0;
  for (SvsId id : similar.similar_svss) {
    VZ_ASSIGN_OR_RETURN(SvsMetadata meta, system_->GetMetaData(id));
    sum += meta.access_frequency;
  }
  return sum / static_cast<double>(similar.similar_svss.size());
}

StatusOr<double> Archiver::EstimatedAccessFrequency(SvsId id) {
  VZ_ASSIGN_OR_RETURN(const Svs* svs, system_->svs_store().Get(id));
  auto intra = system_->intra_index(svs->camera());
  if (intra.ok()) {
    for (const IntraCameraIndex::Cluster& cluster : (*intra)->clusters()) {
      bool member = false;
      for (SvsId m : cluster.members) member |= (m == id);
      if (!member) continue;
      double sum = 0.0;
      for (SvsId m : cluster.members) {
        VZ_ASSIGN_OR_RETURN(SvsMetadata meta, system_->GetMetaData(m));
        sum += meta.access_frequency;
      }
      return sum / static_cast<double>(cluster.members.size());
    }
  }
  VZ_ASSIGN_OR_RETURN(SvsMetadata meta, system_->GetMetaData(id));
  return meta.access_frequency;
}

StatusOr<ArchivePlan> Archiver::PlanArchive() {
  ArchivePlan plan;
  for (SvsId id : system_->svs_store().AllIds()) {
    VZ_ASSIGN_OR_RETURN(const Svs* svs, system_->svs_store().Get(id));
    plan.total_bytes += svs->encoded_bytes();
    plan.total_duration_ms += svs->DurationMs();
    VZ_ASSIGN_OR_RETURN(double estimated, EstimatedAccessFrequency(id));
    if (estimated < options_.access_frequency_threshold) {
      plan.to_archive.push_back(id);
      plan.archived_bytes += svs->encoded_bytes();
      plan.archived_duration_ms += svs->DurationMs();
    }
  }
  return plan;
}

}  // namespace vz::core
