#include "core/omd_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "core/omd.h"

namespace vz::core {

namespace {

// splitmix64 finalizer, for mixing the packed key fields.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

size_t OmdDistanceCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = Mix(key.lo ^ Mix(key.hi));
  h = Mix(h ^ static_cast<uint64_t>(key.mode));
  h = Mix(h ^ std::bit_cast<uint64_t>(key.alpha));
  return static_cast<size_t>(h);
}

OmdDistanceCache::Key OmdDistanceCache::MakeKey(SvsId a, SvsId b, OmdMode mode,
                                                double alpha) {
  Key key;
  key.lo = static_cast<uint64_t>(std::min(a, b));
  key.hi = static_cast<uint64_t>(std::max(a, b));
  key.mode = mode;
  key.alpha = alpha;
  return key;
}

OmdDistanceCache::OmdDistanceCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::optional<double> OmdDistanceCache::Lookup(SvsId a, SvsId b, OmdMode mode,
                                               double alpha) {
  const Key key = MakeKey(a, b, mode, alpha);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  return it->second->second;
}

void OmdDistanceCache::Insert(SvsId a, SvsId b, OmdMode mode, double alpha,
                              double distance) {
  const Key key = MakeKey(a, b, mode, alpha);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = distance;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, distance);
  index_.emplace(key, lru_.begin());
  ++insertions_;
}

void OmdDistanceCache::Insert(SvsId a, SvsId b, OmdMode mode, double alpha,
                              double distance, const CancelToken* cancel) {
  if (Cancelled(cancel)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_inserts_;
    return;
  }
  Insert(a, b, mode, alpha, distance);
}

void OmdDistanceCache::InvalidateSvs(SvsId id) {
  const uint64_t uid = static_cast<uint64_t>(id);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.lo == uid || it->first.hi == uid) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++invalidations_;
    } else {
      ++it;
    }
  }
}

void OmdDistanceCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_ += lru_.size();
  lru_.clear();
  index_.clear();
}

OmdCacheStats OmdDistanceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  OmdCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.invalidations = invalidations_;
  stats.rejected_inserts = rejected_inserts_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

void OmdDistanceCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = misses_ = insertions_ = invalidations_ = rejected_inserts_ = 0;
}

size_t OmdDistanceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace vz::core
